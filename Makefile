# Convenience targets for the SILC workspace. The canonical tier-1 verify
# command (what CI and reviewers run) is:
#
#     cargo build --release && cargo test -q
#
.PHONY: build test bench bench-baseline bench-baseline-smoke figures lint fmt verify

build:
	cargo build --release

# Full test suite: unit, property, integration, doc, and example smoke tests.
test:
	cargo test -q

# Tier-1 verify: exactly what the CI gate runs.
verify: build test

# All seven Criterion benches (paper figures p.16/p.33 + ablations).
bench:
	cargo bench

# Re-record the in-repo bench baseline (BENCH_baseline.json): index build
# seconds, total Morton blocks, and kNN latency at fixed sizes/seeds. Run
# this ONLY when intentionally resetting the perf comparison point.
bench-baseline:
	cargo run --release -p silc-bench --bin bench_baseline

# CI smoke for the baseline recorder: tiny network, writes to target/, no
# assertions on absolute time — only that the pipeline runs end to end.
bench-baseline-smoke:
	cargo run --release -p silc-bench --bin bench_baseline -- --smoke

# Regenerate the paper's tables/figures as text via the figures binary.
figures:
	cargo run --release -p silc-bench --bin figures

lint:
	cargo clippy --all-targets -- -D warnings
	cargo fmt --all --check

fmt:
	cargo fmt --all
