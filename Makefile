# Convenience targets for the SILC workspace. The canonical tier-1 verify
# command (what CI and reviewers run) is:
#
#     cargo build --release && cargo test -q
#
.PHONY: build test bench figures lint fmt verify

build:
	cargo build --release

# Full test suite: unit, property, integration, doc, and example smoke tests.
test:
	cargo test -q

# Tier-1 verify: exactly what the CI gate runs.
verify: build test

# All seven Criterion benches (paper figures p.16/p.33 + ablations).
bench:
	cargo bench

# Regenerate the paper's tables/figures as text via the figures binary.
figures:
	cargo run --release -p silc-bench --bin figures

lint:
	cargo clippy --all-targets -- -D warnings
	cargo fmt --all --check

fmt:
	cargo fmt --all
