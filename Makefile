# Convenience targets for the SILC workspace. The canonical tier-1 verify
# command (what CI and reviewers run) is:
#
#     cargo build --release && cargo test -q
#
.PHONY: build test bench bench-baseline bench-baseline-smoke bench-throughput \
        bench-throughput-smoke bench-tradeoff bench-tradeoff-smoke bench-scale \
        bench-scale-smoke bench-latency bench-latency-smoke bench-check chaos \
        docs deep-fuzz figures lint fmt protocol-check serve-smoke verify help

help:
	@echo "SILC workspace targets:"
	@echo "  build                  release build of every crate"
	@echo "  test                   full test suite (unit, property, integration, examples)"
	@echo "  verify                 tier-1 gate: build + test (what CI runs)"
	@echo "  bench                  all seven Criterion benches (paper figures)"
	@echo "  bench-baseline         re-record BENCH_baseline.json (build cost + kNN latency)"
	@echo "  bench-baseline-smoke   CI smoke for the baseline recorder (tiny, writes to target/)"
	@echo "  bench-throughput       re-record BENCH_throughput.json (multi-worker QPS/p50/p99)"
	@echo "  bench-throughput-smoke CI smoke for the throughput harness (tiny, writes to target/)"
	@echo "  bench-tradeoff         re-record BENCH_tradeoff.json (SILC vs PCP from one substrate)"
	@echo "  bench-tradeoff-smoke   CI smoke for the trade-off harness (tiny, writes to target/)"
	@echo "  bench-scale            re-record BENCH_scale.json (partitioned build + routed kNN at scale)"
	@echo "  bench-scale-smoke      CI smoke for the scale harness (tiny, writes to target/)"
	@echo "  bench-latency          re-record BENCH_latency.json (open-loop server tail latency)"
	@echo "  bench-latency-smoke    CI smoke for the latency harness (tiny, writes to target/)"
	@echo "  bench-check            validate committed BENCH_*.json against the recorders' schemas"
	@echo "  serve-smoke            scripted client session against a loopback silc-server"
	@echo "  protocol-check         docs/PROTOCOL.md <-> protocol.rs test lockstep gate"
	@echo "  chaos                  fault-injection matrix: seeded disk faults, retries, dead shards"
	@echo "  docs                   rustdoc with warnings denied (the CI docs gate)"
	@echo "  deep-fuzz              the scheduled CI fuzz pass: the proptest suites at ~10x cases"
	@echo "  figures                regenerate the paper's tables/figures as text"
	@echo "  lint                   clippy -D warnings + rustfmt check"
	@echo "  fmt                    rustfmt the whole workspace"

build:
	cargo build --release

# Full test suite: unit, property, integration, doc, and example smoke tests.
test:
	cargo test -q

# Tier-1 verify: exactly what the CI gate runs.
verify: build test

# All seven Criterion benches (paper figures p.16/p.33 + ablations).
bench:
	cargo bench

# Re-record the in-repo bench baseline (BENCH_baseline.json): index build
# seconds, total Morton blocks, and kNN latency at fixed sizes/seeds. Run
# this ONLY when intentionally resetting the perf comparison point.
bench-baseline:
	cargo run --release -p silc-bench --bin bench_baseline

# CI smoke for the baseline recorder: tiny network, writes to target/, no
# assertions on absolute time — only that the pipeline runs end to end.
bench-baseline-smoke:
	cargo run --release -p silc-bench --bin bench_baseline -- --smoke

# Re-record the serving-throughput baseline (BENCH_throughput.json): W
# worker sessions closed-loop over one shared disk index — QPS, p50/p99
# latency, pool and entry-cache hit rates at 1 and W workers. Run ONLY when
# intentionally resetting the comparison point.
bench-throughput:
	cargo run --release -p silc-bench --bin bench_throughput

# CI smoke for the throughput harness: tiny network, short windows, writes
# to target/ — only that the concurrent pipeline runs end to end.
bench-throughput-smoke:
	cargo run --release -p silc-bench --bin bench_throughput -- --smoke

# Re-record the SILC-vs-PCP trade-off (BENCH_tradeoff.json): both indexes
# built over the same network and served from the same buffer-pool
# substrate — build time, on-disk bytes, QPS/p50/p99, cache hit rates, and
# observed vs guaranteed ε error. Run ONLY when intentionally resetting the
# comparison point.
bench-tradeoff:
	cargo run --release -p silc-bench --bin bench_tradeoff

# CI smoke for the trade-off harness: tiny network, writes to target/ —
# only that both build→serialize→serve pipelines run end to end.
bench-tradeoff-smoke:
	cargo run --release -p silc-bench --bin bench_tradeoff -- --smoke

# Re-record the scale record (BENCH_scale.json): FMI round-trip →
# partitioned build → cross-shard routed kNN at n up to 100k, with the
# quadratic single-index projection each size is beating. Run ONLY when
# intentionally resetting the comparison point (the 100k size takes a
# while).
bench-scale:
	cargo run --release -p silc-bench --bin bench_scale

# CI smoke for the scale harness: one tiny size, short window, writes to
# target/ — only that the partition→build→route pipeline runs end to end.
bench-scale-smoke:
	cargo run --release -p silc-bench --bin bench_scale -- --smoke

# Re-record the open-loop latency record (BENCH_latency.json): Poisson
# arrivals through the TCP server at fractions of measured capacity,
# p50/p99/p999 from the scheduled arrival instant, Morton vs FIFO batch
# ordering and their pool hit rates. Run ONLY when intentionally resetting
# the comparison point.
bench-latency:
	cargo run --release -p silc-bench --bin bench_latency

# CI smoke for the latency harness: tiny network, short windows, writes to
# target/ — only that the open-loop sender/receiver pipeline runs.
bench-latency-smoke:
	cargo run --release -p silc-bench --bin bench_latency -- --smoke

# Scripted end-to-end session against a real loopback server: a mixed
# exact/routed/approx batch checked bit-identical to local execution, a
# malformed frame, an oversized frame, a status probe, a clean shutdown.
serve-smoke:
	cargo run --release -p silc-server --bin serve_smoke

# Spec <-> implementation lockstep: every frame type named in
# docs/PROTOCOL.md must have a `frame_<name>_…` test in protocol.rs.
protocol-check:
	scripts/check_protocol_tests.sh

# Validate the committed bench records (and any smoke outputs already in
# target/) against the recorders' current output schemas — the CI
# bench-schema gate. Fails when a recorder's JSON fields drifted without
# updating crates/bench/src/schema.rs and re-recording.
bench-check:
	cargo run --release -p silc-bench --bin bench_check

# Rustdoc with warnings denied — keeps the crate-level docs from rotting.
docs:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# The scheduled CI deep-fuzz pass, runnable locally: the proptest suites
# with the case count elevated ~10x over the PR-blocking defaults (the
# proptest shim honors PROPTEST_CASES as an absolute override).
deep-fuzz:
	PROPTEST_CASES=160 cargo test --release -p silc-integration \
		--test knn_fuzz --test pcp_bounds_fuzz --test partition_fuzz \
		--test fault_injection --test format_identity_fuzz

# The fault-injection matrix on its own: seeded fault schedules against the
# disk kNN path and the PCP oracle, plus dead-shard degradation of routed
# queries. Every seed is fixed, so a failure here reproduces exactly.
chaos:
	cargo test --release -p silc-integration --test fault_injection

# Regenerate the paper's tables/figures as text via the figures binary.
figures:
	cargo run --release -p silc-bench --bin figures

lint:
	cargo clippy --all-targets -- -D warnings
	cargo fmt --all --check

fmt:
	cargo fmt --all
