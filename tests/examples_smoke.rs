//! Smoke test: every example must build and run to completion on a tiny
//! network.
//!
//! Each example honours `SILC_EXAMPLE_VERTICES`, which scales its network
//! down from the walkthrough sizes (2000–4233 vertices) to something a
//! debug-profile test run finishes in seconds. The examples are invoked
//! through `cargo run` so this is also the regression gate that keeps them
//! compiling.

use std::path::Path;
use std::process::Command;

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let output = Command::new(cargo)
        .current_dir(&workspace_root)
        .args(["run", "--quiet", "-p", "silc-bench", "--example", name])
        .env("SILC_EXAMPLE_VERTICES", "120")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn closest_poi_runs() {
    run_example("closest_poi");
}

#[test]
fn distance_browsing_runs() {
    run_example("distance_browsing");
}

#[test]
fn oracle_approx_runs() {
    run_example("oracle_approx");
}

#[test]
fn concurrent_serving_runs() {
    run_example("concurrent_serving");
}

#[test]
fn tradeoff_browsing_runs() {
    run_example("tradeoff_browsing");
}

#[test]
fn chaos_survival_runs() {
    run_example("chaos_survival");
}

#[test]
fn remote_browsing_runs() {
    run_example("remote_browsing");
}
