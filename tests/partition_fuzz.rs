//! Proptest fuzz pass over the partitioned-index stack.
//!
//! Sweeps random road networks through the full pipeline — spatial
//! partitioner → per-shard disk indexes → cross-shard kNN router — and
//! checks the two laws the stack must never break:
//!
//! * **Partition well-formedness**: the shards are a disjoint cover of
//!   the vertices with inverse local↔global maps, every original edge is
//!   either an intra-shard edge with its weight preserved or appears in
//!   the cut-edge list, and the exit frontier records exactly the
//!   cut-edge sources with their minimum outgoing cut weight.
//! * **Router soundness**: every interval a routed kNN reports contains
//!   the true global network distance of its object, and whenever the
//!   router claims `complete`, the reported distance multiset equals the
//!   brute-force kNN distance multiset exactly.
//! * **Tier exactness**: every frontier-tier row entry equals the
//!   in-shard Dijkstra distance between its frontier vertex and the row
//!   position, and on a fault-free build the router runs in exact mode —
//!   every routed kNN reports `complete == true` with point intervals.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silc::frontier::Direction;
use silc::partitioned::{PartitionedBuildConfig, PartitionedSilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::partition::{partition_network, PartitionConfig};
use silc_network::{dijkstra, SpatialNetwork, VertexId};
use silc_query::{ObjectSet, PartitionedEngine};
use std::sync::Arc;

/// Disjoint cover, inverse id maps, and exact edge accounting.
fn check_partition(g: &SpatialNetwork, shards: usize, seed: u64) -> Result<(), String> {
    let cfg = PartitionConfig { shards, ..Default::default() };
    let part = partition_network(g, &cfg).map_err(|e| format!("partition failed: {e}"))?;
    let n = g.vertex_count();

    let mut seen = vec![false; n];
    for (s, shard) in part.shards().iter().enumerate() {
        for (local, &global) in shard.globals().iter().enumerate() {
            if seen[global.0 as usize] {
                return Err(format!("vertex {global:?} covered twice (seed {seed})"));
            }
            seen[global.0 as usize] = true;
            if part.shard_of(global) != s || part.local_of(global) != local as u32 {
                return Err(format!("id maps disagree at {global:?} (seed {seed})"));
            }
            let (gp, lp) = (g.position(global), shard.network().position(VertexId(local as u32)));
            if gp != lp {
                return Err(format!("position moved for {global:?} (seed {seed})"));
            }
        }
    }
    if seen.iter().any(|&s| !s) {
        return Err(format!("cover misses a vertex (seed {seed})"));
    }

    // Every original edge is intra-shard (weight preserved) or a cut edge.
    let mut intra = 0usize;
    for u in g.vertices() {
        let su = part.shard_of(u);
        for (target, weight) in g.out_edges(u) {
            if part.shard_of(target) == su {
                intra += 1;
                let shard = part.shard(su);
                let (lu, lv) = (part.local_of(u), part.local_of(target));
                let found = shard
                    .network()
                    .out_edges(VertexId(lu))
                    .any(|(lt, lw)| lt == VertexId(lv) && lw == weight);
                if !found {
                    return Err(format!("intra edge {u:?}->{target:?} lost (seed {seed})"));
                }
            } else {
                let found = part
                    .cut_edges()
                    .iter()
                    .any(|c| c.source == u && c.target == target && c.weight == weight);
                if !found {
                    return Err(format!("cut edge {u:?}->{target:?} lost (seed {seed})"));
                }
            }
        }
    }
    if intra + part.cut_edges().len() != g.edge_count() {
        return Err(format!(
            "edge accounting off: {intra} intra + {} cut != {} total (seed {seed})",
            part.cut_edges().len(),
            g.edge_count()
        ));
    }

    // Exit frontiers: exactly the cut-edge sources, with the min weight.
    for (s, shard) in part.shards().iter().enumerate() {
        for &(local, w) in shard.exit_frontier() {
            let global = shard.to_global(local);
            let min = part
                .cut_edges()
                .iter()
                .filter(|c| c.source == global)
                .map(|c| c.weight)
                .fold(f64::INFINITY, f64::min);
            if (min - w).abs() > 1e-12 {
                return Err(format!("exit frontier weight off at shard {s} (seed {seed})"));
            }
        }
    }
    Ok(())
}

/// Frontier-tier rows carry the exact in-shard distances: row `rank` of
/// shard `s` evaluated at frontier vertex `b` must equal the whole-graph
/// Dijkstra restricted to in-shard paths — i.e. Dijkstra over the
/// shard's induced subnetwork.
fn check_tier(index: &PartitionedSilcIndex, seed: u64) -> Result<(), String> {
    let tier =
        index.frontier_tier().ok_or_else(|| format!("fresh build has no tier (seed {seed})"))?;
    let part = index.partition();
    for (s, shard) in part.shards().iter().enumerate() {
        let local_g = shard.network();
        let frontier = tier.frontier(s);
        for (rank, &f) in frontier.iter().enumerate() {
            let fwd = tier
                .try_row(s, rank, Direction::Forward)
                .map_err(|e| format!("forward row read failed: {e} (seed {seed})"))?;
            let rev = tier
                .try_row(s, rank, Direction::Reverse)
                .map_err(|e| format!("reverse row read failed: {e} (seed {seed})"))?;
            for &b in frontier {
                let want = dijkstra::distance(local_g, VertexId(f), VertexId(b));
                match want {
                    Some(d) if (fwd[b as usize] - d).abs() < 1e-9 => {}
                    Some(d) => {
                        return Err(format!(
                            "shard {s}: tier {f}->{b} = {}, dijkstra {d} (seed {seed})",
                            fwd[b as usize]
                        ));
                    }
                    None if fwd[b as usize].is_infinite() => {}
                    None => {
                        return Err(format!(
                            "shard {s}: tier {f}->{b} finite but unreachable (seed {seed})"
                        ));
                    }
                }
                let want_rev = dijkstra::distance(local_g, VertexId(b), VertexId(f));
                match want_rev {
                    Some(d) if (rev[b as usize] - d).abs() < 1e-9 => {}
                    None if rev[b as usize].is_infinite() => {}
                    _ => return Err(format!("shard {s}: reverse row off at {b} (seed {seed})")),
                }
            }
        }
    }
    Ok(())
}

/// Routed kNN: sound intervals always; exact multiset when `complete`.
fn check_router(
    g: &Arc<SpatialNetwork>,
    shards: usize,
    seed: u64,
    case: u64,
) -> Result<(), String> {
    let cfg = PartitionedBuildConfig {
        partition: PartitionConfig { shards, ..Default::default() },
        grid_exponent: 8,
        threads: 1,
        cache_fraction: 0.5,
    };
    let dir = std::env::temp_dir().join("silc-partition-fuzz").join(format!("case-{case}"));
    std::fs::remove_dir_all(&dir).ok();
    let index = Arc::new(
        PartitionedSilcIndex::build_in_dir(Arc::clone(g), &dir, &cfg)
            .map_err(|e| format!("build failed: {e} (seed {seed})"))?,
    );

    check_tier(&index, seed)?;

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5117);
    let n = g.vertex_count() as u32;
    let vertices: Vec<VertexId> =
        (0..(n / 3).max(2)).map(|_| VertexId(rng.gen_range(0..n))).collect();
    let objects = Arc::new(ObjectSet::from_vertices(g, vertices, 4));
    let engine = PartitionedEngine::new(Arc::clone(&index), Arc::clone(&objects));
    if !engine.exact_routing() {
        return Err(format!("fault-free engine must route exactly (seed {seed})"));
    }
    let mut session = engine.session();

    for _ in 0..4 {
        let q = VertexId(rng.gen_range(0..n));
        let k = rng.gen_range(1..=6usize).min(objects.len());
        let res = session.knn(q, k).clone();
        if res.neighbors.len() != k {
            return Err(format!(
                "q={q:?}: {} neighbors, want {k} (seed {seed})",
                res.neighbors.len()
            ));
        }
        for nb in &res.neighbors {
            let d = dijkstra::distance(g, q, nb.vertex)
                .ok_or_else(|| format!("object unreachable (seed {seed})"))?;
            if !(nb.interval.lo <= d + 1e-9 && d <= nb.interval.hi + 1e-9) {
                return Err(format!(
                    "q={q:?} o={:?}: [{}, {}] misses true {d} (seed {seed})",
                    nb.object, nb.interval.lo, nb.interval.hi
                ));
            }
        }
        if !res.complete {
            return Err(format!(
                "fault-free exact routing must certify every query (q={q:?}, seed {seed})"
            ));
        }
        if res.complete {
            let mut truth: Vec<f64> = objects
                .iter()
                .map(|(_, v)| dijkstra::distance(g, q, v).expect("connected"))
                .collect();
            truth.sort_by(f64::total_cmp);
            truth.truncate(k);
            for (nb, d) in res.neighbors.iter().zip(&truth) {
                if (nb.interval.hi - d).abs() > 1e-6 {
                    return Err(format!(
                        "complete answer diverges: got {}, want {d} (q={q:?}, seed {seed})",
                        nb.interval.hi
                    ));
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn partition_laws_hold_on_random_road_networks(
        seed in 0u64..1_000_000,
        vertices in 60usize..200,
        shards in 2usize..6,
    ) {
        let g = Arc::new(road_network(&RoadConfig {
            vertices,
            seed,
            ..Default::default()
        }));
        if let Err(msg) = check_partition(&g, shards, seed) {
            prop_assert!(false, "{}", msg);
        }
        let case = seed ^ ((vertices as u64) << 32) ^ ((shards as u64) << 56);
        if let Err(msg) = check_router(&g, shards, seed, case) {
            prop_assert!(false, "{}", msg);
        }
    }
}
