//! Proptest soundness suite for the PCP oracles and the ε-approximate kNN.
//!
//! On random road networks this locks, per case:
//!
//! * **memory/disk bit identity** — the disk-resident oracle (opened from
//!   the serialized bytes through a `MemPageStore`, i.e. the full
//!   format round trip) answers every sampled pair — distance *and*
//!   per-pair error cap — bit-identically to the memory oracle it was
//!   written from;
//! * **the per-pair cap law** — every observed relative error is at most
//!   its covering pair's stored cap (no slack: the radius-derived caps are
//!   sound on the symmetric road networks generated here), and every cap is
//!   at most the oracle's guaranteed `epsilon()`;
//! * **build determinism** — the batched-parallel construction encodes
//!   byte-identically to the serial one;
//! * **ε-close kNN** — the approximate kNN result's true distances exceed
//!   the exact kNN's rank-wise by at most `(1+e)/(1−e)` for that slacked
//!   `e` (checked whenever the bound is finite), and every reported
//!   interval is consistent with the object's true distance under the same
//!   slack;
//! * **session bit identity** — `QuerySession::approx_knn` reproduces the
//!   one-shot wrapper bit for bit.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silc::{BuildConfig, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::{dijkstra, SpatialNetwork, VertexId};
use silc_pcp::{DiskDistanceOracle, DistanceOracle};
use silc_query::{approx_knn, verify::brute_force_knn, ObjectSet, QueryEngine};
use silc_storage::MemPageStore;
use std::sync::Arc;

/// The slack the oracle's first-order `4t/s` bound is tested with
/// (matches `silc-pcp`'s unit suite).
fn slacked_eps(eps: f64) -> f64 {
    1.5 * eps + 0.05
}

fn check_oracle_bounds(
    g: &SpatialNetwork,
    mem: &DistanceOracle,
    disk: &DiskDistanceOracle<MemPageStore>,
    seed: u64,
) -> Result<(), String> {
    let n = g.vertex_count() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..40 {
        let u = VertexId(rng.gen_range(0..n));
        let v = VertexId(rng.gen_range(0..n));
        let (m, m_cap) = mem.distance_with_epsilon(u, v);
        let (d, d_cap) = disk.distance_with_epsilon(u, v);
        if m.to_bits() != d.to_bits() {
            return Err(format!("memory/disk distance bits differ for {u}->{v}: {m} vs {d}"));
        }
        if m_cap.to_bits() != d_cap.to_bits() {
            return Err(format!("memory/disk cap bits differ for {u}->{v}: {m_cap} vs {d_cap}"));
        }
        if u == v {
            if (m, m_cap) != (0.0, 0.0) {
                return Err(format!("({u},{u}) must be exactly (0, 0), got ({m}, {m_cap})"));
            }
            continue;
        }
        if m_cap > mem.epsilon() {
            return Err(format!(
                "{u}->{v}: pair cap {m_cap:.4} exceeds the guaranteed epsilon {:.4}",
                mem.epsilon()
            ));
        }
        let truth = dijkstra::distance(g, u, v).ok_or_else(|| format!("{v} unreachable"))?;
        let err = (m - truth).abs() / truth.max(1e-12);
        // The per-pair cap law: the radius-derived caps are sound on the
        // symmetric networks generated here, so no slack is granted.
        if err > m_cap + 1e-9 {
            return Err(format!(
                "{u}->{v}: oracle {m} vs exact {truth}, error {err:.4} exceeds the pair's \
                 stored cap {m_cap:.4}"
            ));
        }
    }
    Ok(())
}

fn check_approx_knn(
    g: &Arc<SpatialNetwork>,
    idx: &Arc<SilcIndex>,
    mem: &DistanceOracle,
    disk: &DiskDistanceOracle<MemPageStore>,
    objects: &Arc<ObjectSet>,
    q: VertexId,
    k: usize,
) -> Result<(), String> {
    let r = approx_knn(mem, g, objects, q, k);
    let truth = brute_force_knn(g, objects, q, k);
    if r.neighbors.len() != truth.len() {
        return Err(format!(
            "approx kNN q={q} k={k}: {} neighbors, want {}",
            r.neighbors.len(),
            truth.len()
        ));
    }
    let e = slacked_eps(mem.epsilon());
    // Rank-wise ε-closeness: meaningful only while the derived factor is
    // finite (e < 1); interval consistency is checked regardless.
    let factor = if e < 1.0 { (1.0 + e) / (1.0 - e) } else { f64::INFINITY };
    for (i, (nb, &(_, exact))) in r.neighbors.iter().zip(&truth).enumerate() {
        let d = dijkstra::distance(g, q, nb.vertex)
            .ok_or_else(|| format!("object vertex {} unreachable", nb.vertex))?;
        if d > exact * factor + 1e-9 {
            return Err(format!(
                "q={q} k={k} rank {i}: true distance {d} vs exact {exact} exceeds ε factor {factor:.4}"
            ));
        }
        // The reported interval must be consistent with the true distance
        // under the oracle's slacked ε (its lower bound may overshoot only
        // when the oracle itself overshot, which the slack covers).
        if nb.interval.lo > d * (1.0 + e) + 1e-9 || nb.interval.hi < d / (1.0 + e) - 1e-9 {
            return Err(format!(
                "q={q} k={k} rank {i}: interval {} inconsistent with true distance {d} at ε {e:.4}",
                nb.interval
            ));
        }
    }

    // Memory and disk oracles drive the query to bit-identical results.
    let rd = approx_knn(disk, g, objects, q, k);
    // Session path: bit-identical to the one-shot wrapper.
    let engine = QueryEngine::new(Arc::clone(idx), Arc::clone(objects));
    let mut session = engine.session();
    let rs = session.approx_knn(mem, q, k);
    for (name, other) in [("disk-oracle", &rd), ("session", rs)] {
        if other.neighbors.len() != r.neighbors.len()
            || other.neighbors.iter().zip(&r.neighbors).any(|(a, b)| {
                a.object != b.object
                    || a.vertex != b.vertex
                    || a.interval.lo.to_bits() != b.interval.lo.to_bits()
                    || a.interval.hi.to_bits() != b.interval.hi.to_bits()
            })
        {
            return Err(format!("{name} approx kNN diverged from one-shot at q={q} k={k}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn oracles_and_approx_knn_stay_within_eps(
        seed in 0u64..1_000_000,
        vertices in 40usize..90,
        separation in 6.0f64..14.0,
        density_pct in 8usize..25,
        k_raw in 1usize..8,
    ) {
        let g = Arc::new(road_network(&RoadConfig { vertices, seed, ..Default::default() }));
        let mem = DistanceOracle::build_with(
            &g,
            &silc_pcp::PcpBuildConfig { grid_exponent: 8, separation, threads: 1 },
        );
        // Batched-parallel construction must encode byte-identically to the
        // serial one — the determinism contract of the chunked workers.
        let parallel = DistanceOracle::build_with(
            &g,
            &silc_pcp::PcpBuildConfig { grid_exponent: 8, separation, threads: 3 },
        );
        let encoded = silc_pcp::encode_oracle(&mem);
        prop_assert_eq!(&encoded, &silc_pcp::encode_oracle(&parallel));
        drop(parallel);
        // Full format round trip through an in-memory page store.
        let disk = DiskDistanceOracle::from_store(
            MemPageStore::new(&encoded),
            0.5,
            None,
        ).unwrap();
        prop_assert_eq!(disk.pair_count(), mem.pair_count());
        prop_assert_eq!(disk.epsilon().to_bits(), mem.epsilon().to_bits());
        if let Err(msg) = check_oracle_bounds(&g, &mem, &disk, seed ^ 0xACE) {
            prop_assert!(false, "{}", msg);
        }

        let idx = Arc::new(
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 1 }).unwrap(),
        );
        let objects = Arc::new(ObjectSet::random(&g, density_pct as f64 / 100.0, seed ^ 0xB0B));
        let k = k_raw.min(objects.len());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51DE);
        for _ in 0..3 {
            let q = VertexId(rng.gen_range(0..g.vertex_count() as u32));
            if let Err(msg) = check_approx_knn(&g, &idx, &mem, &disk, &objects, q, k) {
                prop_assert!(false, "{}", msg);
            }
        }
    }
}
