//! Proptest fuzz pass over the kNN tie variants.
//!
//! The `knn_ties` suite pins hand-built adversarial tie fixtures; this one
//! sweeps *random* graphs and duplicated-distance object placements across
//! all six algorithms (INN, kNN, kNN-I, kNN-M, INE, IER) against brute
//! force. Two generators:
//!
//! * random road networks with objects intentionally **duplicated** onto
//!   shared vertices (exact distance ties that refinement can never
//!   separate), and
//! * perfectly regular unit grids (`detour = 0`, `jitter = 0`), where whole
//!   equivalence classes of paths tie by construction.
//!
//! Each case also runs the kNN variants through a `QuerySession` and
//! requires bit-identity with the one-shot wrapper, so the fuzz pass covers
//! the session reuse path for free.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silc::{BuildConfig, SilcIndex};
use silc_network::generate::{grid_network, road_network, GridConfig, RoadConfig};
use silc_network::{dijkstra, SpatialNetwork, VertexId};
use silc_query::{
    ier, ine, inn, knn, verify::brute_force_knn, KnnResult, KnnVariant, ObjectSet, QueryEngine,
};
use std::sync::Arc;

/// The k reported distances must equal the k smallest true distances as a
/// multiset, and no reported object may lie beyond the (possibly tied) kth.
fn check_against_truth(
    g: &SpatialNetwork,
    objects: &ObjectSet,
    q: VertexId,
    k: usize,
    name: &str,
    r: &KnnResult,
) -> Result<(), String> {
    let truth = brute_force_knn(g, objects, q, k);
    if r.neighbors.len() != truth.len() {
        return Err(format!(
            "{name} q={q} k={k}: {} neighbors, want {}",
            r.neighbors.len(),
            truth.len()
        ));
    }
    let mut got: Vec<f64> = r
        .neighbors
        .iter()
        .map(|n| dijkstra::distance(g, q, n.vertex).expect("object reachable"))
        .collect();
    got.sort_by(f64::total_cmp);
    let want: Vec<f64> = truth.iter().map(|&(_, d)| d).collect();
    for (i, (a, b)) in got.iter().zip(&want).enumerate() {
        if (a - b).abs() > 1e-9 {
            return Err(format!("{name} q={q} k={k} rank {i}: got {a}, want {b}"));
        }
    }
    Ok(())
}

/// Objects on random vertices, with `dups` extra objects placed on already
/// occupied vertices — guaranteed exact-distance ties from every query.
fn objects_with_duplicates(g: &SpatialNetwork, base: usize, dups: usize, seed: u64) -> ObjectSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.vertex_count();
    let mut vertices: Vec<VertexId> = Vec::with_capacity(base + dups);
    for _ in 0..base.max(1) {
        vertices.push(VertexId(rng.gen_range(0..n as u32)));
    }
    for _ in 0..dups {
        let occupied = vertices[rng.gen_range(0..vertices.len())];
        vertices.push(occupied);
    }
    ObjectSet::from_vertices(g, vertices, 4)
}

/// Runs all six algorithms plus the session path and compares each against
/// brute force; any failure message aborts the proptest case.
fn run_all(
    g: &Arc<SpatialNetwork>,
    idx: &Arc<SilcIndex>,
    objects: &Arc<ObjectSet>,
    q: VertexId,
    k: usize,
) -> Result<(), String> {
    let engine = QueryEngine::new(Arc::clone(idx), Arc::clone(objects));
    let mut session = engine.session();
    for variant in [KnnVariant::Basic, KnnVariant::EarlyEstimate, KnnVariant::MinDist] {
        let one_shot = knn(&**idx, objects, q, k, variant);
        check_against_truth(g, objects, q, k, &format!("kNN {variant:?}"), &one_shot)?;
        let via_session = session.knn(q, k, variant);
        if via_session.neighbors.len() != one_shot.neighbors.len()
            || via_session.neighbors.iter().zip(&one_shot.neighbors).any(|(a, b)| {
                a.object != b.object
                    || a.vertex != b.vertex
                    || a.interval.lo.to_bits() != b.interval.lo.to_bits()
                    || a.interval.hi.to_bits() != b.interval.hi.to_bits()
            })
        {
            return Err(format!("session kNN {variant:?} diverged from one-shot at q={q} k={k}"));
        }
    }
    check_against_truth(g, objects, q, k, "INN", &inn(&**idx, objects, q, k))?;
    check_against_truth(g, objects, q, k, "INE", &ine(g, objects, q, k))?;
    check_against_truth(g, objects, q, k, "IER", &ier(g, objects, q, k))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn random_road_networks_with_duplicated_objects(
        seed in 0u64..1_000_000,
        vertices in 30usize..70,
        base_objects in 3usize..12,
        dups in 1usize..6,
        k_raw in 1usize..14,
    ) {
        let g = Arc::new(road_network(&RoadConfig {
            vertices,
            seed,
            ..Default::default()
        }));
        let idx = Arc::new(
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 1 }).unwrap(),
        );
        let objects = Arc::new(objects_with_duplicates(&g, base_objects, dups, seed ^ 0xD0_D0));
        let k = k_raw.min(objects.len());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37);
        for _ in 0..3 {
            let q = VertexId(rng.gen_range(0..g.vertex_count() as u32));
            if let Err(msg) = run_all(&g, &idx, &objects, q, k) {
                prop_assert!(false, "{}", msg);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn regular_unit_grids_slice_tie_groups_correctly(
        seed in 0u64..1_000_000,
        rows in 3usize..7,
        cols in 3usize..7,
        dups in 0usize..5,
        k_raw in 1usize..10,
    ) {
        // detour = 0 and jitter = 0: edge weights equal exact Euclidean grid
        // distances, so shortest-path distances tie in whole groups.
        let g = Arc::new(grid_network(&GridConfig {
            rows,
            cols,
            jitter: 0.0,
            detour: 0.0,
            keep_prob: 1.0,
            seed,
            ..Default::default()
        }));
        let idx = Arc::new(
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 1 }).unwrap(),
        );
        let n = g.vertex_count();
        // Every vertex holds an object; duplicates deepen the tie groups.
        let mut vertices: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        for _ in 0..dups {
            vertices.push(VertexId(rng.gen_range(0..n as u32)));
        }
        let objects = Arc::new(ObjectSet::from_vertices(&g, vertices, 4));
        let k = k_raw.min(objects.len());
        for _ in 0..2 {
            let q = VertexId(rng.gen_range(0..n as u32));
            if let Err(msg) = run_all(&g, &idx, &objects, q, k) {
                prop_assert!(false, "{}", msg);
            }
        }
    }
}
