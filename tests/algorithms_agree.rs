//! All six query algorithms must return the same k nearest neighbors
//! (up to exact distance ties) across densities and k.

use silc::{BuildConfig, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::{dijkstra, VertexId};
use silc_query::{ier, ine, inn, knn, KnnVariant, ObjectSet};
use std::sync::Arc;

fn distances_of(
    g: &silc_network::SpatialNetwork,
    r: &silc_query::KnnResult,
    q: VertexId,
) -> Vec<f64> {
    let mut d: Vec<f64> =
        r.neighbors.iter().map(|n| dijkstra::distance(g, q, n.vertex).unwrap()).collect();
    d.sort_by(f64::total_cmp);
    d
}

#[test]
fn all_algorithms_return_the_same_distance_multiset() {
    let g = Arc::new(road_network(&RoadConfig { vertices: 250, seed: 77, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 10, threads: 0 }).unwrap();
    for density in [0.02, 0.1, 0.3] {
        let objects = ObjectSet::random(&g, density, 11);
        for k in [1usize, 3, 10] {
            let k = k.min(objects.len());
            for &q in &[0u32, 99, 200] {
                let q = VertexId(q);
                let reference = distances_of(&g, &ine(&g, &objects, q, k), q);
                let runs = [
                    ("IER", distances_of(&g, &ier(&g, &objects, q, k), q)),
                    ("INN", distances_of(&g, &inn(&idx, &objects, q, k), q)),
                    ("KNN", distances_of(&g, &knn(&idx, &objects, q, k, KnnVariant::Basic), q)),
                    (
                        "KNN-I",
                        distances_of(&g, &knn(&idx, &objects, q, k, KnnVariant::EarlyEstimate), q),
                    ),
                    ("KNN-M", distances_of(&g, &knn(&idx, &objects, q, k, KnnVariant::MinDist), q)),
                ];
                for (name, got) in runs {
                    assert_eq!(got.len(), reference.len(), "{name} returned wrong count");
                    for (a, b) in got.iter().zip(&reference) {
                        assert!(
                            (a - b).abs() < 1e-6,
                            "{name} disagrees at density {density}, k {k}, q {q}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn sorted_algorithms_report_in_order() {
    let g = Arc::new(road_network(&RoadConfig { vertices: 200, seed: 5, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 10, threads: 0 }).unwrap();
    let objects = ObjectSet::random(&g, 0.15, 3);
    for &q in &[17u32, 101] {
        let q = VertexId(q);
        assert!(ine(&g, &objects, q, 8).is_sorted());
        assert!(ier(&g, &objects, q, 8).is_sorted());
        assert!(inn(&idx, &objects, q, 8).is_sorted());
        assert!(knn(&idx, &objects, q, 8, KnnVariant::Basic).is_sorted());
        assert!(knn(&idx, &objects, q, 8, KnnVariant::EarlyEstimate).is_sorted());
        // kNN-M gives up sortedness by design — no assertion.
    }
}

#[test]
fn disk_and_memory_indexes_give_identical_answers() {
    let g = Arc::new(road_network(&RoadConfig { vertices: 180, seed: 31, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
    let dir = std::env::temp_dir().join("silc-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("agree.idx");
    silc::disk::write_index(&idx, &path).unwrap();
    let disk = silc::DiskSilcIndex::open(&path, g.clone(), 0.1).unwrap();

    let objects = ObjectSet::random(&g, 0.1, 2);
    for &q in &[3u32, 90, 170] {
        let q = VertexId(q);
        let mem = knn(&idx, &objects, q, 6, KnnVariant::Basic);
        let dsk = knn(&disk, &objects, q, 6, KnnVariant::Basic);
        assert_eq!(mem.object_ids(), dsk.object_ids(), "disk/memory mismatch at {q}");
    }
    std::fs::remove_file(&path).ok();
}
