//! Locks the session layer's allocation contract: once a `QuerySession`'s
//! workspaces have grown to a workload's steady-state size, re-running a
//! query performs **zero** heap allocations — the hot path is pure reuse.
//!
//! The whole test binary runs under a counting global allocator with
//! per-thread counters (so the harness's own threads cannot contaminate a
//! measurement).

use silc::{BuildConfig, DistanceBrowser, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::VertexId;
use silc_query::{KnnVariant, ObjectSet, QueryEngine};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Growth is an allocation for this test's purposes: a "reused"
        // buffer that regrows every query is not allocation-free.
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

fn fixture() -> (Arc<SilcIndex>, Arc<ObjectSet>) {
    let g = Arc::new(road_network(&RoadConfig { vertices: 200, seed: 1234, ..Default::default() }));
    let idx = Arc::new(
        SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap(),
    );
    let objects = Arc::new(ObjectSet::random(&g, 0.1, 77));
    (idx, objects)
}

#[test]
fn second_knn_call_in_a_session_allocates_nothing() {
    let (idx, objects) = fixture();
    let engine = QueryEngine::new(idx, objects);
    let mut session = engine.session();
    let q = VertexId(42);
    let k = 10;

    for variant in [KnnVariant::Basic, KnnVariant::EarlyEstimate, KnnVariant::MinDist] {
        // First call: the workspaces grow to this query's size.
        let first = session.knn(q, k, variant).neighbors.len();
        assert_eq!(first, k);
        // Second identical call: pure reuse.
        let before = allocations_on_this_thread();
        let second = session.knn(q, k, variant).neighbors.len();
        let allocated = allocations_on_this_thread() - before;
        assert_eq!(second, k);
        assert_eq!(allocated, 0, "knn {variant:?}: the second call in a session must not allocate");
    }
}

#[test]
fn second_inn_call_in_a_session_allocates_nothing() {
    let (idx, objects) = fixture();
    let engine = QueryEngine::new(idx, objects);
    let mut session = engine.session();
    let q = VertexId(17);
    let _ = session.inn(q, 8);
    let before = allocations_on_this_thread();
    let n = session.inn(q, 8).neighbors.len();
    let allocated = allocations_on_this_thread() - before;
    assert_eq!(n, 8);
    assert_eq!(allocated, 0, "the second INN call in a session must not allocate");
}

#[test]
fn second_approx_knn_call_in_a_session_allocates_nothing() {
    // The ε-approximate path must honor the same contract: one oracle probe
    // per candidate over the session's reusable Euclidean-search and k-best
    // buffers — the second identical query is pure reuse.
    let (idx, objects) = fixture();
    let oracle = silc_pcp::DistanceOracle::build(idx.network(), 9, 8.0);
    let engine = QueryEngine::new(idx, objects);
    let mut session = engine.session();
    let q = VertexId(42);
    let first = session.approx_knn(&oracle, q, 10).neighbors.len();
    assert_eq!(first, 10);
    let before = allocations_on_this_thread();
    let second = session.approx_knn(&oracle, q, 10).neighbors.len();
    let allocated = allocations_on_this_thread() - before;
    assert_eq!(second, 10);
    assert_eq!(allocated, 0, "the second approx_knn call in a session must not allocate");
}

#[test]
fn steady_state_workload_stops_allocating() {
    // Not just one repeated query: after one full pass over a query set,
    // a second pass over the same set allocates nothing — the workspaces
    // have reached the workload's high-water mark.
    let (idx, objects) = fixture();
    let engine = QueryEngine::new(idx, objects);
    let mut session = engine.session();
    let queries: Vec<VertexId> = (0..20u32).map(|i| VertexId(i * 9 % 200)).collect();
    for &q in &queries {
        let _ = session.knn(q, 10, KnnVariant::Basic);
    }
    let before = allocations_on_this_thread();
    for &q in &queries {
        let _ = session.knn(q, 10, KnnVariant::Basic);
    }
    let allocated = allocations_on_this_thread() - before;
    assert_eq!(allocated, 0, "a repeated query pass must run allocation-free");
}

#[test]
fn one_shot_wrappers_do_allocate() {
    // Sanity check that the counter actually counts: the one-shot wrapper
    // builds a fresh scratch, which cannot be free.
    let (idx, objects) = fixture();
    let before = allocations_on_this_thread();
    let _ = silc_query::knn(&*idx, &objects, VertexId(42), 10, KnnVariant::Basic);
    assert!(allocations_on_this_thread() > before, "the allocation counter must be live");
}
