//! The paper's decoupling property (pp.3/10/20): the SILC index depends only
//! on the network. Query objects and the object set `S` can change freely —
//! no recomputation of shortest paths.

use silc::{BuildConfig, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::VertexId;
use silc_query::{knn, verify::brute_force_knn, KnnVariant, ObjectSet};
use std::sync::Arc;

#[test]
fn one_index_serves_many_object_sets() {
    let g = Arc::new(road_network(&RoadConfig { vertices: 220, seed: 9, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 10, threads: 0 }).unwrap();
    let blocks_before = idx.stats().total_blocks;

    // Restaurants, gas stations, hospitals: three unrelated object sets.
    for (seed, density) in [(1u64, 0.05), (2, 0.2), (3, 0.01)] {
        let objects = ObjectSet::random(&g, density, seed);
        let q = VertexId(111);
        let k = 4.min(objects.len());
        let r = knn(&idx, &objects, q, k, KnnVariant::Basic);
        let truth = brute_force_knn(&g, &objects, q, k);
        assert_eq!(r.neighbors.len(), truth.len());
        let got: Vec<_> = {
            let mut ids = r.object_ids();
            ids.sort();
            ids
        };
        let want: Vec<_> = {
            let mut ids: Vec<_> = truth.iter().map(|&(o, _)| o).collect();
            ids.sort();
            ids
        };
        assert_eq!(got, want, "object set (seed {seed}) answered incorrectly");
    }
    // The index itself was never touched.
    assert_eq!(idx.stats().total_blocks, blocks_before);
}

#[test]
fn query_points_are_independent_of_the_object_set() {
    let g = Arc::new(road_network(&RoadConfig { vertices: 220, seed: 10, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 10, threads: 0 }).unwrap();
    let objects = ObjectSet::random(&g, 0.1, 4);
    // Every vertex can serve as a query without any per-query setup.
    for q in (0..g.vertex_count() as u32).step_by(37) {
        let r = knn(&idx, &objects, VertexId(q), 3, KnnVariant::Basic);
        assert_eq!(r.neighbors.len(), 3);
    }
}

#[test]
fn objects_off_the_vertex_set_snap_to_vertices() {
    // Arbitrary world positions are snapped to their nearest vertex, the
    // paper's vertex-object model.
    let g = Arc::new(road_network(&RoadConfig { vertices: 150, seed: 12, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
    let mut vertices = Vec::new();
    for i in 0..10 {
        let p = silc_geom::Point::new(37.0 * i as f64 % 1000.0, 53.0 * i as f64 % 1000.0);
        vertices.push(g.nearest_vertex(&p).unwrap());
    }
    let objects = ObjectSet::from_vertices(&g, vertices, 4);
    let r = knn(&idx, &objects, VertexId(75), 5, KnnVariant::Basic);
    assert_eq!(r.neighbors.len(), 5);
    let truth = brute_force_knn(&g, &objects, VertexId(75), 5);
    let mut got = r.object_ids();
    got.sort();
    let mut want: Vec<_> = truth.iter().map(|&(o, _)| o).collect();
    want.sort();
    // Ties possible with duplicate vertices; compare by distance multiset.
    let dist = |o: silc_query::ObjectId| {
        silc_network::dijkstra::distance(&g, VertexId(75), objects.vertex(o)).unwrap()
    };
    let mut gd: Vec<f64> = got.iter().map(|&o| dist(o)).collect();
    let mut wd: Vec<f64> = want.iter().map(|&o| dist(o)).collect();
    gd.sort_by(f64::total_cmp);
    wd.sort_by(f64::total_cmp);
    for (a, b) in gd.iter().zip(&wd) {
        assert!((a - b).abs() < 1e-9);
    }
}
