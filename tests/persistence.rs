//! Persistence: networks and SILC indexes survive serialization; the
//! disk-resident index behaves like the in-memory one through the buffer
//! pool; malformed files are rejected, never mis-read.

use silc::{disk, BuildConfig, DiskSilcIndex, DistanceBrowser, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::{io as netio, VertexId};
use silc_storage::PageStore;
use std::sync::Arc;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("silc-persistence-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn network_file_roundtrip_preserves_queries() {
    let g = road_network(&RoadConfig { vertices: 160, seed: 21, ..Default::default() });
    let path = tmp("net.bin");
    netio::save(&g, &path).unwrap();
    let g2 = netio::load(&path).unwrap();
    // Same SSSP answers on the reloaded network.
    let a = silc_network::dijkstra::full_sssp(&g, VertexId(0));
    let b = silc_network::dijkstra::full_sssp(&g2, VertexId(0));
    assert_eq!(a.dist, b.dist);
    std::fs::remove_file(&path).ok();
}

#[test]
fn index_roundtrip_preserves_every_lookup() {
    let g = Arc::new(road_network(&RoadConfig { vertices: 140, seed: 22, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
    let path = tmp("full.idx");
    disk::write_index(&idx, &path).unwrap();
    let dsk = DiskSilcIndex::open(&path, g.clone(), 1.0).unwrap();
    for u in g.vertices() {
        for v in g.vertices() {
            if u == v {
                continue;
            }
            assert_eq!(idx.next_hop(u, v), dsk.next_hop(u, v), "{u}->{v}");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn tiny_cache_still_answers_correctly_just_slower() {
    let g = Arc::new(road_network(&RoadConfig { vertices: 140, seed: 23, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
    let path = tmp("tiny-cache.idx");
    disk::write_index(&idx, &path).unwrap();
    // A pathologically small cache (one page) must not change results.
    let store = silc_storage::FilePageStore::open(&path).unwrap();
    let tiny_fraction = 1.0 / store.page_count().max(1) as f64;
    drop(store);
    let dsk = DiskSilcIndex::open(&path, g.clone(), tiny_fraction).unwrap();
    for &(s, d) in &[(0u32, 139u32), (50, 90)] {
        let a = silc::path::shortest_path(&idx, VertexId(s), VertexId(d)).unwrap();
        let b = silc::path::shortest_path(&dsk, VertexId(s), VertexId(d)).unwrap();
        assert_eq!(a.path, b.path);
        assert!((a.distance - b.distance).abs() < 1e-6);
    }
    let stats = dsk.io_stats();
    assert!(stats.evictions > 0, "a one-page cache must evict");
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_files_are_rejected() {
    let g = Arc::new(road_network(&RoadConfig { vertices: 120, seed: 24, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
    let path = tmp("corrupt.idx");
    disk::write_index(&idx, &path).unwrap();
    let data = std::fs::read(&path).unwrap();

    // Bad magic.
    let mut bad = data.clone();
    bad[0] ^= 0xFF;
    let bad_path = tmp("bad-magic.idx");
    std::fs::write(&bad_path, &bad).unwrap();
    assert!(DiskSilcIndex::open(&bad_path, g.clone(), 0.5).is_err());

    // Truncated to half a page boundary multiple.
    let trunc_path = tmp("trunc.idx");
    std::fs::write(&trunc_path, &data[..4096]).unwrap();
    assert!(DiskSilcIndex::open(&trunc_path, g.clone(), 0.5).is_err());

    // Wrong network.
    let other = Arc::new(road_network(&RoadConfig { vertices: 50, seed: 1, ..Default::default() }));
    assert!(DiskSilcIndex::open(&path, other, 0.5).is_err());

    for p in [path, bad_path, trunc_path] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn io_stats_track_real_reads() {
    let g = Arc::new(road_network(&RoadConfig { vertices: 140, seed: 25, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
    let path = tmp("stats.idx");
    disk::write_index(&idx, &path).unwrap();
    let dsk = DiskSilcIndex::open(&path, g.clone(), 0.05).unwrap();
    let _ = silc::path::shortest_path(&dsk, VertexId(0), VertexId(139)).unwrap();
    let s = dsk.io_stats();
    assert!(s.misses > 0);
    assert_eq!(s.bytes_read, s.misses * silc_storage::PAGE_SIZE as u64);
    assert!(s.read_nanos > 0, "file reads take nonzero time");
    std::fs::remove_file(&path).ok();
}
