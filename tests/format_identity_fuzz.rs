//! Proptest law: every on-disk format version answers bit-identically.
//!
//! Version 3 of the SILC page format and version 4 of the PCP page format
//! compress their payloads (delta+varint block lists and pair groups,
//! elided representatives); the older fixed-width encodings stay writable
//! and readable. Compression must be a *pure* representation change — no
//! query may be able to tell which encoding served it. On random road
//! networks this locks, per case:
//!
//! * **SILC**: an index encoded at every supported format version
//!   (1..=CURRENT_VERSION) and reopened through an in-memory page store
//!   answers `network_distance` bit-identically to the in-memory index it
//!   was encoded from — which pins every version bit-identical to every
//!   other;
//! * **PCP**: the compressed (v4) and fixed-width (v3) encodings of one
//!   oracle answer `distance_with_epsilon` — distance *and* per-pair cap —
//!   bit-identically to the memory oracle;
//! * **compression actually engages**: the v4 pair region is strictly
//!   smaller than v3's fixed records whenever the oracle stores any pairs
//!   (the format's reason to exist, checked here so a silent fallback to
//!   fixed-width encoding cannot hide behind the identity law).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silc::disk::{encode_index_with_version, DiskSilcIndex, CURRENT_VERSION};
use silc::path::network_distance;
use silc::{BuildConfig, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::VertexId;
use silc_pcp::{DiskDistanceOracle, DistanceOracle};
use silc_storage::MemPageStore;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn silc_format_versions_answer_bit_identically(
        seed in 0u64..1_000_000,
        vertices in 30usize..80,
    ) {
        let g = Arc::new(road_network(&RoadConfig { vertices, seed, ..Default::default() }));
        let idx =
            SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 1 }).unwrap();

        let mut disks = Vec::new();
        for version in 1..=CURRENT_VERSION {
            let bytes = encode_index_with_version(&idx, version);
            let disk = DiskSilcIndex::from_store(
                Box::new(MemPageStore::new(&bytes)),
                g.clone(),
                0.5,
                8,
            )
            .unwrap();
            prop_assert_eq!(disk.format_version(), version);
            disks.push(disk);
        }

        let n = g.vertex_count() as u32;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF0_F0);
        for _ in 0..25 {
            let u = VertexId(rng.gen_range(0..n));
            let v = VertexId(rng.gen_range(0..n));
            let want = network_distance(&idx, u, v).unwrap();
            for disk in &disks {
                let got = network_distance(disk, u, v).unwrap();
                prop_assert!(
                    got.to_bits() == want.to_bits(),
                    "format v{} diverged at {u}->{v}: {got} vs {want}",
                    disk.format_version()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn pcp_format_versions_answer_bit_identically(
        seed in 0u64..1_000_000,
        vertices in 40usize..90,
        separation in 6.0f64..12.0,
    ) {
        let g = Arc::new(road_network(&RoadConfig { vertices, seed, ..Default::default() }));
        let mem = DistanceOracle::build_with(
            &g,
            &silc_pcp::PcpBuildConfig { grid_exponent: 8, separation, threads: 1 },
        );

        let v4 = DiskDistanceOracle::from_store(
            MemPageStore::new(&silc_pcp::encode_oracle(&mem)),
            0.5,
            None,
        )
        .unwrap();
        let v3 = DiskDistanceOracle::from_store(
            MemPageStore::new(&silc_pcp::format::encode_oracle_v3(&mem)),
            0.5,
            None,
        )
        .unwrap();
        prop_assert_eq!(v4.format_version(), silc_pcp::format::VERSION);
        prop_assert_eq!(v3.format_version(), 3);
        let fixed_bytes = (mem.pair_count() * silc_pcp::PAIR_BYTES) as u64;
        if mem.pair_count() > 0 {
            prop_assert!(
                v4.pair_region_bytes() < fixed_bytes,
                "v4 pair region ({} B) did not compress below v3's fixed records ({fixed_bytes} B)",
                v4.pair_region_bytes()
            );
        }

        let n = g.vertex_count() as u32;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xACE5);
        for _ in 0..40 {
            let u = VertexId(rng.gen_range(0..n));
            let v = VertexId(rng.gen_range(0..n));
            let (m, m_cap) = mem.distance_with_epsilon(u, v);
            for (name, disk) in [("v4", &v4), ("v3", &v3)] {
                let (d, d_cap) = disk.distance_with_epsilon(u, v);
                prop_assert!(
                    d.to_bits() == m.to_bits(),
                    "{name} distance bits diverged at {u}->{v}: {d} vs {m}"
                );
                prop_assert!(
                    d_cap.to_bits() == m_cap.to_bits(),
                    "{name} cap bits diverged at {u}->{v}: {d_cap} vs {m_cap}"
                );
            }
        }
    }
}
