//! Chaos suite: every disk-resident query surface driven over injected
//! faults.
//!
//! The contract under test, for each of the three disk surfaces
//! (`DiskSilcIndex` kNN, `DiskDistanceOracle` probes, `PartitionedSession`
//! routed kNN): under any schedule of injected faults a call either
//!
//! * returns `Ok` with an answer **bit-identical** to the fault-free run
//!   (transient faults were retried away; nothing corrupt was consumed),
//! * returns a **typed error** — corruption errors name the failing page —
//!   or
//! * (partitioned only) returns a degraded-but-**sound** answer listing
//!   the failed shards in `degraded`.
//!
//! It must never panic and never return a silently wrong value. Retries
//! are verified against exact `IoStats` counters on a deterministic
//! script; the seeded matrices sweep mixed fault rates over both the
//! compressed (current) and legacy fixed-width page formats; a proptest
//! law (run at depth by `make deep-fuzz`) sweeps random seeds.

use proptest::prelude::*;
use silc::{disk, BuildConfig, DiskSilcIndex, QueryError, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::{dijkstra, SpatialNetwork, VertexId};
use silc_pcp::{DiskDistanceOracle, DistanceOracle, PcpError};
use silc_query::{KnnResult, KnnVariant, ObjectSet, PartitionedEngine, QueryEngine};
use silc_storage::{
    FaultInjectingPageStore, FaultKind, FaultRates, MemPageStore, PageId, PageStore,
};
use std::sync::Arc;

/// A deterministic fixture network plus its serialized SILC index bytes in
/// the current (compressed delta+varint, v3) format *and* the legacy
/// fixed-width v2 format, built once and shared by every test (and every
/// proptest case). The chaos matrices sweep both: compression must not
/// open a silent-corruption window, and the legacy decode path must stay
/// as hardened as the current one.
type SilcFixture = (Arc<SpatialNetwork>, Arc<ObjectSet>, Vec<u8>, Vec<u8>);

fn fixture() -> SilcFixture {
    static FIXTURE: std::sync::OnceLock<SilcFixture> = std::sync::OnceLock::new();
    FIXTURE
        .get_or_init(|| {
            let g = Arc::new(road_network(&RoadConfig {
                vertices: 150,
                seed: 4242,
                ..Default::default()
            }));
            let idx =
                SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 1 }).unwrap();
            let bytes = disk::encode_index(&idx);
            let bytes_v2 = disk::encode_index_with_version(&idx, 2);
            let objects = Arc::new(ObjectSet::random(&g, 0.2, 77));
            (g, objects, bytes, bytes_v2)
        })
        .clone()
}

/// Bit-level equality of two kNN results.
fn bit_identical(a: &KnnResult, b: &KnnResult) -> bool {
    a.neighbors.len() == b.neighbors.len()
        && a.neighbors.iter().zip(&b.neighbors).all(|(x, y)| {
            x.object == y.object
                && x.vertex == y.vertex
                && x.interval.lo.to_bits() == y.interval.lo.to_bits()
                && x.interval.hi.to_bits() == y.interval.hi.to_bits()
        })
}

/// Counts `read_page` events so a later run can aim a scripted fault at an
/// exact point of the deterministic read sequence.
struct CountingStore {
    inner: MemPageStore,
    reads: std::sync::atomic::AtomicU64,
}

impl PageStore for CountingStore {
    fn read_page(&self, page: PageId) -> std::io::Result<Arc<[u8]>> {
        self.reads.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.read_page(page)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }
}

#[test]
fn scripted_transient_fault_is_retried_with_exact_counters() {
    let (g, objects, bytes, _) = fixture();

    // Pass A: learn how many page-read events opening the index consumes,
    // so the script below can fire its fault on the first *query* read.
    let counter = Arc::new(CountingStore {
        inner: MemPageStore::new(&bytes),
        reads: std::sync::atomic::AtomicU64::new(0),
    });
    let disk =
        DiskSilcIndex::from_store(Box::new(Arc::clone(&counter)), g.clone(), 1.0, 64).unwrap();
    let open_reads = counter.reads.load(std::sync::atomic::Ordering::Relaxed);

    // Fault-free reference answer.
    let engine = QueryEngine::new(Arc::new(disk), objects.clone());
    let reference = engine.session().try_knn(VertexId(9), 5, KnnVariant::Basic).unwrap().clone();

    // Pass B: same deterministic read sequence, one transient fault aimed
    // at the first post-open (pool) read.
    let script: Vec<Option<FaultKind>> =
        (0..open_reads).map(|_| None).chain([Some(FaultKind::Transient)]).collect();
    let injector = Arc::new(FaultInjectingPageStore::scripted(MemPageStore::new(&bytes), script));
    let disk =
        DiskSilcIndex::from_store(Box::new(Arc::clone(&injector)), g.clone(), 1.0, 64).unwrap();
    let disk = Arc::new(disk);
    let engine = QueryEngine::new(Arc::clone(&disk), objects.clone());
    let got = engine.session().try_knn(VertexId(9), 5, KnnVariant::Basic).unwrap().clone();

    assert!(bit_identical(&got, &reference), "a retried transient fault must not change bits");
    let stats = disk.io_stats();
    assert_eq!(stats.faults_seen, 1, "exactly the scripted fault was seen");
    assert_eq!(stats.retries, 1, "one retry recovered it");
    assert_eq!(injector.injected().transient, 1);
}

#[test]
fn torn_reads_are_retried_like_transients() {
    let (g, objects, bytes, _) = fixture();
    let counter = Arc::new(CountingStore {
        inner: MemPageStore::new(&bytes),
        reads: std::sync::atomic::AtomicU64::new(0),
    });
    let disk =
        DiskSilcIndex::from_store(Box::new(Arc::clone(&counter)), g.clone(), 1.0, 64).unwrap();
    let open_reads = counter.reads.load(std::sync::atomic::Ordering::Relaxed);
    let engine = QueryEngine::new(Arc::new(disk), objects.clone());
    let reference = engine.session().try_knn(VertexId(31), 4, KnnVariant::MinDist).unwrap().clone();

    let script: Vec<Option<FaultKind>> =
        (0..open_reads).map(|_| None).chain([Some(FaultKind::Torn)]).collect();
    let injector = Arc::new(FaultInjectingPageStore::scripted(MemPageStore::new(&bytes), script));
    let disk = Arc::new(
        DiskSilcIndex::from_store(Box::new(Arc::clone(&injector)), g.clone(), 1.0, 64).unwrap(),
    );
    let engine = QueryEngine::new(Arc::clone(&disk), objects.clone());
    let got = engine.session().try_knn(VertexId(31), 4, KnnVariant::MinDist).unwrap().clone();

    assert!(bit_identical(&got, &reference));
    let stats = disk.io_stats();
    assert_eq!((stats.faults_seen, stats.retries), (1, 1), "torn read retried once");
    assert_eq!(injector.injected().torn, 1);
}

/// The seeded matrix over `DiskSilcIndex` kNN: every outcome is Ok and
/// bit-identical, or a typed error; corruption names its page; no panics.
/// Runs the same matrix against the compressed (v3) and fixed-width (v2)
/// encodings of one index — the fault-free reference is shared, since the
/// formats are bit-identical by law.
#[test]
fn seeded_matrix_disk_knn_is_never_silently_wrong() {
    let (g, objects, bytes, bytes_v2) = fixture();

    // Fault-free reference answers (from the current format; v2 must
    // produce identical bits, faulted or not).
    let clean = Arc::new(
        DiskSilcIndex::from_store(Box::new(MemPageStore::new(&bytes)), g.clone(), 0.3, 16).unwrap(),
    );
    let clean_engine = QueryEngine::new(clean, objects.clone());
    let mut clean_session = clean_engine.session();
    let queries: Vec<VertexId> = (0..150).step_by(13).map(VertexId).collect();
    let reference: Vec<KnnResult> = queries
        .iter()
        .map(|&q| clean_session.try_knn(q, 5, KnnVariant::Basic).unwrap().clone())
        .collect();

    let rates = FaultRates { transient: 0.04, permanent: 0.01, bit_flip: 0.015, torn: 0.01 };
    for (format, image) in [("v3", &bytes), ("v2", &bytes_v2)] {
        let (mut oks, mut errs) = (0usize, 0usize);
        for seed in 0..24u64 {
            let injector = FaultInjectingPageStore::seeded(MemPageStore::new(image), seed, rates);
            // A fault during open is itself a legal typed-error outcome.
            let Ok(disk) = DiskSilcIndex::from_store(Box::new(injector), g.clone(), 0.3, 16) else {
                errs += 1;
                continue;
            };
            let engine = QueryEngine::new(Arc::new(disk), objects.clone());
            let mut session = engine.session();
            for (q, want) in queries.iter().zip(&reference) {
                match session.try_knn(*q, 5, KnnVariant::Basic) {
                    Ok(r) => {
                        assert!(
                            bit_identical(r, want),
                            "{format} seed {seed} q={q}: Ok answer must be bit-identical to \
                             fault-free"
                        );
                        oks += 1;
                    }
                    Err(QueryError::Corrupt { page, detail }) => {
                        assert!(
                            page.is_some() || detail.contains("page"),
                            "{format} seed {seed} q={q}: corruption must name the page: {detail}"
                        );
                        errs += 1;
                    }
                    Err(QueryError::Io(_)) => errs += 1,
                }
            }
        }
        assert!(oks > 0, "{format}: some seeded runs must survive to verify bit-identity");
        assert!(errs > 0, "{format}: these rates must also exercise the error paths");
    }
}

/// The seeded matrix over `DiskDistanceOracle` probes, against both the
/// compressed (v4) and fixed-width (v3) encodings of one oracle.
#[test]
fn seeded_matrix_oracle_probes_are_never_silently_wrong() {
    let g = Arc::new(road_network(&RoadConfig { vertices: 150, seed: 555, ..Default::default() }));
    let oracle = DistanceOracle::build(&g, 10, 12.0);
    let bytes = silc_pcp::encode_oracle(&oracle);
    let bytes_v3 = silc_pcp::format::encode_oracle_v3(&oracle);

    let clean = DiskDistanceOracle::from_store(MemPageStore::new(&bytes), 0.3, None).unwrap();
    let pairs: Vec<(VertexId, VertexId)> =
        (0..150).step_by(7).map(|u| (VertexId(u), VertexId((u * 31 + 8) % 150))).collect();
    let reference: Vec<f64> = pairs.iter().map(|&(u, v)| clean.distance(u, v)).collect();

    let rates = FaultRates { transient: 0.03, permanent: 0.01, bit_flip: 0.02, torn: 0.01 };
    for (format, image) in [("v4", &bytes), ("v3", &bytes_v3)] {
        let (mut oks, mut errs) = (0usize, 0usize);
        for seed in 100..124u64 {
            let injector = FaultInjectingPageStore::seeded(MemPageStore::new(image), seed, rates);
            let Ok(disk) = DiskDistanceOracle::from_store(injector, 0.3, None) else {
                errs += 1;
                continue;
            };
            for (&(u, v), &want) in pairs.iter().zip(&reference) {
                match disk.try_distance(u, v) {
                    Ok(d) => {
                        assert_eq!(
                            d.to_bits(),
                            want.to_bits(),
                            "{format} seed {seed} {u}->{v}: Ok probe must be bit-identical"
                        );
                        oks += 1;
                    }
                    Err(PcpError::Corrupt(msg)) => {
                        assert!(
                            msg.contains("page")
                                || msg.contains("sorted")
                                || msg.contains("cap")
                                || msg.contains("pair group"),
                            "{format} seed {seed} {u}->{v}: corruption must name its evidence: \
                             {msg}"
                        );
                        errs += 1;
                    }
                    Err(PcpError::Io(_)) => errs += 1,
                }
            }
        }
        assert!(oks > 0, "{format}: some seeded runs must survive");
        assert!(errs > 0, "{format}: the error paths must be exercised");
    }
}

/// A dead shard degrades the routed answer instead of breaking it: the
/// failed shard is listed, intervals stay sound, `complete` is false.
#[test]
fn dead_shard_routed_knn_degrades_soundly() {
    use silc::partitioned::{PartitionedBuildConfig, PartitionedSilcIndex};
    use silc_network::partition::PartitionConfig;

    let g = Arc::new(road_network(&RoadConfig { vertices: 240, seed: 808, ..Default::default() }));
    let cfg = PartitionedBuildConfig {
        partition: PartitionConfig { shards: 4, ..Default::default() },
        grid_exponent: 9,
        threads: 1,
        cache_fraction: 0.5,
    };
    let dir = std::env::temp_dir().join("silc-fault-tests").join("routed");
    std::fs::remove_dir_all(&dir).ok();
    PartitionedSilcIndex::build_in_dir(g.clone(), &dir, &cfg).unwrap();

    let mut handles = Vec::new();
    let idx = Arc::new(
        PartitionedSilcIndex::open_dir_with(g.clone(), &dir, &cfg, |_, store| {
            let f = Arc::new(FaultInjectingPageStore::passthrough(store));
            handles.push(Arc::clone(&f));
            Box::new(f)
        })
        .unwrap(),
    );
    let vertices: Vec<VertexId> = g.vertices().filter(|v| v.0 % 3 == 0).collect();
    let objects = Arc::new(ObjectSet::from_vertices(&g, vertices, 8));
    let engine = PartitionedEngine::new(Arc::clone(&idx), Arc::clone(&objects));

    let queries: Vec<VertexId> = (0..240).step_by(11).map(VertexId).collect();
    let mut healthy_session = engine.session();
    let healthy: Vec<_> = queries.iter().map(|&q| healthy_session.knn(q, 6).clone()).collect();

    // Kill one shard (the one serving vertex 0's neighbors' cut) and drop
    // its warm cache so probes really hit the dead store.
    let dead = (idx.partition().shard_of(VertexId(0)) as usize + 1) % 4;
    handles[dead].kill();
    idx.shard_index(dead).clear_cache();

    let mut session = engine.session();
    let mut degraded_seen = false;
    for (&q, want) in queries.iter().zip(&healthy) {
        let res = session.knn(q, 6).clone();
        assert_eq!(res.neighbors.len(), want.neighbors.len());
        if res.degraded.is_empty() {
            // The dead shard never had to be touched: the answer must be
            // exactly the healthy one.
            for (a, b) in res.neighbors.iter().zip(&want.neighbors) {
                assert_eq!(a.object, b.object, "q={q}: untouched query must match healthy run");
                assert_eq!(a.interval.lo.to_bits(), b.interval.lo.to_bits());
                assert_eq!(a.interval.hi.to_bits(), b.interval.hi.to_bits());
            }
        } else {
            degraded_seen = true;
            assert!(res.degraded.contains(&(dead as u32)), "q={q}: dead shard must be listed");
            assert!(!res.complete, "q={q}: degraded answers are never certified");
            for nb in &res.neighbors {
                let d = dijkstra::distance(&g, q, nb.vertex).expect("connected");
                assert!(
                    nb.interval.lo <= d + 1e-9 && d <= nb.interval.hi + 1e-9,
                    "q={q}: degraded interval [{}, {}] must contain {d}",
                    nb.interval.lo,
                    nb.interval.hi,
                );
            }
        }
    }
    assert!(degraded_seen, "some query must be forced through the dead shard");
}

/// A corrupt frontier-tier page must not break routing — it retires
/// exact mode and the router falls back to the interval path: answers
/// stay sound, and self-certified `complete` answers stay exact.
///
/// Two corruption sites, two degradation shapes:
/// * a flipped byte in the *row region* passes the open-time metadata
///   checks but fails its page checksum at engine init, so the engine
///   builds interval frontier edges (`exact_routing() == false`);
/// * a flipped byte in the *metadata* fails validation at open, the
///   tier is dropped entirely, and the index serves tier-free.
#[test]
fn corrupt_frontier_tier_degrades_to_interval_routing() {
    use silc::partitioned::{PartitionedBuildConfig, PartitionedSilcIndex};
    use silc_network::partition::PartitionConfig;
    use silc_storage::PAGE_SIZE;

    let g = Arc::new(road_network(&RoadConfig { vertices: 240, seed: 909, ..Default::default() }));
    let cfg = PartitionedBuildConfig {
        partition: PartitionConfig { shards: 4, ..Default::default() },
        grid_exponent: 9,
        threads: 1,
        cache_fraction: 0.5,
    };
    let dir = std::env::temp_dir().join("silc-fault-tests").join("tier-corrupt");
    std::fs::remove_dir_all(&dir).ok();
    PartitionedSilcIndex::build_in_dir(g.clone(), &dir, &cfg).unwrap();
    let tier_path = dir.join(silc::frontier::FILE_NAME);
    let pristine = std::fs::read(&tier_path).unwrap();
    // rows_base is the last header word (see `silc::frontier` docs).
    let rows_base = u64::from_le_bytes(pristine[44..52].try_into().unwrap()) as usize;

    let vertices: Vec<VertexId> = g.vertices().filter(|v| v.0 % 3 == 0).collect();
    let objects = Arc::new(ObjectSet::from_vertices(&g, vertices, 8));
    let queries: Vec<VertexId> = (0..240).step_by(11).map(VertexId).collect();

    let check_sound = |idx: Arc<PartitionedSilcIndex>| {
        let engine = PartitionedEngine::new(idx, Arc::clone(&objects));
        assert!(!engine.exact_routing(), "a corrupt tier must retire exact routing");
        let mut session = engine.session();
        for &q in &queries {
            let res = session.knn(q, 6).clone();
            assert_eq!(res.neighbors.len(), 6);
            for nb in &res.neighbors {
                let d = dijkstra::distance(&g, q, nb.vertex).expect("connected");
                assert!(
                    nb.interval.lo <= d + 1e-9 && d <= nb.interval.hi + 1e-9,
                    "q={q}: fallback interval [{}, {}] must contain {d}",
                    nb.interval.lo,
                    nb.interval.hi,
                );
            }
            if res.complete {
                // Interval-path self-certification stays trustworthy.
                let mut truth: Vec<f64> = objects
                    .iter()
                    .map(|(_, v)| dijkstra::distance(&g, q, v).expect("connected"))
                    .collect();
                truth.sort_by(f64::total_cmp);
                for (nb, d) in res.neighbors.iter().zip(&truth) {
                    assert!((nb.interval.hi - d).abs() < 1e-6, "q={q}: complete must be exact");
                }
            }
        }
    };

    // Corruption A: a byte deep in the row region. The tier opens (its
    // metadata is intact) but the poisoned row page surfaces as a typed
    // checksum error during the engine's frontier-graph build.
    let mut bytes = pristine.clone();
    let target = (rows_base / PAGE_SIZE + 1) * PAGE_SIZE + 12;
    bytes[target] ^= 0x40;
    std::fs::write(&tier_path, &bytes).unwrap();
    let idx = Arc::new(PartitionedSilcIndex::open_dir(g.clone(), &dir, &cfg).unwrap());
    assert!(idx.frontier_tier().is_some(), "row corruption is lazy — the tier still opens");
    check_sound(idx);

    // Corruption B: a metadata byte. Open-time validation rejects the
    // tier and the directory serves tier-free.
    let mut bytes = pristine.clone();
    bytes[20] ^= 0x01;
    std::fs::write(&tier_path, &bytes).unwrap();
    let idx = Arc::new(PartitionedSilcIndex::open_dir(g.clone(), &dir, &cfg).unwrap());
    assert!(idx.frontier_tier().is_none(), "metadata corruption drops the tier at open");
    check_sound(idx);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// The chaos law at fuzz depth: under any seeded fault schedule a
    /// disk-index kNN either errors (typed) or answers bit-identically to
    /// the fault-free run — and never panics.
    #[test]
    fn random_fault_schedules_never_produce_wrong_bits(
        seed in 0u64..1_000_000,
        transient in 0.0f64..0.08,
        bit_flip in 0.0f64..0.04,
        torn in 0.0f64..0.03,
    ) {
        let (g, objects, bytes, _) = fixture();
        let clean = Arc::new(
            DiskSilcIndex::from_store(Box::new(MemPageStore::new(&bytes)), g.clone(), 0.3, 16)
                .unwrap(),
        );
        let clean_engine = QueryEngine::new(clean, objects.clone());
        let mut clean_session = clean_engine.session();

        let rates = FaultRates { transient, permanent: 0.005, bit_flip, torn };
        let injector = FaultInjectingPageStore::seeded(MemPageStore::new(&bytes), seed, rates);
        if let Ok(disk) = DiskSilcIndex::from_store(Box::new(injector), g.clone(), 0.3, 16) {
            let engine = QueryEngine::new(Arc::new(disk), objects.clone());
            let mut session = engine.session();
            for q in [VertexId(seed as u32 % 150), VertexId((seed as u32 * 7 + 3) % 150)] {
                let want = clean_session.try_knn(q, 4, KnnVariant::Basic).unwrap().clone();
                match session.try_knn(q, 4, KnnVariant::Basic) {
                    Ok(r) => prop_assert!(
                        bit_identical(r, &want),
                        "seed {} q={}: Ok answer diverged from fault-free", seed, q
                    ),
                    Err(QueryError::Corrupt { page, detail }) => prop_assert!(
                        page.is_some() || detail.contains("page"),
                        "corruption must name the page: {}", detail
                    ),
                    Err(QueryError::Io(_)) => {}
                }
            }
        }
    }
}
