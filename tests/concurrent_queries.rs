//! The concurrent-serving contract: many threads sharing one
//! `Arc<DiskSilcIndex>` through sessions must produce exactly the results
//! of serial execution, and the sharded pool / entry-cache counters must
//! not lose a single count under contention.

use silc::disk::{write_index, DiskSilcIndex};
use silc::{BuildConfig, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::paged::{write_paged, PagedNetwork};
use silc_network::VertexId;
use silc_query::{KnnResult, KnnVariant, ObjectSet, QueryEngine};
use silc_storage::PAGE_SIZE;
use std::sync::Arc;

const THREADS: usize = 8;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("silc-concurrent-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A comparable, bit-exact snapshot of a result.
fn snapshot(r: &KnnResult) -> Vec<(u32, u32, u64, u64)> {
    r.neighbors
        .iter()
        .map(|n| (n.object.0, n.vertex.0, n.interval.lo.to_bits(), n.interval.hi.to_bits()))
        .collect()
}

#[test]
fn concurrent_knn_matches_serial_and_counters_stay_consistent() {
    let g = Arc::new(road_network(&RoadConfig { vertices: 220, seed: 2024, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
    let path = tmp("concurrent.idx");
    write_index(&idx, &path).unwrap();
    // A pool far smaller than the file so eviction churn is real, and a
    // similarly tight entry cache: contention over both layers is the test.
    let disk = Arc::new(DiskSilcIndex::open_with_entry_cache(&path, g.clone(), 0.10, 24).unwrap());
    let objects = Arc::new(ObjectSet::random(&g, 0.1, 5));
    let engine = QueryEngine::new(disk.clone(), objects.clone());

    let queries: Vec<VertexId> = (0..22u32).map(|i| VertexId(i * 10 % 220)).collect();
    let k = 6;

    // Serial reference pass, with the decode workload measured.
    disk.reset_io_stats();
    let mut session = engine.session();
    let serial: Vec<Vec<(u32, u32, u64, u64)>> = queries
        .iter()
        .flat_map(|&q| {
            [
                snapshot(session.knn(q, k, KnnVariant::Basic)),
                snapshot(session.knn(q, k, KnnVariant::MinDist)),
            ]
        })
        .collect();
    let serial_cache = disk.entry_cache_stats();
    assert!(serial_cache.requests() > 0);

    // Concurrent pass: every thread runs the full workload through its own
    // session and must reproduce the serial snapshots bit for bit.
    disk.reset_io_stats();
    disk.clear_cache();
    let serial = Arc::new(serial);
    let queries = Arc::new(queries);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = engine.clone();
            let serial = Arc::clone(&serial);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut session = engine.session();
                for (i, &q) in queries.iter().enumerate() {
                    let basic = snapshot(session.knn(q, k, KnnVariant::Basic));
                    assert_eq!(basic, serial[2 * i], "thread {t}: Basic diverged at query {q}");
                    let mindist = snapshot(session.knn(q, k, KnnVariant::MinDist));
                    assert_eq!(mindist, serial[2 * i + 1], "thread {t}: MinDist diverged at {q}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // No lost counts: the query algorithms are deterministic, so the total
    // decode workload of T threads is exactly T times the serial workload —
    // every lookup must land in hits or misses, never dropped.
    let cache = disk.entry_cache_stats();
    assert_eq!(
        cache.requests(),
        serial_cache.requests() * THREADS as u64,
        "entry-cache counters lost lookups under concurrency"
    );
    assert_eq!(cache.hits + cache.misses, cache.requests());
    // Pool identities: every miss is one page read of exactly one page.
    let io = disk.io_stats();
    assert_eq!(io.hits + io.misses, io.requests());
    assert!(io.requests() > 0, "a cold concurrent run must touch the pool");
    assert_eq!(io.bytes_read, io.misses * PAGE_SIZE as u64);
    assert!(io.evictions <= io.misses);
}

#[test]
fn concurrent_disk_baselines_match_serial() {
    let g = Arc::new(road_network(&RoadConfig { vertices: 160, seed: 77, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
    let net_path = tmp("concurrent.pnet");
    write_paged(&g, &net_path).unwrap();
    let paged = Arc::new(PagedNetwork::open(&net_path, 0.15).unwrap());
    let objects = Arc::new(ObjectSet::random(&g, 0.1, 3));
    let disk_idx_path = tmp("concurrent-baseline.idx");
    write_index(&idx, &disk_idx_path).unwrap();
    let disk = Arc::new(DiskSilcIndex::open(&disk_idx_path, g.clone(), 0.2).unwrap());
    let engine = QueryEngine::new(disk, objects.clone());
    let ratio = g.min_weight_ratio();

    let queries: Vec<VertexId> = (0..16u32).map(|i| VertexId(i * 10 % 160)).collect();
    let mut session = engine.session();
    let serial: Vec<_> = queries
        .iter()
        .flat_map(|&q| {
            [
                snapshot(session.ine_disk(&paged, q, 5)),
                snapshot(session.ier_disk(&paged, q, 5, ratio)),
            ]
        })
        .collect();

    let serial = Arc::new(serial);
    let queries = Arc::new(queries);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let engine = engine.clone();
            let paged = Arc::clone(&paged);
            let serial = Arc::clone(&serial);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut session = engine.session();
                for (i, &q) in queries.iter().enumerate() {
                    let ine = snapshot(session.ine_disk(&paged, q, 5));
                    assert_eq!(ine, serial[2 * i], "thread {t}: INE-disk diverged at {q}");
                    let ier = snapshot(session.ier_disk(&paged, q, 5, ratio));
                    assert_eq!(ier, serial[2 * i + 1], "thread {t}: IER-disk diverged at {q}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let io = paged.io_stats();
    assert!(io.requests() > 0);
    assert_eq!(io.bytes_read, io.misses * PAGE_SIZE as u64);
}
