//! Adversarial tied-kth-neighbor tests.
//!
//! PR 1 fixed a soundness bug where kNN queue pruning used `δ− ≥ Dk`
//! instead of the paper's strict `δ− > Dk`: with an exact distance tie at
//! the kth neighbor, an object already in `L` but absent from `Q` let a
//! worse object be confirmed past it. These tests lock that fix in with
//! networks *constructed* to put exact ties at the kth position, asserting
//! result-set correctness across every algorithm — the SILC variants (INN,
//! kNN, kNN-I, kNN-M), the Dijkstra-expansion baseline (INE), and the
//! Euclidean-restriction baseline (IER) — against brute force.
//!
//! With ties the *identity* of the kth neighbor is ambiguous, but the
//! multiset of the k returned distances is not: it must equal the k
//! smallest true distances exactly, and every returned object must be at a
//! true distance ≤ the kth.

use silc::{BuildConfig, SilcIndex};
use silc_geom::Point;
use silc_network::{dijkstra, NetworkBuilder, SpatialNetwork, VertexId};
use silc_query::{ier, ine, inn, knn, verify::brute_force_knn, KnnResult, KnnVariant, ObjectSet};
use std::sync::Arc;

/// Runs every algorithm at (q, k) and checks its k distances against the
/// brute-force k smallest. `label` names the fixture in failure messages.
fn assert_all_algorithms_handle_ties(
    g: &Arc<SpatialNetwork>,
    idx: &SilcIndex,
    objects: &ObjectSet,
    q: VertexId,
    k: usize,
    label: &str,
) {
    let truth = brute_force_knn(g, objects, q, k);
    let want: Vec<f64> = truth.iter().map(|&(_, d)| d).collect();
    let kth = want.last().copied().unwrap_or(0.0);

    let check = |name: &str, r: &KnnResult| {
        assert_eq!(r.neighbors.len(), truth.len(), "[{label}] {name} count at q={q} k={k}");
        let mut got: Vec<f64> = r
            .neighbors
            .iter()
            .map(|nb| dijkstra::distance(g, q, nb.vertex).expect("object reachable"))
            .collect();
        got.sort_by(f64::total_cmp);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "[{label}] {name} rank {i} at q={q} k={k}: got {a}, want {b}"
            );
        }
        // No returned object may be strictly beyond the tied kth distance.
        for nb in &r.neighbors {
            let d = dijkstra::distance(g, q, nb.vertex).unwrap();
            assert!(
                d <= kth + 1e-9,
                "[{label}] {name} returned {d} beyond tied kth {kth} at q={q} k={k}"
            );
        }
    };

    check("INE", &ine(g, objects, q, k));
    check("IER", &ier(g, objects, q, k));
    check("INN", &inn(idx, objects, q, k));
    check("KNN", &knn(idx, objects, q, k, KnnVariant::Basic));
    check("KNN-I", &knn(idx, objects, q, k, KnnVariant::EarlyEstimate));
    check("KNN-M", &knn(idx, objects, q, k, KnnVariant::MinDist));
}

/// A star: `spokes` rays of `depth` vertices each, every edge weight
/// exactly 1.0, positions on distinct rays. Every ring of the star is an
/// exact distance tie: the vertices at hop `h` on all spokes sit at network
/// distance exactly `h` from the hub.
fn tie_star(spokes: usize, depth: usize) -> (Arc<SpatialNetwork>, Vec<Vec<VertexId>>) {
    let mut b = NetworkBuilder::new();
    let hub = b.add_vertex(Point::new(0.0, 0.0));
    let mut rays = Vec::new();
    for s in 0..spokes {
        let angle = 2.0 * std::f64::consts::PI * s as f64 / spokes as f64;
        let mut prev = hub;
        let mut ray = Vec::new();
        for h in 1..=depth {
            let r = h as f64 * 10.0;
            let v = b.add_vertex(Point::new(r * angle.cos(), r * angle.sin()));
            b.add_edge_sym(prev, v, 1.0);
            prev = v;
            ray.push(v);
        }
        rays.push(ray);
    }
    (Arc::new(b.build()), rays)
}

/// An `rows × cols` integer lattice with unit edge weights: Manhattan
/// distances, so distance ties saturate every neighborhood.
fn tie_lattice(rows: usize, cols: usize) -> Arc<SpatialNetwork> {
    let mut b = NetworkBuilder::new();
    let mut ids = Vec::with_capacity(rows * cols);
    for y in 0..rows {
        for x in 0..cols {
            ids.push(b.add_vertex(Point::new(x as f64 * 10.0, y as f64 * 10.0)));
        }
    }
    for y in 0..rows {
        for x in 0..cols {
            let i = y * cols + x;
            if x + 1 < cols {
                b.add_edge_sym(ids[i], ids[i + 1], 1.0);
            }
            if y + 1 < rows {
                b.add_edge_sym(ids[i], ids[i + cols], 1.0);
            }
        }
    }
    Arc::new(b.build())
}

#[test]
fn tie_at_kth_on_star_rings() {
    // Objects on the first ring (distance exactly 1 from the hub, 6-way
    // tie) and the second ring (distance 2). Every k from 1..=8 slices a
    // tie group somewhere.
    let (g, rays) = tie_star(6, 3);
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 1 }).unwrap();
    let obj_vertices: Vec<VertexId> = rays.iter().flat_map(|ray| [ray[0], ray[1]]).collect();
    let objects = ObjectSet::from_vertices(&g, obj_vertices, 4);
    for k in 1..=8 {
        assert_all_algorithms_handle_ties(&g, &idx, &objects, VertexId(0), k, "star hub");
    }
    // From a spoke tip the tie structure is asymmetric — cover that too.
    let tip = rays[0][2];
    for k in [2, 5, 7] {
        assert_all_algorithms_handle_ties(&g, &idx, &objects, tip, k, "star tip");
    }
}

#[test]
fn tie_at_kth_on_unit_lattice() {
    // All vertices are objects: the d-th Manhattan ring around any query
    // is a 4d-way exact tie, so every k cuts through a tie group.
    let g = tie_lattice(6, 6);
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 1 }).unwrap();
    let objects = ObjectSet::from_vertices(&g, g.vertices().collect(), 4);
    for &q in &[14u32, 0, 35] {
        for k in [1usize, 2, 3, 4, 5, 8, 12] {
            assert_all_algorithms_handle_ties(&g, &idx, &objects, VertexId(q), k, "lattice");
        }
    }
}

#[test]
fn tie_at_kth_with_sparse_objects_on_lattice() {
    // Objects only on one tied ring: k smaller than the tie group forces
    // the pruning logic to pick *some* subset — any subset is correct, but
    // the distances must all equal the tied value.
    let g = tie_lattice(7, 7);
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 1 }).unwrap();
    let q = VertexId(24); // center of the 7×7 lattice
                          // The Manhattan ring at distance 2 around the center.
    let ring: Vec<VertexId> = g
        .vertices()
        .filter(|&v| {
            let (vx, vy) = (v.0 % 7, v.0 / 7);
            (vx as i64 - 3).abs() + (vy as i64 - 3).abs() == 2
        })
        .collect();
    assert_eq!(ring.len(), 8, "distance-2 ring of a 7x7 lattice");
    let objects = ObjectSet::from_vertices(&g, ring, 4);
    for k in 1..=8 {
        assert_all_algorithms_handle_ties(&g, &idx, &objects, q, k, "sparse ring");
    }
}

#[test]
fn parallel_build_answers_tied_queries_identically() {
    // Tie handling must not depend on build parallelism: the serial and
    // parallel indexes answer tied queries with identical result sets.
    let g = tie_lattice(5, 5);
    let serial =
        SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 1 }).unwrap();
    let parallel =
        SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 8, threads: 4 }).unwrap();
    let objects = ObjectSet::from_vertices(&g, g.vertices().collect(), 4);
    for &q in &[12u32, 3, 20] {
        for k in [2usize, 4, 6] {
            let a = knn(&serial, &objects, VertexId(q), k, KnnVariant::Basic);
            let b = knn(&parallel, &objects, VertexId(q), k, KnnVariant::Basic);
            assert_eq!(a.object_ids(), b.object_ids(), "serial/parallel mismatch at q={q} k={k}");
        }
    }
}
