//! End-to-end: generate a road network, build the SILC index, and verify
//! every query primitive against Dijkstra ground truth.

use silc::prelude::*;
use silc_network::generate::{grid_network, road_network, GridConfig, RoadConfig};
use silc_network::{analysis, dijkstra};
use silc_query::{knn, KnnVariant, ObjectSet};
use std::sync::Arc;

fn build(vertices: usize, seed: u64) -> (Arc<SpatialNetwork>, SilcIndex) {
    let g = Arc::new(road_network(&RoadConfig { vertices, seed, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 10, threads: 0 }).unwrap();
    (g, idx)
}

#[test]
fn distances_and_paths_match_dijkstra_exhaustively() {
    let (g, idx) = build(150, 1);
    for s in [VertexId(0), VertexId(75), VertexId(149)] {
        let truth = dijkstra::full_sssp(&g, s);
        for d in g.vertices() {
            let got = silc::path::network_distance(&idx, s, d).unwrap();
            assert!(
                (got - truth.dist[d.index()]).abs() < 1e-9,
                "distance {s}->{d}: {got} vs {}",
                truth.dist[d.index()]
            );
            // The interval from one lookup brackets the truth.
            let iv = idx.interval(s, d);
            assert!(iv.lo <= truth.dist[d.index()] + 1e-9);
            assert!(iv.hi >= truth.dist[d.index()] - 1e-9);
        }
    }
}

#[test]
fn paths_are_edge_valid() {
    let (g, idx) = build(150, 2);
    for &(s, d) in &[(0u32, 149u32), (10, 140), (75, 76)] {
        let p = silc::path::shortest_path(&idx, VertexId(s), VertexId(d)).unwrap();
        let mut total = 0.0;
        for w in p.path.windows(2) {
            total += g.edge_weight(w[0], w[1]).expect("consecutive path vertices share an edge");
        }
        assert!((total - p.distance).abs() < 1e-9);
    }
}

#[test]
fn knn_pipeline_on_grid_networks() {
    // The grid generator exercises different topology than the Gabriel one.
    let g =
        Arc::new(grid_network(&GridConfig { rows: 12, cols: 12, seed: 3, ..Default::default() }));
    assert!(analysis::is_strongly_connected(&g));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
    let objects = ObjectSet::random(&g, 0.1, 5);
    for &q in &[0u32, 71, 143] {
        let r = knn(&idx, &objects, VertexId(q), 5, KnnVariant::Basic);
        let truth = silc_query::verify::brute_force_knn(&g, &objects, VertexId(q), 5);
        let mut got: Vec<f64> = r
            .neighbors
            .iter()
            .map(|n| dijkstra::distance(&g, VertexId(q), n.vertex).unwrap())
            .collect();
        got.sort_by(f64::total_cmp);
        for (a, &(_, b)) in got.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn refinement_interval_always_brackets_truth() {
    let (g, idx) = build(120, 7);
    let s = VertexId(11);
    for d in g.vertices() {
        let truth = dijkstra::distance(&g, s, d).unwrap();
        let mut r = RefinableDistance::new(&idx, s, d);
        loop {
            let iv = r.interval();
            assert!(iv.lo <= truth + 1e-9 && iv.hi >= truth - 1e-9, "{iv} lost {truth}");
            if !r.refine(&idx) {
                break;
            }
        }
        assert!((r.interval().lo - truth).abs() < 1e-9);
    }
}

#[test]
fn largest_component_feeds_the_index() {
    // A disconnected network is rejected; its largest component builds fine.
    let mut b = silc_network::NetworkBuilder::new();
    use silc_geom::Point;
    let v: Vec<_> = (0..6).map(|i| b.add_vertex(Point::new(i as f64, (i % 2) as f64))).collect();
    b.add_edge_sym(v[0], v[1], 1.0);
    b.add_edge_sym(v[1], v[2], 1.0);
    b.add_edge_sym(v[2], v[0], 1.5);
    b.add_edge_sym(v[3], v[4], 1.0); // small island
                                     // v[5] isolated
    let g = Arc::new(b.build());
    assert!(SilcIndex::build(g.clone(), &BuildConfig::default()).is_err());
    let (comp, mapping) = analysis::largest_component(&g);
    assert_eq!(comp.vertex_count(), 3);
    let idx =
        SilcIndex::build(Arc::new(comp), &BuildConfig { grid_exponent: 6, threads: 0 }).unwrap();
    assert_eq!(idx.stats().vertices, 3);
    assert_eq!(mapping.len(), 3);
}
