//! Accuracy and coverage of the PCP / WSPD distance oracle against Dijkstra
//! ground truth, and its relationship to SILC's exact machinery.

use silc_network::generate::{road_network, RoadConfig};
use silc_network::{dijkstra, VertexId};
use silc_pcp::{wspd, DistanceOracle, SplitTree};

#[test]
fn oracle_covers_every_pair_and_respects_the_bound() {
    let g = road_network(&RoadConfig { vertices: 130, seed: 41, ..Default::default() });
    let o = DistanceOracle::build(&g, 10, 6.0);
    let eps = o.epsilon();
    let n = g.vertex_count() as u32;
    let mut checked = 0;
    for u in (0..n).step_by(11) {
        let truth = dijkstra::full_sssp(&g, VertexId(u));
        for v in (0..n).step_by(7) {
            if u == v {
                continue;
            }
            let t = truth.dist[v as usize];
            let a = o.distance(VertexId(u), VertexId(v));
            let rel = (a - t).abs() / t;
            assert!(rel <= 1.5 * eps + 0.05, "pair ({u},{v}): error {rel:.3} vs bound {eps:.3}");
            checked += 1;
        }
    }
    assert!(checked > 100, "sample too small to be meaningful");
}

#[test]
fn pair_counts_follow_the_s_squared_growth() {
    let g = road_network(&RoadConfig { vertices: 200, seed: 42, ..Default::default() });
    let tree = SplitTree::build(&g, 10);
    let p2 = wspd(&tree, 2.0).len() as f64;
    let p4 = wspd(&tree, 4.0).len() as f64;
    let p8 = wspd(&tree, 8.0).len() as f64;
    assert!(p4 > p2 && p8 > p4, "pair counts must grow with s");
    // Doubling s should grow pairs by roughly 4x, certainly < 8x.
    assert!(p8 / p4 < 8.0);
}

#[test]
fn oracle_is_usable_as_a_fast_filter_for_silc() {
    // A realistic composition: rank candidates by the oracle, verify the
    // winner exactly with SILC.
    use silc::prelude::*;
    use std::sync::Arc;
    let g = Arc::new(road_network(&RoadConfig { vertices: 130, seed: 43, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap();
    let oracle = DistanceOracle::build(&g, 10, 8.0);
    let q = VertexId(0);
    let candidates: Vec<VertexId> = (10..130).step_by(17).map(VertexId).collect();
    let oracle_best = *candidates
        .iter()
        .min_by(|a, b| oracle.distance(q, **a).total_cmp(&oracle.distance(q, **b)))
        .unwrap();
    let exact_best = *candidates
        .iter()
        .min_by(|a, b| {
            silc::path::network_distance(&idx, q, **a)
                .unwrap()
                .total_cmp(&silc::path::network_distance(&idx, q, **b).unwrap())
        })
        .unwrap();
    // The oracle's pick must be within ε of the exact best — and the exact
    // check through SILC confirms or corrects it.
    let d_oracle_pick = silc::path::network_distance(&idx, q, oracle_best).unwrap();
    let d_exact_best = silc::path::network_distance(&idx, q, exact_best).unwrap();
    assert!(d_oracle_pick <= d_exact_best * (1.0 + 2.0 * oracle.epsilon()) + 1e-9);
}
