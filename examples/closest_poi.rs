//! The paper's motivating scenario (p.6): find the closest FedEx Kinko's.
//!
//! Orders a handful of points of interest around a query point twice — by
//! straight-line ("as the crow flies") distance, the way 2008-era map
//! services ranked results, and by true network distance via SILC — and
//! shows how the orderings diverge and by how much a user would overshoot.
//!
//! ```sh
//! cargo run -p silc-bench --release --example closest_poi
//! ```

use silc::prelude::*;
use silc_network::generate::{road_network, RoadConfig};
use silc_query::{knn, KnnVariant, ObjectSet};
use std::sync::Arc;

fn main() {
    // A mid-sized city: 3,000 intersections with detour-prone streets
    // (weights up to 1.4× the straight-line length, like river crossings).
    let network = Arc::new(road_network(&RoadConfig {
        vertices: silc_bench::example_vertices(3000),
        edge_factor: 1.2,
        detour: 0.4,
        seed: 1908,
        ..Default::default()
    }));
    let index = SilcIndex::build(network.clone(), &BuildConfig::default()).unwrap();

    // Five copy shops spread across town (exactly one per name below, at
    // any network size); the piano store is our query.
    let n = network.vertex_count() as u32;
    let shops = ObjectSet::from_vertices(
        &network,
        (0..5u32).map(|i| VertexId(n * (2 * i + 1) / 10)).collect(),
        8,
    );
    let names = ["Monroeville", "Oakland", "NorthHills", "Downtown", "Greentree"];
    let piano_store = VertexId(n / 3);
    let qpos = network.position(piano_store);

    // Geodesic ordering: what a naive map service returns.
    let mut geodesic: Vec<(usize, f64)> =
        shops.iter().map(|(o, v)| (o.index(), qpos.distance(&network.position(v)))).collect();
    geodesic.sort_by(|a, b| a.1.total_cmp(&b.1));

    // Network ordering: what SILC returns.
    let result = knn(&index, &shops, piano_store, 5, KnnVariant::Basic);

    println!("query: piano store at {piano_store} {:?}", (qpos.x as i64, qpos.y as i64));
    println!("\n  geodesic ordering (\"as the crow flies\"):");
    for (rank, (o, d)) in geodesic.iter().enumerate() {
        println!("    {}. {:<12} {:>8.0}", rank + 1, names[*o], d);
    }
    println!("\n  network-distance ordering (SILC):");
    for (rank, n) in result.neighbors.iter().enumerate() {
        let exact = silc::path::network_distance(&index, piano_store, n.vertex).unwrap();
        println!("    {}. {:<12} {:>8.0}", rank + 1, names[n.object.index()], exact);
    }

    // The cost of trusting the crow: drive to the geodesic winner instead of
    // the true nearest.
    let geodesic_first = shops.vertex(silc_query::ObjectId(geodesic[0].0 as u32));
    let network_first = result.neighbors[0].vertex;
    let d_geo = silc::path::network_distance(&index, piano_store, geodesic_first).unwrap();
    let d_net = silc::path::network_distance(&index, piano_store, network_first).unwrap();
    if geodesic_first != network_first {
        println!(
            "\n  the geodesic pick costs {:.0} on the road, the true nearest {:.0} — error +{:.0} ({:.0}%)",
            d_geo,
            d_net,
            d_geo - d_net,
            100.0 * (d_geo - d_net) / d_net
        );
    } else {
        println!(
            "\n  (orderings agree on the winner this time — paper's point is they often don't)"
        );
    }
}
