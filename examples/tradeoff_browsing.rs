//! The paper's central trade-off, hands on: the exact SILC index vs the
//! ε-approximate PCP oracle (trade-off table p.11), both built over the
//! same network, both serialized to disk, both answering the same queries —
//! and the oracle plugged straight into the serving stack through the
//! `ApproxDistanceOracle` seam.
//!
//! ```sh
//! cargo run -p silc-bench --release --example tradeoff_browsing
//! ```

use silc::disk::{write_index, DiskSilcIndex};
use silc::{BuildConfig, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::VertexId;
use silc_pcp::{write_oracle, DiskDistanceOracle, DistanceOracle};
use silc_query::{approx_knn, knn, KnnVariant, ObjectSet, QueryEngine};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = silc_bench::example_vertices(800);
    let network =
        Arc::new(road_network(&RoadConfig { vertices: n, seed: 11, ..Default::default() }));
    let dir = std::env::temp_dir().join("silc-tradeoff-example");
    std::fs::create_dir_all(&dir).expect("create scratch directory");

    // Build both halves of the trade-off over the same network.
    let t = Instant::now();
    let index = SilcIndex::build(network.clone(), &BuildConfig::default()).unwrap();
    let silc_build = t.elapsed().as_secs_f64();
    let silc_path = dir.join("example.idx");
    write_index(&index, &silc_path).unwrap();
    drop(index);
    let disk_silc = Arc::new(DiskSilcIndex::open(&silc_path, network.clone(), 0.05).unwrap());

    let t = Instant::now();
    let oracle = DistanceOracle::build(&network, 10, 8.0);
    let pcp_build = t.elapsed().as_secs_f64();
    let pcp_path = dir.join("example.pcp");
    write_oracle(&oracle, &pcp_path).unwrap();
    let disk_pcp = DiskDistanceOracle::open(&pcp_path, 0.05).unwrap();

    println!("network: {} vertices", network.vertex_count());
    println!(
        "SILC index: built in {silc_build:.2}s, {} KiB on disk (exact answers)",
        std::fs::metadata(&silc_path).unwrap().len() / 1024
    );
    println!(
        "PCP oracle: built in {pcp_build:.2}s, {} pairs, {} KiB on disk, ε bound {:.2}",
        oracle.pair_count(),
        std::fs::metadata(&pcp_path).unwrap().len() / 1024,
        oracle.epsilon()
    );

    // The same distance queries through all three backends.
    let nv = network.vertex_count() as u32;
    let pairs: Vec<(VertexId, VertexId)> =
        (0..120u32).map(|i| (VertexId((i * 37) % nv), VertexId((i * 101 + 13) % nv))).collect();
    let mut rows = Vec::new();
    for (name, f) in [
        (
            "SILC disk (exact)",
            Box::new(|u, v| silc::path::network_distance(&*disk_silc, u, v).unwrap())
                as Box<dyn Fn(VertexId, VertexId) -> f64>,
        ),
        ("PCP memory", Box::new(|u, v| oracle.distance(u, v))),
        ("PCP disk", Box::new(|u, v| disk_pcp.distance(u, v))),
    ] {
        let t = Instant::now();
        let answers: Vec<f64> = pairs.iter().map(|&(u, v)| f(u, v)).collect();
        let us_per_query = t.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;
        rows.push((name, us_per_query, answers));
    }
    let exact = rows[0].2.clone();
    println!("\n{:<18} {:>12} {:>12} {:>12}", "backend", "µs/query", "mean err %", "max err %");
    for (name, us, answers) in &rows {
        let mut sum = 0.0;
        let mut worst = 0.0f64;
        let mut count = 0;
        for (&e, &a) in exact.iter().zip(answers) {
            if e > 0.0 {
                let err = (a - e).abs() / e;
                sum += err;
                worst = worst.max(err);
                count += 1;
            }
        }
        println!(
            "{:<18} {:>12.2} {:>12.1} {:>12.1}",
            name,
            us,
            100.0 * sum / count as f64,
            100.0 * worst
        );
    }

    // The serving-stack view: ε-approximate kNN against exact kNN, through
    // the same QueryEngine/QuerySession layer.
    let objects = Arc::new(ObjectSet::random(&network, 0.08, 23));
    let engine = QueryEngine::new(disk_silc.clone(), objects.clone());
    let mut session = engine.session();
    let q = VertexId(nv / 3);
    let k = 5usize.min(objects.len());
    let exact_knn = knn(&*disk_silc, &objects, q, k, KnnVariant::Basic);
    let approx = approx_knn(&disk_pcp, &network, &objects, q, k);
    let via_session = session.approx_knn(&disk_pcp, q, k);
    assert_eq!(via_session.neighbors.len(), approx.neighbors.len());
    println!("\n{k}-NN from {q}: exact vs ε-approximate (one oracle probe per candidate)");
    for (e, a) in exact_knn.neighbors.iter().zip(&approx.neighbors) {
        println!(
            "  exact {:?} interval {}  |  approx {:?} interval {}",
            e.object, e.interval, a.object, a.interval
        );
    }
    let shared = approx
        .neighbors
        .iter()
        .filter(|a| exact_knn.neighbors.iter().any(|e| e.object == a.object))
        .count();
    println!("  overlap with the exact result set: {shared}/{k}");

    std::fs::remove_file(&silc_path).ok();
    std::fs::remove_file(&pcp_path).ok();
}
