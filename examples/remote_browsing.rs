//! Distance browsing over a wire.
//!
//! Everything the other walkthroughs do locally — exact kNN, the
//! incremental variants, ε-approximate answers — served here through
//! `silc-server`'s length-prefixed binary protocol on a loopback TCP
//! socket, and checked bit-identical to a local `QuerySession` on the
//! same index. Batches submitted over the wire are drained from a
//! bounded queue and sorted by query-point Morton code before
//! execution, so spatially adjacent queries share just-faulted pages.
//!
//! ```sh
//! cargo run -p silc-bench --release --example remote_browsing
//! ```

use silc::{BuildConfig, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::VertexId;
use silc_pcp::DistanceOracle;
use silc_query::{ApproxDistanceOracle, KnnVariant, ObjectSet, QueryEngine};
use silc_server::server::DynBrowser;
use silc_server::{Algorithm, Client, Outcome, QueryBody, Server, ServerBackend, ServerConfig};
use std::sync::Arc;

fn main() {
    let k = 4u32;

    // The embedder's side: a network, its SILC index, an object set, and
    // the ε-approximate oracle — exactly what a local session would use.
    let network = Arc::new(road_network(&RoadConfig {
        vertices: silc_bench::example_vertices(2000),
        seed: 2718,
        ..Default::default()
    }));
    let n = network.vertex_count();
    println!("building the SILC index and PCP oracle for {n} vertices…");
    let index = Arc::new(SilcIndex::build(network.clone(), &BuildConfig::default()).unwrap());
    let cafes = Arc::new(ObjectSet::random(&network, 0.08, 41));
    let engine: Arc<QueryEngine<DynBrowser>> = Arc::new(QueryEngine::new(index, cafes));
    let oracle: Arc<dyn ApproxDistanceOracle> = Arc::new(DistanceOracle::build(&network, 9, 8.0));

    // The server: an ephemeral loopback port, Morton-ordered batching.
    let backend = ServerBackend {
        engine: engine.clone(),
        routable: None,
        oracle: Some(oracle),
        warnings: Vec::new(),
    };
    let server = Server::start("127.0.0.1:0", backend, ServerConfig::default()).unwrap();
    println!("serving on {}…", server.addr());

    // The browser's side: a TCP client, no index in sight.
    let mut client = Client::connect(server.addr()).unwrap();
    let info = client.info();
    println!(
        "connected: protocol v{}, {} vertices, {} objects, capability bits {:#04b}",
        info.version, info.vertex_count, info.object_count, info.capabilities
    );

    // One interactive query: the k nearest cafés by network distance.
    let q = VertexId(7 % n as u32);
    let answer =
        match client.query(QueryBody { algorithm: Algorithm::Knn, vertex: q.0, k }).unwrap() {
            Outcome::Answer(a) => a,
            other => panic!("unexpected outcome: {other:?}"),
        };
    println!("\nnearest {k} cafés to vertex {}:", q.0);
    for wn in &answer.neighbors {
        println!(
            "  object {:>4} at vertex {:>5}, network distance {:.3}",
            wn.object,
            wn.vertex,
            f64::from_bits(wn.lo_bits)
        );
    }

    // The wire answer is bit-identical to a local session on the same
    // engine — distances travel as f64 bit patterns, not decimal text.
    let mut local = engine.session();
    let local_answer = local.knn(q, k as usize, KnnVariant::Basic);
    for (wn, ln) in answer.neighbors.iter().zip(&local_answer.neighbors) {
        assert_eq!(wn.object, ln.object.0);
        assert_eq!(wn.lo_bits, ln.interval.lo.to_bits());
        assert_eq!(wn.hi_bits, ln.interval.hi.to_bits());
    }
    println!("  … bit-identical to a local QuerySession.");

    // A batch: scattered query points, mixed algorithms (exact variants
    // and the ε-approximate oracle), one round trip. The server sorts
    // the drained batch by Morton code before executing it.
    let algorithms =
        [Algorithm::Knn, Algorithm::KnnI, Algorithm::KnnM, Algorithm::Inn, Algorithm::Approx];
    let bodies: Vec<QueryBody> = (0..40u32)
        .map(|i| QueryBody {
            algorithm: algorithms[i as usize % algorithms.len()],
            vertex: (i * 97) % n as u32,
            k,
        })
        .collect();
    let outcomes = client.batch(&bodies).unwrap();
    let answered = outcomes.iter().filter(|o| matches!(o, Outcome::Answer(_))).count();
    println!(
        "\nbatch of {} mixed queries: {answered} answered, {} shed as SERVER_BUSY",
        bodies.len(),
        outcomes.len() - answered
    );

    // The status frame: the server's own accounting of this session.
    let status = client.status().unwrap();
    println!(
        "server status: {} queries answered, {} batches drained, queue {}/{}",
        status.queries_answered, status.batches_drained, status.queue_depth, status.queue_capacity
    );

    client.goodbye().unwrap();
    server.shutdown();
    println!("\nclean shutdown — remote browsing works.");
}
