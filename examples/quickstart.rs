//! Quickstart: build a road network, precompute the SILC index, and browse
//! network distances — nearest neighbors, shortest paths, and progressive
//! refinement — without ever running Dijkstra at query time.
//!
//! ```sh
//! cargo run -p silc-bench --release --example quickstart
//! ```

use silc::prelude::*;
use silc_network::generate::{road_network, RoadConfig};
use silc_query::{knn, KnnVariant, ObjectSet};
use std::sync::Arc;

fn main() {
    // 1. A synthetic road network: 2,000 intersections, road costs
    //    proportional to length (the paper's substrate is a TIGER extract).
    let network = Arc::new(road_network(&RoadConfig {
        vertices: silc_bench::example_vertices(2000),
        edge_factor: 1.25,
        seed: 42,
        ..Default::default()
    }));
    println!(
        "network: {} vertices, {} directed edges",
        network.vertex_count(),
        network.edge_count()
    );

    // 2. Precompute the SILC index: one shortest-path quadtree per vertex.
    let t = std::time::Instant::now();
    let index = SilcIndex::build(network.clone(), &BuildConfig::default()).unwrap();
    println!(
        "SILC index: {} Morton blocks ({:.1} per vertex) in {:.2}s",
        index.stats().total_blocks,
        index.stats().total_blocks as f64 / network.vertex_count() as f64,
        t.elapsed().as_secs_f64()
    );

    // 3. Shortest path retrieval in size-of-path steps.
    let n = network.vertex_count() as u32;
    let (s, d) = (VertexId(17 % n), VertexId(n * 9 / 10));
    let path = silc::path::shortest_path(&index, s, d).unwrap();
    println!(
        "shortest path {s} -> {d}: {} edges, network distance {:.1}",
        path.edge_count(),
        path.distance
    );

    // 4. Progressive refinement: distances as shrinking intervals.
    let mut refinable = RefinableDistance::new(&index, s, d);
    println!("refining d({s}, {d}):");
    for step in 0..4 {
        println!("  step {step}: {}", refinable.interval());
        refinable.refine(&index);
    }
    println!("  … exact after full refinement: {:.1}", refinable.refine_until_exact(&index));

    // 5. k nearest neighbors from a separate object set (the decoupling:
    //    objects live outside the index and can change freely).
    let restaurants = ObjectSet::random(&network, 0.05, 7);
    let result = knn(&index, &restaurants, s, 5, KnnVariant::Basic);
    println!("5 nearest of {} restaurants from {s}:", restaurants.len());
    for n in &result.neighbors {
        println!(
            "  object {:>4} on {:>6}  distance {}",
            n.object.0,
            n.vertex.to_string(),
            n.interval
        );
    }
    println!("({} refinements, max queue {})", result.stats.refinements, result.stats.max_queue);
}
