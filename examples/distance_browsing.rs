//! Distance browsing with progressive refinement (paper p.18):
//! "Is Munich closer to Mainz than to Bremen?" — answered by tightening two
//! distance intervals just far enough to separate them, plus the pp.3/7
//! visit-count comparison against Dijkstra.
//!
//! ```sh
//! cargo run -p silc-bench --release --example distance_browsing
//! ```

use silc::prelude::*;
use silc::refine::compare_refining;
use silc_network::{
    dijkstra,
    generate::{road_network, RoadConfig},
};
use std::sync::Arc;

fn main() {
    let network = Arc::new(road_network(&RoadConfig {
        vertices: silc_bench::example_vertices(4233), // the paper's anecdote network size
        seed: 7,
        ..Default::default()
    }));
    let index = SilcIndex::build(network.clone(), &BuildConfig::default()).unwrap();

    // Three cities: the comparison query of p.18, placed proportionally so
    // the scaled-down smoke-test network keeps the same geography.
    let n = network.vertex_count() as u32;
    let mainz = VertexId(n / 42);
    let munich = VertexId(n / 2);
    let bremen = VertexId(n * 19 / 20);

    let mut to_munich = RefinableDistance::new(&index, mainz, munich);
    let mut to_bremen = RefinableDistance::new(&index, mainz, bremen);
    println!("is Munich closer to Mainz than Bremen?");
    println!(
        "  initial intervals: munich {} bremen {}",
        to_munich.interval(),
        to_bremen.interval()
    );
    let order = compare_refining(&index, &mut to_munich, &mut to_bremen);
    println!(
        "  answer: {:?} after {} + {} refinements (intervals {} vs {})",
        order,
        to_munich.refinements(),
        to_bremen.refinements(),
        to_munich.interval(),
        to_bremen.interval()
    );
    let d_munich = dijkstra::distance(&network, mainz, munich).unwrap();
    let d_bremen = dijkstra::distance(&network, mainz, bremen).unwrap();
    println!("  ground truth: munich {d_munich:.1}, bremen {d_bremen:.1}");

    // The pp.3/7 anecdote: Dijkstra settles most of the network for one
    // long path; SILC touches only the path vertices.
    let s = VertexId(0);
    let d = network
        .vertices()
        .max_by(|a, b| network.euclidean(s, *a).total_cmp(&network.euclidean(s, *b)))
        .unwrap();
    let dij = dijkstra::point_to_point(&network, s, d).unwrap();
    let silc_path = silc::path::shortest_path(&index, s, d).unwrap();
    println!("\nlong path {s} -> {d} ({} edges):", silc_path.edge_count());
    println!(
        "  Dijkstra settled {} of {} vertices ({:.0}%)",
        dij.visited,
        network.vertex_count(),
        100.0 * dij.visited as f64 / network.vertex_count() as f64
    );
    println!(
        "  SILC touched {} vertices (the path itself), distance {:.1} (= {:.1})",
        silc_path.path.len(),
        silc_path.distance,
        dij.distance
    );
}
