//! The PCP / well-separated-pair distance oracle (paper pp.28–29):
//! `O(s²n)` precomputed representative distances answer any of the `n²`
//! vertex-pair distance queries approximately, in microseconds.
//!
//! ```sh
//! cargo run -p silc-bench --release --example oracle_approx
//! ```

use silc_network::{
    dijkstra,
    generate::{road_network, RoadConfig},
    VertexId,
};
use silc_pcp::DistanceOracle;

fn main() {
    let network = road_network(&RoadConfig {
        vertices: silc_bench::example_vertices(800),
        seed: 3,
        ..Default::default()
    });
    println!(
        "network: {} vertices; {} possible distance queries",
        network.vertex_count(),
        network.vertex_count() * (network.vertex_count() - 1)
    );

    for s in [2.0, 4.0, 8.0] {
        let t = std::time::Instant::now();
        let oracle = DistanceOracle::build(&network, 10, s);
        let build = t.elapsed().as_secs_f64();

        // Error over a deterministic sample of pairs.
        let mut worst: f64 = 0.0;
        let mut total = 0.0;
        let mut count = 0;
        for i in 0..50u32 {
            let u = VertexId((i * 37) % network.vertex_count() as u32);
            let v = VertexId((i * 101 + 13) % network.vertex_count() as u32);
            if u == v {
                continue;
            }
            let truth = dijkstra::distance(&network, u, v).unwrap();
            let approx = oracle.distance(u, v);
            let err = (approx - truth).abs() / truth;
            worst = worst.max(err);
            total += err;
            count += 1;
        }
        println!(
            "s = {s:>4}: {:>7} pairs, built in {build:.2}s, ε-bound {:.2}, mean error {:.1}%, worst {:.1}%",
            oracle.pair_count(),
            oracle.epsilon(),
            100.0 * total / count as f64,
            100.0 * worst
        );
    }

    // The I-80 intuition: one representative pair covers entire regions.
    let oracle = DistanceOracle::build(&network, 10, 4.0);
    let n = network.vertex_count() as u32;
    let (u, v) = (VertexId(1), VertexId(n - n / 10));
    let (ra, rb) = oracle.representatives(u, v).unwrap();
    println!("\nquery ({u}, {v}) is answered by the representative pair ({ra}, {rb}):");
    println!(
        "  oracle {:.1} vs true {:.1}",
        oracle.distance(u, v),
        dijkstra::distance(&network, u, v).unwrap()
    );
}
