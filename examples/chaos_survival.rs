//! Surviving a faulty disk: retries, typed corruption, and degraded
//! cross-shard answers.
//!
//! The disk-resident structures of this repository assume the disk
//! misbehaves: pages suffer transient hiccups (retried with bounded
//! backoff), bit rot (caught by per-page checksums and surfaced as
//! a typed error naming the page), and whole shards die (the partitioned
//! router keeps serving healthy shards and marks the answer degraded).
//! This walkthrough injects each of those faults on purpose and shows the
//! machinery reacting:
//!
//! 1. a seeded fault schedule over a single disk index — every query
//!    either matches the fault-free answer bit for bit or returns a typed
//!    error, with the pool's retry counters on display,
//! 2. a partitioned index with one shard killed mid-serving — routed kNN
//!    keeps answering with sound intervals and lists the dead shard in
//!    `degraded`.
//!
//! ```sh
//! cargo run -p silc-bench --release --example chaos_survival
//! ```

use silc::disk::{write_index, DiskSilcIndex};
use silc::partitioned::{PartitionedBuildConfig, PartitionedSilcIndex};
use silc::{BuildConfig, QueryError, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::partition::PartitionConfig;
use silc_network::VertexId;
use silc_query::{KnnVariant, ObjectSet, PartitionedEngine, QueryEngine};
use silc_storage::{FaultInjectingPageStore, FaultRates, FilePageStore};
use std::sync::Arc;

fn main() {
    let network = Arc::new(road_network(&RoadConfig {
        vertices: silc_bench::example_vertices(2000),
        seed: 1999,
        ..Default::default()
    }));
    let n = network.vertex_count();
    println!("building a SILC index for {n} vertices…");
    let index = SilcIndex::build(network.clone(), &BuildConfig::default()).unwrap();
    let dir = std::env::temp_dir().join("silc-example-chaos");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chaos.idx");
    write_index(&index, &path).unwrap();
    drop(index);
    let cafes = Arc::new(ObjectSet::random(&network, 0.05, 7));

    // ── Act 1: a flaky disk under a single index ────────────────────────
    // The fault-free reference first.
    let clean = Arc::new(DiskSilcIndex::open(&path, network.clone(), 0.25).unwrap());
    let clean_engine = QueryEngine::new(clean, cafes.clone());
    let mut clean_session = clean_engine.session();

    // The same file behind a seeded fault injector: ~3 % of page reads
    // hiccup transiently, ~1 % read back flipped bits.
    let rates = FaultRates { transient: 0.03, permanent: 0.0, bit_flip: 0.01, torn: 0.01 };
    let store = FaultInjectingPageStore::seeded(FilePageStore::open(&path).unwrap(), 0xC405, rates);
    let store = Arc::new(store);
    let faulty = DiskSilcIndex::from_store(
        Box::new(Arc::clone(&store)),
        network.clone(),
        0.25,
        silc_storage::default_decoded_capacity(n),
    )
    .unwrap();
    let faulty = Arc::new(faulty);
    let engine = QueryEngine::new(Arc::clone(&faulty), cafes.clone());
    let mut session = engine.session();

    let (mut identical, mut corrupt, mut io) = (0usize, 0usize, 0usize);
    for q in (0..n as u32).step_by(17) {
        let q = VertexId(q);
        let want = clean_session.knn(q, 5, KnnVariant::Basic).clone();
        match session.try_knn(q, 5, KnnVariant::Basic) {
            Ok(got) => {
                assert_eq!(got.neighbors.len(), want.neighbors.len());
                for (a, b) in got.neighbors.iter().zip(&want.neighbors) {
                    assert_eq!(a.object, b.object, "Ok answers must match the fault-free run");
                }
                identical += 1;
            }
            Err(QueryError::Corrupt { page, detail }) => {
                if corrupt == 0 {
                    println!("  caught corruption on page {page:?}: {detail}");
                }
                corrupt += 1;
            }
            Err(QueryError::Io(e)) => {
                if io == 0 {
                    println!("  an I/O failure survived the retries: {e}");
                }
                io += 1;
            }
        }
    }
    let stats = faulty.io_stats();
    let injected = store.injected();
    println!(
        "flaky disk: {identical} queries bit-identical, {corrupt} typed corruption, {io} I/O errors"
    );
    println!(
        "  injector: {} transient / {} bit-flips / {} torn; pool saw {} faults, retried {}",
        injected.transient, injected.bit_flips, injected.torn, stats.faults_seen, stats.retries
    );

    // ── Act 2: a dead shard under the partitioned router ────────────────
    let pdir = dir.join("shards");
    std::fs::remove_dir_all(&pdir).ok();
    let cfg = PartitionedBuildConfig {
        partition: PartitionConfig { shards: 4, ..Default::default() },
        grid_exponent: 9,
        threads: 0,
        cache_fraction: 0.25,
    };
    println!("partitioning the network into 4 disk shards…");
    PartitionedSilcIndex::build_in_dir(network.clone(), &pdir, &cfg).unwrap();
    let mut handles = Vec::new();
    let pidx = Arc::new(
        PartitionedSilcIndex::open_dir_with(network.clone(), &pdir, &cfg, |_, shard_store| {
            let f = Arc::new(FaultInjectingPageStore::passthrough(shard_store));
            handles.push(Arc::clone(&f));
            Box::new(f)
        })
        .unwrap(),
    );
    let engine = PartitionedEngine::new(Arc::clone(&pidx), cafes.clone());
    let mut routed = engine.session();

    let q = VertexId(0);
    let healthy = routed.knn(q, 5).clone();
    println!(
        "healthy routed kNN from {q}: {} neighbors, complete = {}",
        healthy.neighbors.len(),
        healthy.complete
    );

    // Pull the plug on a non-home shard.
    let dead = (pidx.partition().shard_of(q) as usize + 1) % 4;
    handles[dead].kill();
    pidx.shard_index(dead).clear_cache();
    println!("killing shard {dead} and asking again…");

    let mut after = engine.session();
    let res = after.knn(q, 5).clone();
    println!(
        "degraded routed kNN: {} neighbors, complete = {}, degraded shards = {:?}",
        res.neighbors.len(),
        res.complete,
        res.degraded
    );
    for nb in res.neighbors.iter().take(3) {
        println!("  object {} in shard {} at interval {}", nb.object.0, nb.shard, nb.interval);
    }
    println!("every interval above still contains its true distance — degraded, never wrong.");

    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&pdir).ok();
}
