//! Serving many clients from one disk-resident index.
//!
//! The paper's framing (§6, p.32): each query is cheap — a handful of page
//! reads through a shared cache — precisely so that a *server* can answer
//! huge numbers of them. This walkthrough is that server in miniature:
//! one `Arc<DiskSilcIndex>` (sharded buffer pool + decoded-entries cache)
//! shared by N worker threads, each running back-to-back kNN queries
//! through its own `QuerySession` (reusable workspaces, zero steady-state
//! allocations), then the aggregate throughput and cache behaviour.
//!
//! ```sh
//! cargo run -p silc-bench --release --example concurrent_serving
//! ```

use silc::disk::{write_index, DiskSilcIndex};
use silc::{BuildConfig, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::VertexId;
use silc_query::{KnnVariant, ObjectSet, QueryEngine};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let workers = 4usize;
    let queries_per_worker = 400usize;
    let k = 5usize;

    // A city-sized network, its index written to a real page file.
    let network = Arc::new(road_network(&RoadConfig {
        vertices: silc_bench::example_vertices(2000),
        seed: 314,
        ..Default::default()
    }));
    let n = network.vertex_count();
    println!("building the SILC index for {n} vertices…");
    let index = SilcIndex::build(network.clone(), &BuildConfig::default()).unwrap();
    let dir = std::env::temp_dir().join("silc-example-serving");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serving.idx");
    write_index(&index, &path).unwrap();
    drop(index);

    // The server side: one shared disk index (the paper's 5 % page cache),
    // one shared object set, one engine.
    let disk = Arc::new(DiskSilcIndex::open(&path, network.clone(), 0.05).unwrap());
    let restaurants = Arc::new(ObjectSet::random(&network, 0.05, 99));
    let engine = QueryEngine::new(disk.clone(), restaurants);
    println!(
        "serving from {} disk pages with {} workers × {} queries each…",
        disk.page_count(),
        workers,
        queries_per_worker
    );

    // N clients: every thread opens a session and hammers the shared index.
    let start = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                let mut session = engine.session();
                let mut answered = 0usize;
                for i in 0..queries_per_worker {
                    let q = VertexId(((i * 131 + w * 17) % n) as u32);
                    let result = session.knn(q, k, KnnVariant::Basic);
                    answered += usize::from(!result.neighbors.is_empty());
                }
                answered
            })
        })
        .collect();
    let answered: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed().as_secs_f64();

    let total = workers * queries_per_worker;
    let io = disk.io_stats();
    let cache = disk.entry_cache_stats();
    println!(
        "\n  {total} queries answered in {elapsed:.2}s = {:.0} QPS aggregate",
        total as f64 / elapsed
    );
    println!("  every query returned neighbors: {}", answered == total);
    println!(
        "  page pool:     {:>8} requests, hit rate {:.1}%",
        io.requests(),
        io.hit_rate() * 100.0
    );
    println!(
        "  entry cache:   {:>8} lookups,  hit rate {:.1}%",
        cache.requests(),
        cache.hit_rate() * 100.0
    );
    println!(
        "  disk traffic:  {:>8} pages read ({:.1} KiB)",
        io.misses,
        io.bytes_read as f64 / 1024.0
    );
    std::fs::remove_file(&path).ok();
}
