//! Offline stand-in for the `Buf` / `BufMut` subset of the `bytes` crate:
//! little-endian primitive reads over `&[u8]` and writes into `Vec<u8>`,
//! which is exactly what the page serialization in `silc-network::io`,
//! `silc-network::paged`, and `silc::disk` needs.

/// Sequential reader over a byte source (implemented for `&[u8]`).
///
/// Reads consume from the front; running past the end panics, like the real
/// `bytes::Buf`.
pub trait Buf {
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: {} bytes requested, {} remaining",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Sequential writer into a growable byte sink (implemented for `Vec<u8>`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(0xAB);
        v.put_u16_le(0xBEEF);
        v.put_u32_le(0xDEAD_BEEF);
        v.put_u64_le(0x0123_4567_89AB_CDEF);
        v.put_f32_le(1.5);
        v.put_f64_le(-2.25);
        v.put_slice(b"xyz");

        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
