//! Offline stand-in for the `proptest` subset this workspace uses: the
//! `proptest!` macro over named strategies, numeric range strategies,
//! `any::<T>()`, tuple strategies, `collection::vec`, and
//! `prop_assert!`/`prop_assert_eq!` with input reporting on failure.
//!
//! Differences from the real crate, by design:
//! * cases are generated from a fixed deterministic seed (reproducible CI),
//! * no shrinking — a failure reports the full generated inputs instead,
//! * strategies compose structurally (ranges, tuples, vecs) but there are
//!   no combinators (`prop_map`, `prop_filter`, …) because nothing in-tree
//!   uses them,
//! * the `PROPTEST_CASES` environment variable overrides the case count of
//!   **every** property, including ones with an in-source
//!   `ProptestConfig::with_cases` (the real crate lets explicit configs
//!   win). This is deliberate: it is the single lever the scheduled CI
//!   deep-fuzz job pulls to run the committed suites at elevated depth
//!   without touching the PR-blocking defaults.

use rand::rngs::StdRng;
use rand::Rng;

#[doc(hidden)]
pub use rand as __rand;

pub mod collection;

/// Runtime configuration accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Applies the `PROPTEST_CASES` override to a property's configured case
/// count (see the crate docs: unlike the real crate, the override also
/// beats in-source `with_cases` so CI can deepen committed suites).
///
/// # Panics
/// Panics when the variable is set but not a positive integer — a
/// misconfigured CI job must fail loudly, not silently fuzz at the shallow
/// default.
#[doc(hidden)]
pub fn __apply_env_override(config: ProptestConfig) -> ProptestConfig {
    apply_override(config, std::env::var("PROPTEST_CASES").ok().as_deref())
}

/// The env-free core of [`__apply_env_override`], so tests can exercise the
/// override logic without mutating the process-global environment (which
/// would race against the other tests in the binary, all of which read the
/// variable through the `proptest!` runner).
fn apply_override(mut config: ProptestConfig, raw: Option<&str>) -> ProptestConfig {
    if let Some(raw) = raw {
        match raw.parse::<u32>() {
            Ok(cases) if cases > 0 => config.cases = cases,
            _ => panic!("PROPTEST_CASES must be a positive integer, got {raw:?}"),
        }
    }
    config
}

/// A generator of values for one property input.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Types with a default whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy drawing from a type's full domain.
pub struct Any<T>(core::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The imports `proptest!` bodies rely on.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Entry point mirroring `proptest::proptest!`: wraps each contained
/// `fn name(arg in strategy, ..) { body }` in a `#[test]`-compatible runner
/// that checks the body against `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $crate::__apply_env_override($cfg);
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                0x5EED ^ $crate::__fnv1a(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let Err(message) = outcome {
                    panic!(
                        "proptest property {} failed at case {}/{}:\n  {}\n  inputs: {}",
                        stringify!($name), case + 1, config.cases, message, inputs,
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Const FNV-1a over a string, used to give every property its own
/// deterministic RNG stream.
#[doc(hidden)]
pub const fn __fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// `prop_assert!`: on failure, aborts the *case* with a message (the runner
/// reports the generated inputs), instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left != right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n    both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in -1.5f64..=1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..=1.5).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pts in crate::collection::vec((0f64..4.0, 0f64..4.0), 1..6),
            n in any::<u8>(),
        ) {
            prop_assert!(!pts.is_empty() && pts.len() < 6);
            for (x, y) in &pts {
                prop_assert!((0.0..4.0).contains(x) && (0.0..4.0).contains(y));
            }
            let widened = n as u16;
            prop_assert_eq!(widened as u8, n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_cases_is_respected(_x in 0u32..2) {
            // Only checks the macro accepts a config block; the case count
            // itself is exercised by `failure_reports_inputs` below.
        }
    }

    #[test]
    fn env_override_beats_explicit_config() {
        // Exercised through the env-free core — mutating the real
        // PROPTEST_CASES here would race against every other test in this
        // binary, all of which read it through the proptest! runner.
        // Without the variable, the explicit config wins.
        assert_eq!(crate::apply_override(ProptestConfig::with_cases(8), None).cases, 8);
        // With it, the override beats even an in-source with_cases — the
        // deep-fuzz CI lever.
        assert_eq!(crate::apply_override(ProptestConfig::with_cases(8), Some("160")).cases, 160);
        // A malformed or non-positive value must fail loudly, not silently
        // under-fuzz.
        for bad in ["many", "0", "-3", ""] {
            let result = std::panic::catch_unwind(|| {
                crate::apply_override(ProptestConfig::default(), Some(bad))
            });
            assert!(result.is_err(), "PROPTEST_CASES={bad:?} must panic");
        }
    }

    #[test]
    fn failure_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(v in 10u64..11) {
                    prop_assert!(v > 10, "v was {}", v);
                }
            }
            always_fails();
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("v was 10"), "unexpected message: {message}");
        assert!(message.contains("v = 10"), "unexpected message: {message}");
    }
}
