//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy producing `Vec`s with lengths drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "vec strategy needs a non-empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
