//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen` / `gen_range` / `gen_bool`, and
//! [`seq::SliceRandom`] (`choose` / `shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for test data and synthetic networks. The
//! stream differs from the real `rand`'s `StdRng` (ChaCha12), so seeds
//! produce different (but equally valid) networks than a registry build
//! would.

pub mod rngs;
pub mod seq;

/// Core source of randomness: 64 bits at a time.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable uniformly over their "natural" domain (`[0, 1)` for
/// floats, the full range for integers) — the shim's stand-in for
/// `Standard: Distribution<T>`.
pub trait Standard {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&y));
            let z = rng.gen_range(5usize..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
