//! Slice helpers mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}
