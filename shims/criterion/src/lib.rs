//! Offline stand-in for the Criterion benchmarking API this workspace uses:
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter`.
//!
//! Measurement is deliberately simple — median of `sample_size` timed
//! samples after one warm-up, printed as a table row — but the bench
//! *harness contract* is the real one, so `cargo bench` runs every target
//! and swapping in registry Criterion changes no bench source.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, one per `criterion_group!`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("\n== group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into().label, sample_size, f);
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up, then `sample_size` timed samples.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    bencher.samples.sort();
    let median = bencher.samples.get(bencher.samples.len() / 2).copied().unwrap_or_default();
    println!("{label:<56} median {median:>12.2?} over {sample_size} samples");
}

/// Returns its argument unoptimized, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
