//! Offline stand-in for `parking_lot::Mutex`: `std::sync::Mutex` with
//! parking_lot's panic-free `lock()` signature (no `Result`; a poisoned
//! lock — only possible if a holder panicked — just propagates the panic).

use std::sync::MutexGuard;

#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
