//! Offline stand-in for `serde`: marker traits plus no-op derives.
//!
//! In-tree code only ever *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — nothing consumes the serde data model (persistence goes
//! through the hand-rolled binary format in `silc-network::io` and
//! `silc-storage`). The traits here are empty markers and the derives
//! expand to nothing, so the annotations stay source-compatible with the
//! real `serde` while compiling offline.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
