//! Offline stand-in for `crossbeam::channel::unbounded`, backed by
//! `std::sync::mpsc`. The workspace uses exactly the intersection of the
//! two APIs — `unbounded()`, `Sender::clone`/`send`, and draining the
//! receiver by iteration — so the swap is behavior-preserving (mpsc is
//! merely slower under heavy contention, which the index builder's
//! one-message-per-vertex traffic never reaches).

pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError, Sender};

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
