//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The workspace annotates its core types with serde derives so that a
//! registry build can serialize them, but nothing in-tree consumes the
//! serde data model (all persistence is the hand-rolled page format in
//! `silc-network::io` / `silc-storage`). These derives therefore expand to
//! nothing, which keeps the annotations compiling without the real
//! `serde_derive`'s dependency tree.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
