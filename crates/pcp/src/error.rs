//! Errors raised while writing or opening a disk-resident oracle.

use std::io;

/// Why a disk-resident oracle could not be written or opened.
#[derive(Debug)]
pub enum PcpError {
    /// An I/O error while writing or reading the oracle file.
    Io(io::Error),
    /// The oracle file is malformed (bad magic, unsupported version,
    /// truncated or inconsistent regions).
    Corrupt(String),
}

impl std::fmt::Display for PcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcpError::Io(e) => write!(f, "I/O error: {e}"),
            PcpError::Corrupt(msg) => write!(f, "corrupt oracle file: {msg}"),
        }
    }
}

impl std::error::Error for PcpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PcpError::Io(e) => Some(e),
            PcpError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for PcpError {
    /// Lifts an I/O error. Two flavors carry corruption, not I/O trouble,
    /// and become [`PcpError::Corrupt`]: the typed page-checksum payload of
    /// `silc_storage::corrupt_page` (keeping the page it names) and any
    /// other `InvalidData` error (the decoders' structural checks).
    fn from(e: io::Error) -> Self {
        if let Some(pc) = silc_storage::as_page_corrupt(&e) {
            return PcpError::Corrupt(format!("page {}: {}", pc.page, pc.detail));
        }
        if e.kind() == io::ErrorKind::InvalidData {
            return PcpError::Corrupt(e.to_string());
        }
        PcpError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = PcpError::Io(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
        let e = PcpError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        assert!(e.source().is_none());
    }

    #[test]
    fn corruption_shaped_io_errors_become_typed_corruption() {
        let e = PcpError::from(silc_storage::corrupt_page(9, "checksum mismatch"));
        match &e {
            PcpError::Corrupt(msg) => {
                assert!(msg.contains("page 9"), "{msg}");
                assert!(msg.contains("checksum mismatch"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let e = PcpError::from(io::Error::new(io::ErrorKind::InvalidData, "group 3 is unsorted"));
        assert!(matches!(&e, PcpError::Corrupt(msg) if msg.contains("unsorted")));
        let e = PcpError::from(io::Error::other("disk gone"));
        assert!(matches!(e, PcpError::Io(_)));
    }
}
