//! Errors raised while writing or opening a disk-resident oracle.

use std::io;

/// Why a disk-resident oracle could not be written or opened.
#[derive(Debug)]
pub enum PcpError {
    /// An I/O error while writing or reading the oracle file.
    Io(io::Error),
    /// The oracle file is malformed (bad magic, unsupported version,
    /// truncated or inconsistent regions).
    Corrupt(String),
}

impl std::fmt::Display for PcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcpError::Io(e) => write!(f, "I/O error: {e}"),
            PcpError::Corrupt(msg) => write!(f, "corrupt oracle file: {msg}"),
        }
    }
}

impl std::error::Error for PcpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PcpError::Io(e) => Some(e),
            PcpError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for PcpError {
    fn from(e: io::Error) -> Self {
        PcpError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = PcpError::Io(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
        let e = PcpError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        assert!(e.source().is_none());
    }
}
