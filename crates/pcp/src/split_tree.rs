//! A compressed quadtree over vertex positions, the skeleton the WSPD is
//! built on.
//!
//! Nodes correspond to Morton blocks containing at least one vertex; chains
//! of single-child blocks are compressed away, so the tree has at most
//! `2n − 1` nodes. Each node keeps the *tight* bounding rectangle of its
//! vertices (not the block rectangle), which makes the well-separation test
//! as sharp as possible.

use silc_geom::{GridMapper, Point, Rect};
use silc_morton::{MortonBlock, MortonCode};
use silc_network::{SpatialNetwork, VertexId};

/// Index of a node in a [`SplitTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(pub u32);

#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Morton block this node covers.
    pub block: MortonBlock,
    /// Tight bounding rectangle of the vertices below.
    pub rect: Rect,
    /// Range into the code-sorted vertex array.
    pub span: (u32, u32),
    /// Child node indices (empty for leaves). Compressed: always ≥ 2
    /// children for internal nodes.
    pub children: Vec<NodeRef>,
}

/// A compressed quadtree over the vertices of a spatial network.
pub struct SplitTree {
    nodes: Vec<Node>,
    /// `(code, vertex)` sorted by Morton code.
    sorted: Vec<(u64, u32)>,
    codes: Vec<MortonCode>,
}

impl SplitTree {
    /// Builds the tree for `network` on a `2^q × 2^q` grid.
    ///
    /// # Panics
    /// Panics if the network is empty.
    pub fn build(network: &SpatialNetwork, q: u32) -> Self {
        assert!(network.vertex_count() > 0, "cannot build a split tree over no vertices");
        let mapper = GridMapper::new(*network.bounds(), q);
        let cells = mapper.assign_unique(network.positions());
        let codes: Vec<MortonCode> = cells.into_iter().map(MortonCode::encode).collect();
        let mut sorted: Vec<(u64, u32)> =
            codes.iter().enumerate().map(|(v, c)| (c.0, v as u32)).collect();
        sorted.sort_unstable();

        let mut tree = SplitTree { nodes: Vec::new(), sorted, codes };
        tree.build_node(MortonBlock::root(q), 0, tree.sorted.len() as u32, network.positions());
        tree
    }

    /// Recursively builds the subtree for `block` over `sorted[lo..hi]`,
    /// compressing single-child chains; returns the node index.
    fn build_node(&mut self, block: MortonBlock, lo: u32, hi: u32, positions: &[Point]) -> NodeRef {
        debug_assert!(lo < hi);
        // Compress: descend while exactly one child quadrant is non-empty.
        let mut block = block;
        loop {
            if hi - lo == 1 || block.level() == 0 {
                break;
            }
            let children = block.children();
            let mut non_empty = None;
            let mut count = 0;
            let mut cursor = lo;
            for child in &children {
                let end = cursor
                    + self.sorted[cursor as usize..hi as usize]
                        .partition_point(|&(c, _)| c < child.end()) as u32;
                if end > cursor {
                    count += 1;
                    non_empty = Some(*child);
                }
                cursor = end;
            }
            if count == 1 {
                block = non_empty.expect("count == 1");
            } else {
                break;
            }
        }

        let rect = {
            let mut it =
                self.sorted[lo as usize..hi as usize].iter().map(|&(_, v)| positions[v as usize]);
            let first = it.next().expect("non-empty span");
            let mut r = Rect::new(first.x, first.y, first.x, first.y);
            for p in it {
                r.expand(&p);
            }
            r
        };

        let idx = NodeRef(self.nodes.len() as u32);
        self.nodes.push(Node { block, rect, span: (lo, hi), children: Vec::new() });

        if hi - lo > 1 {
            debug_assert!(block.level() > 0, "multiple vertices in one cell");
            let mut kids = Vec::with_capacity(4);
            let mut cursor = lo;
            for child in block.children() {
                let end = cursor
                    + self.sorted[cursor as usize..hi as usize]
                        .partition_point(|&(c, _)| c < child.end()) as u32;
                if end > cursor {
                    kids.push(self.build_node(child, cursor, end, positions));
                }
                cursor = end;
            }
            debug_assert!(kids.len() >= 2, "compression left a single child");
            self.nodes[idx.0 as usize].children = kids;
        }
        NodeRef(idx.0)
    }

    /// Reassembles a tree from its serialized parts (the disk format's open
    /// path). `sorted` must hold every vertex exactly once; per-vertex codes
    /// are rebuilt from it.
    pub(crate) fn from_raw(nodes: Vec<Node>, sorted: Vec<(u64, u32)>) -> Self {
        let mut codes = vec![MortonCode(0); sorted.len()];
        for &(c, v) in &sorted {
            codes[v as usize] = MortonCode(c);
        }
        SplitTree { nodes, sorted, codes }
    }

    /// The nodes, in index order (serialization access).
    pub(crate) fn raw_nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The code-sorted `(code, vertex)` array (serialization access).
    pub(crate) fn raw_sorted(&self) -> &[(u64, u32)] {
        &self.sorted
    }

    /// Number of vertices the tree was built over.
    pub fn vertex_count(&self) -> usize {
        self.sorted.len()
    }

    /// The root node.
    pub fn root(&self) -> NodeRef {
        NodeRef(0)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Children of a node (empty slice for leaves).
    pub fn children(&self, n: NodeRef) -> &[NodeRef] {
        &self.nodes[n.0 as usize].children
    }

    /// Is the node a leaf (single vertex)?
    pub fn is_leaf(&self, n: NodeRef) -> bool {
        self.nodes[n.0 as usize].children.is_empty()
    }

    /// Tight bounding rectangle of the node's vertices.
    pub fn rect(&self, n: NodeRef) -> Rect {
        self.nodes[n.0 as usize].rect
    }

    /// Diameter (diagonal of the tight bounding rectangle).
    pub fn diameter(&self, n: NodeRef) -> f64 {
        let r = self.rect(n);
        (r.width().powi(2) + r.height().powi(2)).sqrt()
    }

    /// Number of vertices under the node.
    pub fn size(&self, n: NodeRef) -> usize {
        let (lo, hi) = self.nodes[n.0 as usize].span;
        (hi - lo) as usize
    }

    /// The vertices under the node.
    pub fn vertices(&self, n: NodeRef) -> impl Iterator<Item = VertexId> + '_ {
        let (lo, hi) = self.nodes[n.0 as usize].span;
        self.sorted[lo as usize..hi as usize].iter().map(|&(_, v)| VertexId(v))
    }

    /// A deterministic representative vertex of the node (the one with the
    /// smallest Morton code).
    pub fn representative(&self, n: NodeRef) -> VertexId {
        let (lo, _) = self.nodes[n.0 as usize].span;
        VertexId(self.sorted[lo as usize].1)
    }

    /// The child of `n` whose Morton block contains vertex `v`.
    ///
    /// # Panics
    /// Panics if `n` is a leaf or `v` is not below `n`.
    pub fn child_containing(&self, n: NodeRef, v: VertexId) -> NodeRef {
        let code = self.codes[v.index()];
        for &child in self.children(n) {
            if self.nodes[child.0 as usize].block.contains_code(code) {
                return child;
            }
        }
        panic!("vertex {v} is not below node {n:?}");
    }

    /// Does node `n` contain vertex `v`?
    pub fn contains(&self, n: NodeRef, v: VertexId) -> bool {
        self.nodes[n.0 as usize].block.contains_code(self.codes[v.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_network::generate::{road_network, RoadConfig};

    fn tree() -> (silc_network::SpatialNetwork, SplitTree) {
        let g = road_network(&RoadConfig { vertices: 120, seed: 66, ..Default::default() });
        let t = SplitTree::build(&g, 10);
        (g, t)
    }

    #[test]
    fn compressed_size_bound() {
        let (g, t) = tree();
        assert!(t.node_count() < 2 * g.vertex_count(), "tree is not compressed");
        assert_eq!(t.size(t.root()), g.vertex_count());
    }

    #[test]
    fn leaves_hold_single_vertices_and_cover_all() {
        let (g, t) = tree();
        let mut leaf_vertices = Vec::new();
        let mut stack = vec![t.root()];
        while let Some(n) = stack.pop() {
            if t.is_leaf(n) {
                assert_eq!(t.size(n), 1);
                leaf_vertices.push(t.representative(n));
            } else {
                assert!(t.children(n).len() >= 2);
                let child_sum: usize = t.children(n).iter().map(|&c| t.size(c)).sum();
                assert_eq!(child_sum, t.size(n), "children must partition the parent");
                stack.extend_from_slice(t.children(n));
            }
        }
        leaf_vertices.sort();
        let all: Vec<VertexId> = g.vertices().collect();
        assert_eq!(leaf_vertices, all);
    }

    #[test]
    fn rects_are_tight_and_nested() {
        let (g, t) = tree();
        let mut stack = vec![t.root()];
        while let Some(n) = stack.pop() {
            let r = t.rect(n);
            for v in t.vertices(n) {
                assert!(r.contains(&g.position(v)));
            }
            for &c in t.children(n) {
                let cr = t.rect(c);
                assert!(
                    cr.min_x >= r.min_x
                        && cr.max_x <= r.max_x
                        && cr.min_y >= r.min_y
                        && cr.max_y <= r.max_y
                );
                stack.push(c);
            }
        }
    }

    #[test]
    fn child_containing_navigates_correctly() {
        let (g, t) = tree();
        for v in g.vertices() {
            let mut n = t.root();
            while !t.is_leaf(n) {
                n = t.child_containing(n, v);
                assert!(t.contains(n, v));
            }
            assert_eq!(t.representative(n), v);
        }
    }

    #[test]
    fn diameter_of_leaf_is_zero() {
        let (_, t) = tree();
        let mut stack = vec![t.root()];
        while let Some(n) = stack.pop() {
            if t.is_leaf(n) {
                assert_eq!(t.diameter(n), 0.0);
            } else {
                assert!(t.diameter(n) > 0.0);
                stack.extend_from_slice(t.children(n));
            }
        }
    }

    #[test]
    #[should_panic(expected = "no vertices")]
    fn empty_network_rejected() {
        let g = silc_network::NetworkBuilder::new().build();
        let _ = SplitTree::build(&g, 8);
    }
}
