//! The well-separated pair decomposition.
//!
//! Two vertex sets are *s-well-separated* when the gap between their
//! bounding rectangles is at least `s` times the larger of their radii; the
//! decomposition covers every ordered vertex pair `(u, v)`, `u ≠ v`, by
//! exactly one well-separated pair (Callahan & Kosaraju 1995 — reference
//! \[Call95\] of the paper). The number of pairs is `O(s²·n)`.

use crate::split_tree::{NodeRef, SplitTree};
use silc_geom::Rect;

/// One well-separated pair of split-tree nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WspdPair {
    pub a: NodeRef,
    pub b: NodeRef,
}

/// Euclidean gap between two rectangles (0 when they touch or overlap) —
/// the lower bound on the distance between any two points of the rects that
/// both the separation test and the per-pair error caps build on.
pub(crate) fn rect_gap(rect_a: &Rect, rect_b: &Rect) -> f64 {
    let dx = (rect_b.min_x - rect_a.max_x).max(rect_a.min_x - rect_b.max_x).max(0.0);
    let dy = (rect_b.min_y - rect_a.max_y).max(rect_a.min_y - rect_b.max_y).max(0.0);
    (dx * dx + dy * dy).sqrt()
}

/// Are nodes `a` and `b` s-well-separated?
pub fn well_separated(tree: &SplitTree, a: NodeRef, b: NodeRef, s: f64) -> bool {
    let ra = tree.diameter(a) / 2.0;
    let rb = tree.diameter(b) / 2.0;
    let r = ra.max(rb);
    let gap = rect_gap(&tree.rect(a), &tree.rect(b));
    gap >= s * r
}

/// Computes the s-WSPD of the tree's vertices.
///
/// # Panics
/// Panics if `s <= 0`.
pub fn wspd(tree: &SplitTree, s: f64) -> Vec<WspdPair> {
    assert!(s > 0.0, "separation must be positive");
    let mut out = Vec::new();
    pairs_within(tree, tree.root(), s, &mut out);
    out
}

/// Emits all pairs needed to cover vertex pairs inside `n`.
fn pairs_within(tree: &SplitTree, n: NodeRef, s: f64, out: &mut Vec<WspdPair>) {
    if tree.is_leaf(n) {
        return;
    }
    let children = tree.children(n);
    for (i, &a) in children.iter().enumerate() {
        pairs_within(tree, a, s, out);
        for &b in &children[i + 1..] {
            pairs_between(tree, a, b, s, out);
        }
    }
}

/// Emits pairs covering all `(u, v)` with `u` under `a` and `v` under `b`.
fn pairs_between(tree: &SplitTree, a: NodeRef, b: NodeRef, s: f64, out: &mut Vec<WspdPair>) {
    if well_separated(tree, a, b, s) {
        out.push(WspdPair { a, b });
        return;
    }
    // Split the node with the larger diameter (ties: split `a`).
    if tree.diameter(a) >= tree.diameter(b) && !tree.is_leaf(a) {
        for &c in tree.children(a) {
            pairs_between(tree, c, b, s, out);
        }
    } else if !tree.is_leaf(b) {
        for &c in tree.children(b) {
            pairs_between(tree, a, c, s, out);
        }
    } else {
        // Both leaves: distinct vertices at positive distance are always
        // separated from themselves (radius 0) — emit directly.
        out.push(WspdPair { a, b });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_network::generate::{road_network, RoadConfig};
    use silc_network::VertexId;
    use std::collections::HashMap;

    fn fixture() -> (silc_network::SpatialNetwork, SplitTree) {
        let g = road_network(&RoadConfig { vertices: 80, seed: 13, ..Default::default() });
        let t = SplitTree::build(&g, 10);
        (g, t)
    }

    #[test]
    fn every_vertex_pair_covered_exactly_once() {
        let (g, t) = fixture();
        let pairs = wspd(&t, 2.0);
        let mut cover: HashMap<(u32, u32), usize> = HashMap::new();
        for p in &pairs {
            for u in t.vertices(p.a) {
                for v in t.vertices(p.b) {
                    *cover.entry((u.0, v.0)).or_default() += 1;
                }
            }
        }
        let n = g.vertex_count() as u32;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let count = cover.get(&(u, v)).copied().unwrap_or(0)
                    + cover.get(&(v, u)).copied().unwrap_or(0);
                assert_eq!(count, 1, "pair ({u},{v}) covered {count} times");
            }
        }
    }

    #[test]
    fn pairs_are_well_separated_or_leaf_pairs() {
        let (_, t) = fixture();
        let s = 3.0;
        for p in wspd(&t, s) {
            assert!(
                well_separated(&t, p.a, p.b, s) || (t.is_leaf(p.a) && t.is_leaf(p.b)),
                "pair {p:?} is neither separated nor a leaf pair"
            );
        }
    }

    #[test]
    fn pair_count_grows_with_separation() {
        let (_, t) = fixture();
        let p2 = wspd(&t, 2.0).len();
        let p6 = wspd(&t, 6.0).len();
        assert!(p6 > p2, "more separation must need more pairs: {p2} vs {p6}");
    }

    #[test]
    fn pair_count_is_near_linear_in_n() {
        // O(s² n): doubling n should not quadruple the pair count.
        let s = 2.0;
        let small = road_network(&RoadConfig { vertices: 100, seed: 3, ..Default::default() });
        let big = road_network(&RoadConfig { vertices: 400, seed: 3, ..Default::default() });
        let ps = wspd(&SplitTree::build(&small, 10), s).len();
        let pb = wspd(&SplitTree::build(&big, 10), s).len();
        let ratio = pb as f64 / ps as f64;
        assert!(ratio < 8.0, "pair growth {ratio} suggests super-linear behaviour ({ps} -> {pb})");
    }

    #[test]
    fn two_point_decomposition() {
        let mut b = silc_network::NetworkBuilder::new();
        let u = b.add_vertex(silc_geom::Point::new(0.0, 0.0));
        let v = b.add_vertex(silc_geom::Point::new(10.0, 0.0));
        b.add_edge_sym(u, v, 10.0);
        let g = b.build();
        let t = SplitTree::build(&g, 6);
        let pairs = wspd(&t, 2.0);
        assert_eq!(pairs.len(), 1);
        let p = pairs[0];
        let reps: Vec<VertexId> = vec![t.representative(p.a), t.representative(p.b)];
        assert!(reps.contains(&u) && reps.contains(&v));
    }

    #[test]
    #[should_panic(expected = "separation")]
    fn zero_separation_rejected() {
        let (_, t) = fixture();
        let _ = wspd(&t, 0.0);
    }
}
