//! The paged on-disk format of a PCP distance oracle.
//!
//! Storage parity with `silc::disk`: the structurally small parts (header,
//! the code-sorted vertex array, the split-tree skeleton, the per-node pair
//! directory) form a pinned metadata region read once at open time, while
//! the `O(s²n)` pair payload — the part that grows with accuracy — is laid
//! out in fixed-size pages served through a `silc_storage::BufferPool`.
//!
//! ## File layout
//!
//! ```text
//! header    magic "SILCPCPD", version u32, n, node count, pair count,
//!           separation, stretch, pair-region offset
//! sorted    n × (u64 code, u32 vertex) — the code-sorted vertex array
//! nodes     per split-tree node: block base u64 | level u8 | tight rect
//!           4×f64 | span 2×u32 | child count u8 | children u32×c
//! directory node count × (u64 first pair index, u32 pair count) — the
//!           stored pairs grouped by their first (the `a`-side) node
//! pairs     one 20-byte record per stored pair, groups concatenated in
//!           node order, each group sorted by the `b`-side node id:
//!           b u32 | rep_a u32 | rep_b u32 | dist f64
//! ```
//!
//! Representative distances are stored as full `f64` bits, so the disk
//! oracle's answers are **bit-identical** to the memory oracle it was
//! written from (locked by tests in [`crate::disk`]).

use crate::error::PcpError;
use crate::oracle::DistanceOracle;
use crate::split_tree::{Node, SplitTree};
use bytes::{Buf, BufMut};
use silc_geom::Rect;
use silc_morton::{MortonBlock, MortonCode};
use silc_storage::{read_span, FilePageStore, PageStore, PAGE_SIZE};
use std::path::Path;

pub(crate) const MAGIC: &[u8; 8] = b"SILCPCPD";
pub(crate) const VERSION: u32 = 1;
pub(crate) const HEADER_BYTES: usize = 8 + 4 + 4 + 4 + 8 + 8 + 8 + 8;
/// Bytes per serialized pair record.
pub const PAIR_BYTES: usize = 20;

/// One decoded pair record of a directory group (the `a`-side node is the
/// group key and is not repeated per record).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PairRecord {
    pub(crate) b: u32,
    pub(crate) rep_a: u32,
    pub(crate) rep_b: u32,
    pub(crate) dist: f64,
}

/// Serializes `oracle` into the paged byte layout (what [`write_oracle`]
/// writes before page padding). Deterministic: equal oracles encode to
/// equal bytes (groups are emitted in node order, records sorted by `b`),
/// so re-serialization round-trips byte-exactly. Public so tests and
/// memory-backed deployments can feed a `MemPageStore` directly.
pub fn encode_oracle(oracle: &DistanceOracle) -> Vec<u8> {
    let tree = oracle.tree();
    let nodes = tree.raw_nodes();
    let sorted = tree.raw_sorted();
    let n = sorted.len();
    let node_count = nodes.len();

    // Group the stored pairs by their a-side node — the unit the disk
    // oracle decodes and caches — sorted by b for binary search.
    let mut groups: Vec<Vec<PairRecord>> = vec![Vec::new(); node_count];
    for (&(a, b), p) in oracle.pair_map() {
        groups[a as usize].push(PairRecord { b, rep_a: p.rep_a.0, rep_b: p.rep_b.0, dist: p.dist });
    }
    for g in &mut groups {
        g.sort_unstable_by_key(|r| r.b);
    }
    let pair_count: u64 = groups.iter().map(|g| g.len() as u64).sum();

    let nodes_bytes: usize =
        nodes.iter().map(|nd| 8 + 1 + 32 + 8 + 1 + 4 * nd.children.len()).sum();
    let meta_len = HEADER_BYTES + n * 12 + nodes_bytes + node_count * 12;

    let mut buf = Vec::with_capacity(meta_len + pair_count as usize * PAIR_BYTES);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(n as u32);
    buf.put_u32_le(node_count as u32);
    buf.put_u64_le(pair_count);
    buf.put_f64_le(oracle.separation());
    buf.put_f64_le(oracle.stretch());
    buf.put_u64_le(meta_len as u64);
    for &(code, v) in sorted {
        buf.put_u64_le(code);
        buf.put_u32_le(v);
    }
    for nd in nodes {
        buf.put_u64_le(nd.block.start());
        buf.put_u8(nd.block.level());
        buf.put_f64_le(nd.rect.min_x);
        buf.put_f64_le(nd.rect.min_y);
        buf.put_f64_le(nd.rect.max_x);
        buf.put_f64_le(nd.rect.max_y);
        buf.put_u32_le(nd.span.0);
        buf.put_u32_le(nd.span.1);
        buf.put_u8(nd.children.len() as u8);
        for c in &nd.children {
            buf.put_u32_le(c.0);
        }
    }
    let mut start = 0u64;
    for g in &groups {
        buf.put_u64_le(start);
        buf.put_u32_le(g.len() as u32);
        start += g.len() as u64;
    }
    debug_assert_eq!(buf.len(), meta_len);
    for g in &groups {
        for r in g {
            buf.put_u32_le(r.b);
            buf.put_u32_le(r.rep_a);
            buf.put_u32_le(r.rep_b);
            buf.put_f64_le(r.dist);
        }
    }
    buf
}

/// Serializes `oracle` into a page file at `path`.
pub fn write_oracle<P: AsRef<Path>>(oracle: &DistanceOracle, path: P) -> Result<(), PcpError> {
    FilePageStore::create(path, &encode_oracle(oracle))?;
    Ok(())
}

/// The pinned metadata of an oracle file, parsed and validated.
pub(crate) struct Parsed {
    pub(crate) tree: SplitTree,
    /// Per-node `(first pair index, pair count)` into the pair region.
    pub(crate) directory: Vec<(u64, u32)>,
    pub(crate) pair_count: u64,
    pub(crate) pairs_base: u64,
    pub(crate) separation: f64,
    pub(crate) stretch: f64,
}

/// Reads and validates the header + metadata region from a store.
pub(crate) fn parse<S: PageStore>(store: &S) -> Result<Parsed, PcpError> {
    let corrupt = |msg: &str| PcpError::Corrupt(msg.to_string());
    let file_bytes = store.page_count() * PAGE_SIZE as u64;
    if file_bytes < HEADER_BYTES as u64 {
        return Err(corrupt("file too small for header"));
    }
    let header = read_span(store, 0, HEADER_BYTES)?;
    let mut h = &header[..];
    let mut magic = [0u8; 8];
    h.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = h.get_u32_le();
    if version != VERSION {
        return Err(PcpError::Corrupt(format!(
            "unsupported format version {version} (this build reads version {VERSION})"
        )));
    }
    let n = h.get_u32_le() as usize;
    let node_count = h.get_u32_le() as usize;
    if n == 0 || node_count == 0 {
        return Err(corrupt("empty oracle"));
    }
    if node_count >= 2 * n.max(1) {
        return Err(corrupt("node count exceeds the compressed-tree bound"));
    }
    let pair_count = h.get_u64_le();
    let separation = h.get_f64_le();
    let stretch = h.get_f64_le();
    let pairs_base = h.get_u64_le();
    if !separation.is_finite() || separation <= 0.0 || !stretch.is_finite() || stretch < 1.0 {
        return Err(corrupt("separation/stretch out of range"));
    }

    let min_meta = HEADER_BYTES + n * 12 + node_count * (8 + 1 + 32 + 8 + 1) + node_count * 12;
    if pairs_base < min_meta as u64 || pairs_base > file_bytes {
        return Err(corrupt("pair region offset out of range"));
    }
    let meta = read_span(store, HEADER_BYTES, pairs_base as usize - HEADER_BYTES)?;
    let mut m = &meta[..];

    let mut sorted = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for _ in 0..n {
        let code = m.get_u64_le();
        let v = m.get_u32_le();
        if v as usize >= n || seen[v as usize] {
            return Err(corrupt("sorted vertex array is not a permutation"));
        }
        seen[v as usize] = true;
        sorted.push((code, v));
    }

    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        if m.remaining() < 8 + 1 + 32 + 8 + 1 {
            return Err(corrupt("truncated node region"));
        }
        let base = m.get_u64_le();
        let level = m.get_u8();
        if level > 32 || (level < 32 && base % (1u64 << (2 * level as u32)) != 0) {
            return Err(corrupt("misaligned node block"));
        }
        let rect = Rect::new(m.get_f64_le(), m.get_f64_le(), m.get_f64_le(), m.get_f64_le());
        let lo = m.get_u32_le();
        let hi = m.get_u32_le();
        if lo >= hi || hi as usize > n {
            return Err(corrupt("bad node span"));
        }
        let child_count = m.get_u8() as usize;
        if child_count == 1 || child_count > 4 || m.remaining() < 4 * child_count {
            return Err(corrupt("bad child count"));
        }
        let mut children = Vec::with_capacity(child_count);
        for _ in 0..child_count {
            let c = m.get_u32_le();
            if c as usize >= node_count {
                return Err(corrupt("child node id out of range"));
            }
            children.push(crate::split_tree::NodeRef(c));
        }
        nodes.push(Node {
            block: MortonBlock::new(MortonCode(base), level),
            rect,
            span: (lo, hi),
            children,
        });
    }

    if m.remaining() != node_count * 12 {
        return Err(corrupt("metadata region size does not match node count"));
    }
    let mut directory = Vec::with_capacity(node_count);
    let mut total = 0u64;
    for _ in 0..node_count {
        let start = m.get_u64_le();
        let count = m.get_u32_le();
        if start != total {
            return Err(corrupt("directory groups are not contiguous"));
        }
        total += count as u64;
        directory.push((start, count));
    }
    if total != pair_count {
        return Err(corrupt("directory pair total does not match header"));
    }
    if pairs_base + pair_count * PAIR_BYTES as u64 > file_bytes {
        return Err(corrupt("pair region extends past end of file"));
    }

    Ok(Parsed {
        tree: SplitTree::from_raw(nodes, sorted),
        directory,
        pair_count,
        pairs_base,
        separation,
        stretch,
    })
}
