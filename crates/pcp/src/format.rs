//! The paged on-disk format of a PCP distance oracle.
//!
//! Storage parity with `silc::disk`: the structurally small parts (header,
//! the code-sorted vertex array, the split-tree skeleton, the per-node pair
//! directory) form a pinned metadata region read once at open time, while
//! the `O(s²n)` pair payload — the part that grows with accuracy — is laid
//! out in fixed-size pages served through a `silc_storage::BufferPool`.
//!
//! ## File layout (version 4, current)
//!
//! ```text
//! header    magic "SILCPCPD", version u32, n, node count, pair count,
//!           separation, stretch, guaranteed ε (max per-pair cap),
//!           checksum-table offset, pair-region byte length,
//!           pair-region offset
//! sorted    n × (u64 code, u32 vertex) — the code-sorted vertex array
//! nodes     per split-tree node: block base u64 | level u8 | tight rect
//!           4×f64 | span 2×u32 | child count u8 | children u32×c
//! directory node count × (u64 group byte start, u32 pair count) — the
//!           stored pairs grouped by their first (the `a`-side) node;
//!           byte starts are relative to the pair region and strictly
//!           partition it (variable-length records)
//! pairs     one compressed record per stored pair, groups concatenated
//!           in node order, each group sorted by the `b`-side node id:
//!           varint Δb (first record: `b` absolute; later records: the
//!           gap to the previous `b`, never 0) | dist f64 | max_err f64.
//!           The representative vertices are **not stored** — they are
//!           always the split tree's canonical representatives (the
//!           smallest-code vertex of each node's span), so the decoder
//!           derives them from the pinned tree.
//! (page padding)
//! checksums one 64-bit digest (8-lane FNV-1a) per payload page — verified on every physical
//!           page read, so pair-region bit rot surfaces as a typed error
//!           naming the page instead of a silently wrong distance
//! ```
//!
//! ## Versioning
//!
//! Version 4 **compressed the pair region**: the `b`-side node ids of a
//! group are delta+varint coded (canonical LEB128, see
//! `silc_storage::varint`), the two representative vertex ids are elided
//! (derivable from the split tree, asserted at encode time), and the
//! directory switched from pair-index to byte offsets because records are
//! now variable-length. Distance and cap stay full `f64` bits — answers
//! remain **bit-identical** to the memory oracle. A record is ~17.5 bytes
//! against the fixed 28, a ≥30 % pair-region shrink. The new `pairs_len`
//! header field sits before `pairs_base`.
//!
//! Version 3 added the **per-page checksum table**: the metadata region is
//! verified once at open time and every pair page on its physical read.
//! The new `cksum_base` header field sits *before* `pairs_base`, so the
//! pair-region offset stays the last 8 header bytes in every version.
//!
//! Version 2 added the **per-pair error caps**: an 8-byte `max_err` per
//! pair record plus the guaranteed ε (the maximum cap) in the header, so a
//! disk oracle can answer `distance_with_epsilon` without scanning the pair
//! region at open time. Version 1 files (20-byte records, no cap fields)
//! **remain readable**: the open path substitutes the classic a-priori
//! `4·stretch/separation` bound for every pair, which is exactly what a v1
//! oracle guaranteed. Versions 1–3 stay readable (v1/v2 without page
//! verification — they carry no table); new files are always version 4.
//!
//! Representative distances and caps are stored as full `f64` bits, so the
//! disk oracle's answers are **bit-identical** to the memory oracle it was
//! written from (locked by tests in [`crate::disk`]).

use crate::error::PcpError;
use crate::oracle::DistanceOracle;
use crate::split_tree::{Node, SplitTree};
use bytes::{Buf, BufMut};
use silc_geom::Rect;
use silc_morton::{MortonBlock, MortonCode};
use silc_storage::{
    read_span, read_span_verified, varint, ChecksumTable, FilePageStore, PageStore, PAGE_SIZE,
};
use std::path::Path;
use std::sync::Arc;

pub(crate) const MAGIC: &[u8; 8] = b"SILCPCPD";
/// Current (written) format version.
pub const VERSION: u32 = 4;
/// Header size of the current version. The pair-region offset is always
/// the *last* 8 header bytes; v4 inserted the pair-region byte length
/// right before it.
pub(crate) const HEADER_BYTES: usize = HEADER_BYTES_V3 + 8;
/// Header size of version 3 (no pair-region byte length — records were
/// fixed-size, so the length was `pair_count × PAIR_BYTES`).
pub(crate) const HEADER_BYTES_V3: usize = HEADER_BYTES_V2 + 8;
/// Header size of version 2 (additionally lacks the checksum-table offset).
pub(crate) const HEADER_BYTES_V2: usize = 8 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8;
/// Header size of version 1 (additionally lacks the guaranteed-ε field).
pub(crate) const HEADER_BYTES_V1: usize = HEADER_BYTES_V2 - 8;
/// Bytes per serialized pair record in the fixed-record versions 2 and 3
/// (version 4 records are variable-length; see the module docs).
pub const PAIR_BYTES: usize = 28;
/// Bytes per pair record in version-1 files (no per-pair cap).
pub const PAIR_BYTES_V1: usize = 20;

/// One decoded pair record of a directory group (the `a`-side node is the
/// group key and is not repeated per record).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PairRecord {
    pub(crate) b: u32,
    pub(crate) rep_a: u32,
    pub(crate) rep_b: u32,
    pub(crate) dist: f64,
    /// The pair's own error cap (v2); for v1 files the open path fills in
    /// the file's global a-priori bound.
    pub(crate) max_err: f64,
}

/// Serializes `oracle` into the paged byte layout (what [`write_oracle`]
/// writes before page padding), at the current format version.
/// Deterministic: equal oracles encode to equal bytes (groups are emitted
/// in node order, records sorted by `b`), so re-serialization round-trips
/// byte-exactly. Public so tests and memory-backed deployments can feed a
/// `MemPageStore` directly.
pub fn encode_oracle(oracle: &DistanceOracle) -> Vec<u8> {
    encode_with_version(oracle, VERSION)
}

/// Version-1 encoder, kept for the backward-compatibility tests: the layout
/// old deployments hold on disk (20-byte records, no cap fields).
#[cfg(test)]
pub(crate) fn encode_oracle_v1(oracle: &DistanceOracle) -> Vec<u8> {
    encode_with_version(oracle, 1)
}

/// Version-2 encoder (no checksum table), kept for the backward-
/// compatibility path and for corruption tests whose byte flips must reach
/// the structural validators rather than be caught by a page checksum.
#[cfg(test)]
pub(crate) fn encode_oracle_v2(oracle: &DistanceOracle) -> Vec<u8> {
    encode_with_version(oracle, 2)
}

/// Version-3 encoder (fixed 28-byte records with checksum table), kept for
/// the backward-compatibility tests and the compression-ratio benches.
pub fn encode_oracle_v3(oracle: &DistanceOracle) -> Vec<u8> {
    encode_with_version(oracle, 3)
}

pub(crate) fn header_bytes_for(version: u32) -> usize {
    match version {
        1 => HEADER_BYTES_V1,
        2 => HEADER_BYTES_V2,
        3 => HEADER_BYTES_V3,
        _ => HEADER_BYTES,
    }
}

fn encode_with_version(oracle: &DistanceOracle, version: u32) -> Vec<u8> {
    let tree = oracle.tree();
    let nodes = tree.raw_nodes();
    let sorted = tree.raw_sorted();
    let n = sorted.len();
    let node_count = nodes.len();
    let header_bytes = header_bytes_for(version);
    let pair_bytes = if version >= 2 { PAIR_BYTES } else { PAIR_BYTES_V1 };

    // Group the stored pairs by their a-side node — the unit the disk
    // oracle decodes and caches — sorted by b for binary search.
    let mut groups: Vec<Vec<PairRecord>> = vec![Vec::new(); node_count];
    for (&(a, b), p) in oracle.pair_map() {
        groups[a as usize].push(PairRecord {
            b,
            rep_a: p.rep_a.0,
            rep_b: p.rep_b.0,
            dist: p.dist,
            max_err: p.max_err,
        });
    }
    for g in &mut groups {
        g.sort_unstable_by_key(|r| r.b);
    }
    let pair_count: u64 = groups.iter().map(|g| g.len() as u64).sum();

    // v4: serialize the pair region up front — records are variable-length,
    // so the directory needs the per-group byte starts and the header the
    // total byte length. The representatives are elided; the build always
    // stores the split tree's canonical representative of each node, which
    // the assert pins down so a drift in the build could never write a
    // lossy file.
    let mut pair_buf = Vec::new();
    let mut group_byte_starts = Vec::with_capacity(node_count);
    if version >= 4 {
        for (a, g) in groups.iter().enumerate() {
            group_byte_starts.push(pair_buf.len() as u64);
            let mut prev_b: Option<u32> = None;
            for r in g {
                use crate::split_tree::NodeRef;
                debug_assert_eq!(r.rep_a, tree.representative(NodeRef(a as u32)).0);
                debug_assert_eq!(r.rep_b, tree.representative(NodeRef(r.b)).0);
                let delta = match prev_b {
                    None => r.b as u64,
                    Some(p) => (r.b - p) as u64, // strictly sorted: never 0
                };
                varint::encode_u64(delta, &mut pair_buf);
                pair_buf.put_f64_le(r.dist);
                pair_buf.put_f64_le(r.max_err);
                prev_b = Some(r.b);
            }
        }
    }

    let nodes_bytes: usize =
        nodes.iter().map(|nd| 8 + 1 + 32 + 8 + 1 + 4 * nd.children.len()).sum();
    let meta_len = header_bytes + n * 12 + nodes_bytes + node_count * 12;
    let pairs_len = if version >= 4 { pair_buf.len() } else { pair_count as usize * pair_bytes };
    let payload_len = meta_len + pairs_len;
    // The checksum table (v3+) starts on the page boundary after the payload.
    let cksum_base = payload_len.div_ceil(PAGE_SIZE) * PAGE_SIZE;

    let mut buf = Vec::with_capacity(payload_len);
    buf.put_slice(MAGIC);
    buf.put_u32_le(version);
    buf.put_u32_le(n as u32);
    buf.put_u32_le(node_count as u32);
    buf.put_u64_le(pair_count);
    buf.put_f64_le(oracle.separation());
    buf.put_f64_le(oracle.stretch());
    if version >= 2 {
        buf.put_f64_le(oracle.epsilon());
    }
    if version >= 3 {
        buf.put_u64_le(cksum_base as u64);
    }
    if version >= 4 {
        buf.put_u64_le(pairs_len as u64);
    }
    buf.put_u64_le(meta_len as u64);
    for &(code, v) in sorted {
        buf.put_u64_le(code);
        buf.put_u32_le(v);
    }
    for nd in nodes {
        buf.put_u64_le(nd.block.start());
        buf.put_u8(nd.block.level());
        buf.put_f64_le(nd.rect.min_x);
        buf.put_f64_le(nd.rect.min_y);
        buf.put_f64_le(nd.rect.max_x);
        buf.put_f64_le(nd.rect.max_y);
        buf.put_u32_le(nd.span.0);
        buf.put_u32_le(nd.span.1);
        buf.put_u8(nd.children.len() as u8);
        for c in &nd.children {
            buf.put_u32_le(c.0);
        }
    }
    if version >= 4 {
        // Directory in byte offsets — records are variable-length.
        for (g, &start) in groups.iter().zip(&group_byte_starts) {
            buf.put_u64_le(start);
            buf.put_u32_le(g.len() as u32);
        }
    } else {
        let mut start = 0u64;
        for g in &groups {
            buf.put_u64_le(start);
            buf.put_u32_le(g.len() as u32);
            start += g.len() as u64;
        }
    }
    debug_assert_eq!(buf.len(), meta_len);
    if version >= 4 {
        buf.put_slice(&pair_buf);
    } else {
        for g in &groups {
            for r in g {
                buf.put_u32_le(r.b);
                buf.put_u32_le(r.rep_a);
                buf.put_u32_le(r.rep_b);
                buf.put_f64_le(r.dist);
                if version >= 2 {
                    buf.put_f64_le(r.max_err);
                }
            }
        }
    }
    if version >= 3 {
        // Digest the page-padded payload image, then append the table on
        // the next page boundary.
        let table = ChecksumTable::compute(&buf);
        buf.resize(cksum_base, 0);
        buf.extend_from_slice(&table.to_bytes());
    }
    buf
}

/// Serializes `oracle` into a page file at `path`.
pub fn write_oracle<P: AsRef<Path>>(oracle: &DistanceOracle, path: P) -> Result<(), PcpError> {
    FilePageStore::create(path, &encode_oracle(oracle))?;
    Ok(())
}

/// The pinned metadata of an oracle file, parsed and validated.
pub(crate) struct Parsed {
    pub(crate) tree: SplitTree,
    /// Per-node `(start, pair count)` into the pair region. `start` is a
    /// pair *index* in the fixed-record versions (≤ 3) and a *byte offset*
    /// in version 4 (variable-length records).
    pub(crate) directory: Vec<(u64, u32)>,
    pub(crate) pair_count: u64,
    pub(crate) pairs_base: u64,
    /// Byte length of the pair region (v4 header field; derived as
    /// `pair_count × pair_bytes` for the fixed-record versions).
    pub(crate) pairs_len: u64,
    pub(crate) separation: f64,
    pub(crate) stretch: f64,
    /// The guaranteed ε: max per-pair cap for v2 files, the a-priori
    /// `4·stretch/separation` for v1 files.
    pub(crate) eps_max: f64,
    /// Bytes per pair record in this file's version.
    pub(crate) pair_bytes: usize,
    /// The file's format version (1, 2 or 3).
    pub(crate) version: u32,
    /// The per-page checksum table (v3 files; earlier versions carry none).
    pub(crate) checks: Option<Arc<ChecksumTable>>,
}

/// Reads and validates the header + metadata region from a store. Accepts
/// every version from 1 to the current (see the module docs).
pub(crate) fn parse<S: PageStore>(store: &S) -> Result<Parsed, PcpError> {
    let corrupt = |msg: &str| PcpError::Corrupt(msg.to_string());
    let file_bytes = store.page_count() * PAGE_SIZE as u64;
    if file_bytes < HEADER_BYTES_V1 as u64 {
        return Err(corrupt("file too small for header"));
    }
    let probe = read_span(store, 0, HEADER_BYTES_V1)?;
    let mut h = &probe[..];
    let mut magic = [0u8; 8];
    h.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = h.get_u32_le();
    if version == 0 || version > VERSION {
        return Err(PcpError::Corrupt(format!(
            "unsupported format version {version} (this build reads versions 1..={VERSION})"
        )));
    }
    let header_bytes = header_bytes_for(version);
    let pair_bytes = if version >= 2 { PAIR_BYTES } else { PAIR_BYTES_V1 };
    if file_bytes < header_bytes as u64 {
        return Err(corrupt("file too small for header"));
    }
    let header = read_span(store, 0, header_bytes)?;
    let mut h = &header[12..]; // past magic + version, already validated
    let n = h.get_u32_le() as usize;
    let node_count = h.get_u32_le() as usize;
    if n == 0 || node_count == 0 {
        return Err(corrupt("empty oracle"));
    }
    if node_count >= 2 * n.max(1) {
        return Err(corrupt("node count exceeds the compressed-tree bound"));
    }
    let pair_count = h.get_u64_le();
    let separation = h.get_f64_le();
    let stretch = h.get_f64_le();
    let eps_max = if version >= 2 { h.get_f64_le() } else { 4.0 * stretch / separation };
    let cksum_base = if version >= 3 { h.get_u64_le() } else { 0 };
    let pairs_len =
        if version >= 4 { h.get_u64_le() } else { pair_count.saturating_mul(pair_bytes as u64) };
    let pairs_base = h.get_u64_le();
    if !separation.is_finite() || separation <= 0.0 || !stretch.is_finite() || stretch < 1.0 {
        return Err(corrupt("separation/stretch out of range"));
    }
    if eps_max.is_nan() || eps_max < 0.0 {
        return Err(corrupt("guaranteed epsilon out of range"));
    }

    // v3: load the checksum table so the metadata read below is verified.
    let checks = if version >= 3 {
        if cksum_base % PAGE_SIZE as u64 != 0 || cksum_base == 0 {
            return Err(corrupt("checksum table is not page-aligned"));
        }
        let table_pages = (cksum_base / PAGE_SIZE as u64) as usize;
        let table_bytes = table_pages * 8;
        if cksum_base + table_bytes as u64 > file_bytes {
            return Err(corrupt("checksum table extends past end of file"));
        }
        let raw = read_span(store, cksum_base as usize, table_bytes)?;
        Some(Arc::new(ChecksumTable::from_bytes(&raw, table_pages)?))
    } else {
        None
    };
    // The payload (everything checksummed) ends where the table starts.
    let payload_end = if version >= 3 { cksum_base } else { file_bytes };

    let min_meta = header_bytes + n * 12 + node_count * (8 + 1 + 32 + 8 + 1) + node_count * 12;
    if pairs_base < min_meta as u64 || pairs_base > payload_end {
        return Err(corrupt("pair region offset out of range"));
    }
    let meta = match &checks {
        Some(table) => read_span_verified(store, 0, pairs_base as usize, table)?,
        None => read_span(store, 0, pairs_base as usize)?,
    };
    let mut m = &meta[header_bytes..];

    let mut sorted = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for _ in 0..n {
        let code = m.get_u64_le();
        let v = m.get_u32_le();
        if v as usize >= n || seen[v as usize] {
            return Err(corrupt("sorted vertex array is not a permutation"));
        }
        seen[v as usize] = true;
        sorted.push((code, v));
    }

    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        if m.remaining() < 8 + 1 + 32 + 8 + 1 {
            return Err(corrupt("truncated node region"));
        }
        let base = m.get_u64_le();
        let level = m.get_u8();
        if level > 32 || (level < 32 && base % (1u64 << (2 * level as u32)) != 0) {
            return Err(corrupt("misaligned node block"));
        }
        let rect = Rect::new(m.get_f64_le(), m.get_f64_le(), m.get_f64_le(), m.get_f64_le());
        let lo = m.get_u32_le();
        let hi = m.get_u32_le();
        if lo >= hi || hi as usize > n {
            return Err(corrupt("bad node span"));
        }
        let child_count = m.get_u8() as usize;
        if child_count == 1 || child_count > 4 || m.remaining() < 4 * child_count {
            return Err(corrupt("bad child count"));
        }
        let mut children = Vec::with_capacity(child_count);
        for _ in 0..child_count {
            let c = m.get_u32_le();
            if c as usize >= node_count {
                return Err(corrupt("child node id out of range"));
            }
            children.push(crate::split_tree::NodeRef(c));
        }
        nodes.push(Node {
            block: MortonBlock::new(MortonCode(base), level),
            rect,
            span: (lo, hi),
            children,
        });
    }

    if m.remaining() != node_count * 12 {
        return Err(corrupt("metadata region size does not match node count"));
    }
    let mut directory = Vec::with_capacity(node_count);
    let mut total = 0u64;
    let mut prev_start = 0u64;
    for i in 0..node_count {
        let start = m.get_u64_le();
        let count = m.get_u32_le();
        if version >= 4 {
            // Byte offsets: the groups partition the pair region in order,
            // but a group's byte length is only known from its successor's
            // start (checked lazily at decode time by exact consumption).
            if i == 0 && start != 0 {
                return Err(corrupt("directory does not start at byte offset 0"));
            }
            if start < prev_start {
                return Err(corrupt("directory byte offsets are not sorted"));
            }
            if start > pairs_len {
                return Err(corrupt("directory byte offset past the pair region"));
            }
            prev_start = start;
        } else if start != total {
            return Err(corrupt("directory groups are not contiguous"));
        }
        total += count as u64;
        directory.push((start, count));
    }
    if total != pair_count {
        return Err(corrupt("directory pair total does not match header"));
    }
    if pairs_base + pairs_len > payload_end {
        return Err(corrupt("pair region extends past end of file"));
    }

    Ok(Parsed {
        tree: SplitTree::from_raw(nodes, sorted),
        directory,
        pair_count,
        pairs_base,
        pairs_len,
        separation,
        stretch,
        eps_max,
        pair_bytes,
        version,
        checks,
    })
}
