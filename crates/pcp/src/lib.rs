//! Path-coherent pairs: approximate distance oracles for spatial networks.
//!
//! The paper's closing sections (p.28–29) sketch the *PCP framework*:
//! decompose the network into pairs of vertex sets `(A, B)` such that all
//! shortest paths from `A` to `B` are interchangeable up to a bounded
//! relative error — "anyone driving from the North-East to the North-West
//! uses I-80". The construction is the classic well-separated pair
//! decomposition (Callahan & Kosaraju) applied to the spatially embedded
//! vertices; one representative network distance per pair then answers
//! *any* `n²` distance query approximately in `O(log n)` — the
//! "Distance Oracle" rows of the paper's trade-off table (p.11).
//!
//! * [`SplitTree`] — a compressed quadtree over the vertex positions,
//! * [`wspd`] — the s-well-separated pair decomposition (`O(s²n)` pairs),
//! * [`DistanceOracle`] — representative distances per pair plus the
//!   pair-location query,
//! * [`write_oracle`] / [`DiskDistanceOracle`] — the same oracle with full
//!   disk parity to `silc::disk`: a paged, versioned file format and a
//!   served-from-pages form behind a sharded buffer pool.
//!
//! ## The ε guarantee
//!
//! With separation `s` and network stretch `t = max d_network/d_euclidean`
//! (measured during the build), any query's relative error is bounded by
//! `ε ≈ 4t/s` — [`DistanceOracle::epsilon`]. Raising `s` buys accuracy at
//! `O(s²)` more pairs; the trade-off against the exact SILC index is what
//! `bench_tradeoff` in `silc-bench` measures.
//!
//! ## The page format
//!
//! [`write_oracle`] lays the oracle out the way `DiskSilcIndex` lays out
//! quadtrees: a versioned header, the split-tree skeleton, and a per-node
//! pair directory form the pinned metadata, while the `O(s²n)` pair payload
//! (20 bytes per pair, grouped by the pair's first node and sorted for
//! binary search) fills fixed-size pages served through the
//! `silc_storage::BufferPool` with decoded groups in a `ShardedCache`.
//! Representative distances are stored as full `f64` bits, so
//! [`DiskDistanceOracle::distance`] is bit-identical to the memory oracle.

pub mod disk;
pub mod error;
pub mod format;
pub mod oracle;
pub mod split_tree;
pub mod wspd;

pub use disk::DiskDistanceOracle;
pub use error::PcpError;
pub use format::{encode_oracle, write_oracle, PAIR_BYTES};
pub use oracle::DistanceOracle;
pub use split_tree::{NodeRef, SplitTree};
pub use wspd::{wspd, WspdPair};
