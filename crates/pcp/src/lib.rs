//! Path-coherent pairs: approximate distance oracles for spatial networks.
//!
//! The paper's closing sections (p.28–29) sketch the *PCP framework*:
//! decompose the network into pairs of vertex sets `(A, B)` such that all
//! shortest paths from `A` to `B` are interchangeable up to a bounded
//! relative error — "anyone driving from the North-East to the North-West
//! uses I-80". The construction is the classic well-separated pair
//! decomposition (Callahan & Kosaraju) applied to the spatially embedded
//! vertices; one representative network distance per pair then answers
//! *any* `n²` distance query approximately in `O(log n)` — the
//! "Distance Oracle" rows of the paper's trade-off table (p.11).
//!
//! * [`SplitTree`] — a compressed quadtree over the vertex positions,
//! * [`wspd`] — the s-well-separated pair decomposition (`O(s²n)` pairs),
//! * [`DistanceOracle`] — representative distances per pair plus the
//!   pair-location query.

pub mod oracle;
pub mod split_tree;
pub mod wspd;

pub use oracle::DistanceOracle;
pub use split_tree::{NodeRef, SplitTree};
pub use wspd::{wspd, WspdPair};
