//! Path-coherent pairs: approximate distance oracles for spatial networks.
//!
//! The paper's closing sections (p.28–29) sketch the *PCP framework*:
//! decompose the network into pairs of vertex sets `(A, B)` such that all
//! shortest paths from `A` to `B` are interchangeable up to a bounded
//! relative error — "anyone driving from the North-East to the North-West
//! uses I-80". The construction is the classic well-separated pair
//! decomposition (Callahan & Kosaraju) applied to the spatially embedded
//! vertices; one representative network distance per pair then answers
//! *any* `n²` distance query approximately in `O(log n)` — the
//! "Distance Oracle" rows of the paper's trade-off table (p.11).
//!
//! * [`SplitTree`] — a compressed quadtree over the vertex positions,
//! * [`wspd()`] — the s-well-separated pair decomposition (`O(s²n)` pairs),
//! * [`build`] — the batched, parallel construction pipeline
//!   ([`PcpBuildConfig`]): one truncated multi-target search per distinct
//!   representative instead of one probe per pair, chunked self-scheduling
//!   workers, and byte-identical output for any thread count,
//! * [`DistanceOracle`] — representative distances **and per-pair error
//!   caps** plus the pair-location query,
//! * [`write_oracle`] / [`DiskDistanceOracle`] — the same oracle with full
//!   disk parity to `silc::disk`: a paged, versioned file format and a
//!   served-from-pages form behind a sharded buffer pool.
//!
//! ## The ε guarantee: per-pair caps
//!
//! Every stored pair carries its **own** relative-error cap, computed from
//! exact network radii during construction (with an exact-refinement
//! fallback for the cap distribution's tail — see [`build`] for the
//! derivation and soundness argument). [`DistanceOracle::epsilon`] is the
//! maximum stored cap — a guarantee that actually binds on road networks —
//! and [`DistanceOracle::epsilon_for`] /
//! [`DistanceOracle::distance_with_epsilon`] expose the covering pair's cap
//! per query, which is what lets `silc-query`'s approximate kNN intervals
//! tighten. The classic first-order `4t/s` stretch bound survives as
//! [`DistanceOracle::epsilon_apriori`] for comparison.
//!
//! ## The page format (version 4)
//!
//! [`write_oracle`] lays the oracle out the way `DiskSilcIndex` lays out
//! quadtrees: a versioned header (including the guaranteed ε), the
//! split-tree skeleton, and a per-node pair directory form the pinned
//! metadata, while the `O(s²n)` pair payload fills fixed-size pages served
//! through the `silc_storage::BufferPool` with decoded groups in a
//! `ShardedCache`. Since version 4 the payload is **compressed**: within a
//! group the sorted `b`-side node ids are delta+varint coded and the
//! representative vertices are elided (they are always the split tree's
//! canonical representatives, re-derived at decode time), roughly 17.5
//! bytes per pair against the fixed 28 of v2/v3 — see [`mod@format`] for the
//! exact layout and version history. Every earlier version stays readable
//! (v1's pairs answer the file's global a-priori bound). Distances and
//! caps are stored as full `f64` bits in every version, so
//! [`DiskDistanceOracle::distance`] and
//! [`DiskDistanceOracle::distance_with_epsilon`] are bit-identical to the
//! memory oracle.

pub mod build;
pub mod disk;
pub mod error;
pub mod format;
pub mod oracle;
pub mod split_tree;
pub mod wspd;

pub use build::{PcpBuildConfig, PcpBuildStats};
pub use disk::DiskDistanceOracle;
pub use error::PcpError;
pub use format::{encode_oracle, write_oracle, PAIR_BYTES, PAIR_BYTES_V1};
pub use oracle::DistanceOracle;
pub use split_tree::{NodeRef, SplitTree};
pub use wspd::{wspd, WspdPair};
