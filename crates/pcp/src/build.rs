//! Batched, parallel construction of the PCP distance oracle.
//!
//! The naive build runs one point-to-point search per WSPD pair — `O(s²n)`
//! probes, which PR 4 measured as the slowest precompute in the repo. This
//! module replaces it with the same shape as `SilcIndex::build`:
//!
//! 1. **Probe batching.** Pairs are grouped by their `a`-side representative
//!    vertex; each distinct representative gets **one** truncated
//!    multi-target Dijkstra ([`silc_network::dijkstra::sssp_settle_until`])
//!    that stops as soon as the last marked target settles, instead of one
//!    A* per pair. At most `n` searches replace `O(s²n)` probes.
//! 2. **Self-scheduled workers.** Representative tasks are chunked onto
//!    worker threads that pop disjoint `&mut` runs of pre-allocated output
//!    slots (shared-nothing scratch per worker for its whole lifetime), so
//!    the final reduction runs over a deterministically ordered array and
//!    the encoded oracle is **byte-identical** for any thread count.
//! 3. **Per-pair error caps.** The same searches also settle every vertex
//!    under each internal node, yielding the node's *network radius*
//!    `max_{x∈N} d(rep(N), x)`. A pair's sound error cap is then
//!    `(rad_A + rad_B) / max(min_ratio·gap, d − rad_A − rad_B)` — see
//!    [`crate::build`] (this module) for the derivation. Caps above the 99th percentile
//!    (the clamp level) get an **exact-refinement fallback**: the true
//!    maximum relative error over the pair's vertex product, computed by a
//!    second batched pass of truncated searches from the pair's smaller
//!    side.
//!
//! All distances are exact Dijkstra fixpoints — a function of the graph
//! alone — so batching changes construction *cost*, never the stored bits.

use crate::oracle::{DistanceOracle, PairData};
use crate::split_tree::{NodeRef, SplitTree};
use crate::wspd::{rect_gap, wspd, WspdPair};
use silc_network::dijkstra::sssp_settle_until;
use silc_network::{SpatialNetwork, SsspWorkspace, VertexId};
use std::collections::HashMap;
use std::sync::Mutex;

/// Parameters of oracle construction.
#[derive(Debug, Clone)]
pub struct PcpBuildConfig {
    /// Grid resolution exponent of the split tree (`2^q × 2^q` cells).
    pub grid_exponent: u32,
    /// WSPD separation factor `s` (larger = more pairs = better accuracy).
    pub separation: f64,
    /// Worker threads for the probe passes; `0` means all available cores.
    pub threads: usize,
}

impl Default for PcpBuildConfig {
    fn default() -> Self {
        PcpBuildConfig { grid_exponent: 10, separation: 8.0, threads: 0 }
    }
}

/// Cost counters of one oracle construction — what `bench_tradeoff` records
/// as "probe counts" next to build seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PcpBuildStats {
    /// Stored WSPD pairs.
    pub pairs: usize,
    /// Truncated multi-target searches in the batched distance/radius pass
    /// (one per distinct representative; the naive build ran one probe per
    /// *pair* instead).
    pub batch_sources: usize,
    /// Total vertices settled across the batched pass.
    pub batch_settled: usize,
    /// Truncated searches spent on exact-refinement of tail caps.
    pub refine_sources: usize,
    /// Total vertices settled across the refinement pass.
    pub refine_settled: usize,
    /// Pairs whose cap was tightened by exact refinement.
    pub refined_pairs: usize,
    /// Worker threads the build ran on.
    pub workers: usize,
}

/// Caps above this percentile of the cap distribution are the "tail" that
/// gets the exact-refinement fallback.
const TAIL_PERCENTILE: f64 = 99.0;
/// A tail pair is refined only when its smaller side holds at most this
/// many vertices (the refinement runs one truncated search per vertex of
/// that side).
const REFINE_SPAN_LIMIT: usize = 64;
/// Upper bound on distinct refinement sources, as a fraction denominator of
/// `n` (with a floor), so the refinement pass can never dominate the build.
fn refine_source_budget(n: usize) -> usize {
    (n / 4).max(256)
}

/// One batched probe task: a representative vertex, the pairs whose `a`-side
/// representative it is, and the internal nodes it represents (whose network
/// radii this task measures).
struct SourcePlan<'a> {
    source: u32,
    pair_ids: &'a [u32],
    node_ids: &'a [u32],
}

/// Output slot of one batched probe task (parallel to the plan's id lists).
struct SourceOut {
    pair_dists: Vec<f64>,
    node_rads: Vec<f64>,
    settled: usize,
}

/// One refinement task: probe truncated searches from `source` and compare
/// every settled vertex of each target node's span against the pair's
/// stored distance.
struct RefinePlan {
    source: u32,
    /// `(pair index, span side to scan)` pairs this source contributes to.
    items: Vec<(u32, NodeRef)>,
}

/// Per-worker scratch, created once per worker thread: the SSSP workspace
/// plus generation-stamped target marks and a distance capture buffer.
struct ProbeScratch {
    ws: SsspWorkspace,
    mark: Vec<u32>,
    dist_of: Vec<f64>,
    gen: u32,
}

impl ProbeScratch {
    fn new(n: usize) -> Self {
        ProbeScratch {
            ws: SsspWorkspace::with_capacity(n),
            mark: vec![0; n],
            dist_of: vec![0.0; n],
            gen: 0,
        }
    }

    fn next_gen(&mut self) -> u32 {
        if self.gen == u32::MAX {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.gen = 0;
        }
        self.gen += 1;
        self.gen
    }
}

/// Picks the worker count and self-scheduling chunk size for `t` tasks
/// (mirrors `SilcIndex::build`'s plan).
fn worker_plan(t: usize, threads: usize) -> (usize, usize) {
    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(t)
    .max(1);
    let chunk = (t / (workers * 8)).clamp(1, 256);
    (workers, chunk)
}

/// A self-scheduled unit of output: the base task index of a chunk and the
/// pre-allocated slots its results are written into.
type SlotChunk<'a, O> = (usize, &'a mut [Option<O>]);

/// Runs `run` over every task, fanning chunks out to self-scheduling worker
/// threads that write results into pre-allocated slots — output order is
/// the task order regardless of scheduling, which is what keeps the encoded
/// oracle byte-identical across thread counts. Returns the outputs and the
/// worker count used.
fn run_chunked<T: Sync, O: Send>(
    tasks: &[T],
    threads: usize,
    n: usize,
    run: impl Fn(&T, &mut ProbeScratch) -> O + Sync,
) -> (Vec<O>, usize) {
    let (workers, chunk) = worker_plan(tasks.len(), threads);
    if workers <= 1 {
        let mut scratch = ProbeScratch::new(n);
        let outs = tasks.iter().map(|t| run(t, &mut scratch)).collect();
        return (outs, 1);
    }
    let mut slots: Vec<Option<O>> = tasks.iter().map(|_| None).collect();
    {
        let work: Mutex<Vec<SlotChunk<'_, O>>> =
            Mutex::new(slots.chunks_mut(chunk).enumerate().map(|(i, c)| (i * chunk, c)).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let work = &work;
                let run = &run;
                scope.spawn(move || {
                    let mut scratch = ProbeScratch::new(n);
                    loop {
                        let Some((base, slot_run)) = work.lock().unwrap().pop() else { return };
                        for (i, slot) in slot_run.iter_mut().enumerate() {
                            *slot = Some(run(&tasks[base + i], &mut scratch));
                        }
                    }
                });
            }
        });
    }
    (slots.into_iter().map(|o| o.expect("all tasks ran")).collect(), workers)
}

/// One batched probe: mark this source's pair targets plus the widest span
/// it represents, run a single truncated multi-target search, and read off
/// pair distances and node radii.
fn run_batch_source(
    g: &SpatialNetwork,
    tree: &SplitTree,
    pair_reps: &[(VertexId, VertexId)],
    plan: &SourcePlan<'_>,
    scratch: &mut ProbeScratch,
) -> SourceOut {
    let gen = scratch.next_gen();
    let ProbeScratch { ws, mark, dist_of, .. } = scratch;
    let mut required = 0usize;
    for &pid in plan.pair_ids {
        let t = pair_reps[pid as usize].1.index();
        if mark[t] != gen {
            mark[t] = gen;
            required += 1;
        }
    }
    // Nodes sharing a representative are an ancestor chain with nested
    // spans, so marking the widest span covers every assigned node.
    if let Some(&widest) = plan.node_ids.iter().max_by_key(|&&id| tree.size(NodeRef(id))) {
        for v in tree.vertices(NodeRef(widest)) {
            let vi = v.index();
            if mark[vi] != gen {
                mark[vi] = gen;
                required += 1;
            }
        }
    }
    let mut remaining = required;
    let settled = sssp_settle_until(g, VertexId(plan.source), ws, |v, d| {
        let vi = v.index();
        if mark[vi] == gen {
            dist_of[vi] = d;
            remaining -= 1;
            if remaining == 0 {
                return false;
            }
        }
        true
    });
    assert_eq!(remaining, 0, "oracle requires a strongly connected network");
    let pair_dists =
        plan.pair_ids.iter().map(|&pid| dist_of[pair_reps[pid as usize].1.index()]).collect();
    let node_rads = plan
        .node_ids
        .iter()
        .map(|&id| tree.vertices(NodeRef(id)).map(|v| dist_of[v.index()]).fold(0.0, f64::max))
        .collect();
    SourceOut { pair_dists, node_rads, settled }
}

/// One refinement probe: settle every vertex of the task's target spans
/// from `source` and return, per item, the maximum relative error of the
/// pair's stored distance against the exact distances.
fn run_refine_source(
    g: &SpatialNetwork,
    tree: &SplitTree,
    pair_dist: &[f64],
    plan: &RefinePlan,
    scratch: &mut ProbeScratch,
) -> (Vec<f64>, usize) {
    let gen = scratch.next_gen();
    let ProbeScratch { ws, mark, dist_of, .. } = scratch;
    let mut required = 0usize;
    for &(_, node) in &plan.items {
        for v in tree.vertices(node) {
            let vi = v.index();
            if mark[vi] != gen {
                mark[vi] = gen;
                required += 1;
            }
        }
    }
    let mut remaining = required;
    let settled = sssp_settle_until(g, VertexId(plan.source), ws, |v, d| {
        let vi = v.index();
        if mark[vi] == gen {
            dist_of[vi] = d;
            remaining -= 1;
            if remaining == 0 {
                return false;
            }
        }
        true
    });
    assert_eq!(remaining, 0, "oracle requires a strongly connected network");
    let errs = plan
        .items
        .iter()
        .map(|&(pid, node)| {
            let stored = pair_dist[pid as usize];
            tree.vertices(node)
                .map(|v| {
                    let exact = dist_of[v.index()];
                    if exact > 0.0 {
                        (stored - exact).abs() / exact
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0, f64::max)
        })
        .collect();
    (errs, settled)
}

/// Builds the oracle: batched pair distances + node radii, sound per-pair
/// error caps, and exact refinement of the cap tail.
///
/// ## The per-pair cap, and why it is sound
///
/// For a pair `(A, B)` with representatives `(r_A, r_B)` and stored
/// distance `d = d(r_A, r_B)`, any covered query `(u, v)` satisfies (by the
/// triangle inequality, on symmetric networks)
/// `|d(u, v) − d| ≤ d(r_A, u) + d(r_B, v) ≤ rad(A) + rad(B)`, where
/// `rad(N) = max_{x∈N} d(rep(N), x)` is the node's network radius. The true
/// distance is bounded below by both `min_ratio · gap(A, B)` (the scaled
/// Euclidean bound on any cross pair) and `d − rad(A) − rad(B)`, so
///
/// ```text
/// |d(u,v) − d| / d(u,v)  ≤  (rad_A + rad_B) / max(min_ratio·gap, d − rad_A − rad_B)
/// ```
///
/// Leaf–leaf pairs have zero radii and therefore cap 0: they are exact.
/// Caps above the [`TAIL_PERCENTILE`] clamp level are replaced by the
/// pair's *exact* maximum relative error (still sound — it is the supremum
/// the cap promises) whenever the pair's smaller side fits the refinement
/// budget. On directed networks with asymmetric weights the caps are
/// heuristic, matching the oracle's existing quasi-symmetry assumption.
pub(crate) fn build_oracle(network: &SpatialNetwork, cfg: &PcpBuildConfig) -> DistanceOracle {
    assert!(cfg.separation > 0.0, "separation must be positive");
    let tree = SplitTree::build(network, cfg.grid_exponent);
    let raw: Vec<WspdPair> = wspd(&tree, cfg.separation);
    let n = network.vertex_count();
    let node_count = tree.node_count();

    let pair_reps: Vec<(VertexId, VertexId)> =
        raw.iter().map(|p| (tree.representative(p.a), tree.representative(p.b))).collect();

    // Group pairs by a-side representative and internal nodes by their
    // representative; tasks run in ascending source-vertex order.
    let mut pairs_by_src: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, &(ra, _)) in pair_reps.iter().enumerate() {
        pairs_by_src[ra.index()].push(i as u32);
    }
    // Radii are needed only for internal nodes that actually appear in a
    // pair — the caps never read any other node. Measuring all internal
    // nodes would make the root's representative settle the whole graph
    // for a radius nothing uses.
    let mut nodes_by_rep: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut node_seen = vec![false; node_count];
    for p in &raw {
        for node in [p.a, p.b] {
            if !tree.is_leaf(node) && !node_seen[node.0 as usize] {
                node_seen[node.0 as usize] = true;
                nodes_by_rep[tree.representative(node).index()].push(node.0);
            }
        }
    }
    for group in &mut nodes_by_rep {
        group.sort_unstable();
    }
    drop(node_seen);
    let plans: Vec<SourcePlan<'_>> = (0..n)
        .filter(|&v| !pairs_by_src[v].is_empty() || !nodes_by_rep[v].is_empty())
        .map(|v| SourcePlan {
            source: v as u32,
            pair_ids: &pairs_by_src[v],
            node_ids: &nodes_by_rep[v],
        })
        .collect();

    let (outs, workers) = run_chunked(&plans, cfg.threads, n, |plan, scratch| {
        run_batch_source(network, &tree, &pair_reps, plan, scratch)
    });

    // Deterministic reduction: scatter into index-ordered arrays.
    let mut pair_dist = vec![0.0f64; raw.len()];
    let mut node_rad = vec![0.0f64; node_count];
    let mut batch_settled = 0usize;
    for (plan, out) in plans.iter().zip(&outs) {
        for (&pid, &d) in plan.pair_ids.iter().zip(&out.pair_dists) {
            pair_dist[pid as usize] = d;
        }
        for (&nid, &r) in plan.node_ids.iter().zip(&out.node_rads) {
            node_rad[nid as usize] = r;
        }
        batch_settled += out.settled;
    }
    let batch_sources = plans.len();
    drop(outs);
    drop(plans);

    // Global stretch (v1 semantics, kept for the a-priori bound): the max
    // observed d_network / d_euclidean over representative pairs.
    let mut stretch = 1.0f64;
    for (i, &(ra, rb)) in pair_reps.iter().enumerate() {
        let euclid = network.euclidean(ra, rb);
        if euclid > 0.0 {
            stretch = stretch.max(pair_dist[i] / euclid);
        }
    }

    // Radius-based caps for every pair.
    let min_ratio = network.min_weight_ratio();
    let mut caps = vec![0.0f64; raw.len()];
    for (i, p) in raw.iter().enumerate() {
        let rad = node_rad[p.a.0 as usize] + node_rad[p.b.0 as usize];
        if rad <= 0.0 {
            continue; // leaf–leaf pair: representatives are the vertices — exact.
        }
        let gap = rect_gap(&tree.rect(p.a), &tree.rect(p.b));
        let lower = (min_ratio * gap).max(pair_dist[i] - rad);
        caps[i] = if lower > 0.0 { rad / lower } else { f64::INFINITY };
    }

    // Percentile clamp level: caps above it form the tail that gets exact
    // refinement (budgeted so the pass cannot dominate the build).
    let clamp = {
        let mut finite: Vec<f64> = caps.iter().copied().filter(|c| c.is_finite()).collect();
        finite.sort_unstable_by(f64::total_cmp);
        if finite.is_empty() {
            f64::INFINITY
        } else {
            let rank = ((TAIL_PERCENTILE / 100.0) * finite.len() as f64).ceil() as usize;
            finite[rank.saturating_sub(1).min(finite.len() - 1)]
        }
    };
    let mut tail: Vec<u32> = (0..raw.len() as u32).filter(|&i| caps[i as usize] > clamp).collect();
    tail.sort_unstable_by(|&x, &y| caps[y as usize].total_cmp(&caps[x as usize]).then(x.cmp(&y)));

    // Budgeted tail selection: scan worst-first, probing from the smaller
    // side of each pair, reusing sources across pairs.
    let budget = refine_source_budget(n);
    let mut items_by_src: Vec<Vec<(u32, NodeRef)>> = vec![Vec::new(); n];
    let mut refine_sources: Vec<u32> = Vec::new();
    let mut refined_pairs = 0usize;
    for &pid in &tail {
        let p = raw[pid as usize];
        let (probe, scan) = if tree.size(p.a) <= tree.size(p.b) { (p.a, p.b) } else { (p.b, p.a) };
        let span = tree.size(probe);
        if span > REFINE_SPAN_LIMIT {
            continue;
        }
        let fresh = tree.vertices(probe).filter(|v| items_by_src[v.index()].is_empty()).count();
        if refine_sources.len() + fresh > budget {
            continue;
        }
        for v in tree.vertices(probe) {
            if items_by_src[v.index()].is_empty() {
                refine_sources.push(v.0);
            }
            items_by_src[v.index()].push((pid, scan));
        }
        refined_pairs += 1;
    }
    refine_sources.sort_unstable();
    let refine_plans: Vec<RefinePlan> = refine_sources
        .iter()
        .map(|&v| RefinePlan { source: v, items: std::mem::take(&mut items_by_src[v as usize]) })
        .collect();

    let mut refine_settled = 0usize;
    if !refine_plans.is_empty() {
        let (outs, _) = run_chunked(&refine_plans, cfg.threads, n, |plan, scratch| {
            run_refine_source(network, &tree, &pair_dist, plan, scratch)
        });
        // The pair's exact max error is the max over its probe sources; it
        // can only tighten the sound radius cap (min guards float noise).
        let mut refined: HashMap<u32, f64> = HashMap::new();
        for (plan, (errs, settled)) in refine_plans.iter().zip(&outs) {
            refine_settled += settled;
            for (&(pid, _), &e) in plan.items.iter().zip(errs) {
                let slot = refined.entry(pid).or_insert(0.0);
                *slot = slot.max(e);
            }
        }
        for (&pid, &e) in refined.iter() {
            let c = &mut caps[pid as usize];
            *c = c.min(e);
        }
    }
    let refine_sources_count = refine_plans.len();

    let eps_max = caps.iter().copied().fold(0.0f64, f64::max);
    let mut pairs = HashMap::with_capacity(raw.len());
    for (i, p) in raw.iter().enumerate() {
        let (rep_a, rep_b) = pair_reps[i];
        pairs.insert(
            (p.a.0, p.b.0),
            PairData { rep_a, rep_b, dist: pair_dist[i], max_err: caps[i] },
        );
    }
    let stats = PcpBuildStats {
        pairs: raw.len(),
        batch_sources,
        batch_settled,
        refine_sources: refine_sources_count,
        refine_settled,
        refined_pairs,
        workers,
    };
    DistanceOracle::from_parts(tree, pairs, cfg.separation, stretch, eps_max, stats)
}
