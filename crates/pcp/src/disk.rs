//! The disk-resident ε-approximate distance oracle.
//!
//! Storage parity with `silc::disk::DiskSilcIndex`: the split tree and the
//! per-node pair directory stay pinned in memory (they are the structure a
//! disk index keeps resident), while the `O(s²n)` pair payload is served
//! from fixed-size pages through a `silc_storage::BufferPool`, with decoded
//! pair groups cached in a `ShardedCache` (one group per split-tree node).
//! A query descends the tree exactly like the memory oracle — the walk is
//! literally the same function — and resolves each probed `(a, b)`
//! orientation by a binary search in `a`'s cached group, so answers are
//! **bit-identical** to [`DistanceOracle`] for the same build parameters.

use crate::error::PcpError;
use crate::format::{self, PairRecord};
use crate::oracle::{locate_pair, DistanceOracle, PairData};
use crate::split_tree::SplitTree;
use bytes::Buf;
use silc_network::VertexId;
use silc_storage::{BufferPool, FilePageStore, MemPageStore, PageStore, RetryPolicy, TieredPool};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// A PCP distance oracle served from a page file through an LRU buffer
/// pool, with a cache of decoded pair groups.
///
/// Cheaply shareable: wrap it in an [`Arc`] and query it from any number of
/// threads. All interior state (the page pool, the decoded-pair cache) is
/// sharded and internally synchronized.
pub struct DiskDistanceOracle<S: PageStore = FilePageStore> {
    tree: SplitTree,
    /// Per-node `(start, pair count)` into the pair region — a pair index
    /// for the fixed-record versions (≤ 3), a byte offset for v4.
    directory: Vec<(u64, u32)>,
    pair_count: u64,
    pairs_base: u64,
    /// Byte length of the pair region.
    pairs_len: u64,
    separation: f64,
    stretch: f64,
    /// The guaranteed ε from the header: max per-pair cap (v2), or the
    /// a-priori `4t/s` (v1 files, which carry no caps).
    eps_max: f64,
    /// Bytes per pair record in the fixed-record versions — 28 for v2/v3
    /// files, 20 for v1 (unused for v4's variable-length records).
    pair_bytes: usize,
    /// The opened file's format version.
    version: u32,
    /// The two-tier read path: page pool plus decoded pair groups keyed by
    /// their `a`-side split-tree node, so the repeated probes of one locate
    /// walk do not re-deserialize a group per lookup.
    cached: TieredPool<S, Arc<[PairRecord]>>,
}

/// Both oracle forms must stay shareable across query threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DistanceOracle>();
    assert_send_sync::<DiskDistanceOracle<FilePageStore>>();
    assert_send_sync::<DiskDistanceOracle<MemPageStore>>();
};

impl DiskDistanceOracle<FilePageStore> {
    /// Opens an oracle file written by [`crate::write_oracle`].
    ///
    /// `cache_fraction` sizes the buffer pool relative to the file's page
    /// count (the paper's disk experiments use 0.05); the decoded-pair
    /// cache gets a default size scaled to the tree
    /// (see [`Self::open_with_pair_cache`] to pick one explicitly).
    pub fn open<P: AsRef<Path>>(path: P, cache_fraction: f64) -> Result<Self, PcpError> {
        Self::from_store(FilePageStore::open(path)?, cache_fraction, None)
    }

    /// Opens an oracle file with an explicit decoded-pair-group cache
    /// capacity (in groups; minimum 1).
    pub fn open_with_pair_cache<P: AsRef<Path>>(
        path: P,
        cache_fraction: f64,
        pair_cache_capacity: usize,
    ) -> Result<Self, PcpError> {
        Self::from_store(FilePageStore::open(path)?, cache_fraction, Some(pair_cache_capacity))
    }
}

impl<S: PageStore> DiskDistanceOracle<S> {
    /// Opens an oracle from any [`PageStore`] holding the serialized bytes —
    /// the seam the counting-store tests (and memory-backed deployments)
    /// use. `pair_cache_capacity = None` picks the default sizing.
    pub fn from_store(
        store: S,
        cache_fraction: f64,
        pair_cache_capacity: Option<usize>,
    ) -> Result<Self, PcpError> {
        let parsed = format::parse(&store)?;
        let cache = pair_cache_capacity
            .unwrap_or_else(|| silc_storage::default_decoded_capacity(parsed.directory.len()));
        let mut cached = TieredPool::new(store, cache_fraction, cache);
        if let Some(table) = parsed.checks {
            cached.set_checksums(table);
        }
        Ok(DiskDistanceOracle {
            tree: parsed.tree,
            directory: parsed.directory,
            pair_count: parsed.pair_count,
            pairs_base: parsed.pairs_base,
            pairs_len: parsed.pairs_len,
            separation: parsed.separation,
            stretch: parsed.stretch,
            eps_max: parsed.eps_max,
            pair_bytes: parsed.pair_bytes,
            version: parsed.version,
            cached,
        })
    }

    /// The opened file's format version (1 to 4; see `crate::format`).
    pub fn format_version(&self) -> u32 {
        self.version
    }

    /// Byte length of the on-disk pair region — what the v4 compression
    /// shrinks (the benches record it as bytes-on-disk).
    pub fn pair_region_bytes(&self) -> u64 {
        self.pairs_len
    }

    /// Sets the buffer pool's readahead hint (see
    /// [`silc_storage::PrefetchPolicy`]): cold sequential runs through the
    /// pair region are extended by up to `window` pages in the same store
    /// call. Configure before sharing the oracle across threads.
    pub fn set_prefetch_policy(&mut self, prefetch: silc_storage::PrefetchPolicy) {
        self.cached.set_prefetch_policy(prefetch);
    }

    /// Sets how the buffer pool retries transient store faults. Configure
    /// before sharing the oracle across threads.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.cached.set_retry_policy(retry);
    }

    /// Opts this open out of per-page checksum verification (v3 files
    /// verify on every physical page read by default; v1/v2 files carry no
    /// checksums and are unaffected). For trusted media and for measuring
    /// the verification overhead — corruption then goes undetected.
    /// Configure before sharing the oracle across threads.
    pub fn disable_checksum_validation(&mut self) {
        self.cached.clear_checksums();
    }

    /// Number of stored pairs (the oracle's size; `O(s²n)`).
    pub fn pair_count(&self) -> usize {
        self.pair_count as usize
    }

    /// Number of vertices the oracle answers for.
    pub fn vertex_count(&self) -> usize {
        self.tree.vertex_count()
    }

    /// The separation factor the oracle was built with.
    pub fn separation(&self) -> f64 {
        self.separation
    }

    /// Empirical network stretch `t` observed over representative pairs.
    pub fn stretch(&self) -> f64 {
        self.stretch
    }

    /// The guaranteed relative error bound: the file's max per-pair cap
    /// (v2), or the a-priori `4t/s` for v1 files that carry no caps —
    /// bit-identical to the memory oracle this file was written from.
    pub fn epsilon(&self) -> f64 {
        self.eps_max
    }

    /// The classic a-priori first-order bound `≈ 4t/s` (what v1 files
    /// reported as their only ε).
    pub fn epsilon_apriori(&self) -> f64 {
        4.0 * self.stretch / self.separation
    }

    /// I/O counters of the buffer pool.
    pub fn io_stats(&self) -> silc_storage::IoStats {
        self.cached.io_stats()
    }

    /// Hit/miss counters of the decoded-pair-group cache.
    pub fn pair_cache_stats(&self) -> silc_storage::CacheStats {
        self.cached.cache_stats()
    }

    /// Zeroes the I/O counters (pool and decoded-pair cache).
    pub fn reset_io_stats(&self) {
        self.cached.reset_stats();
    }

    /// Drops all cached pages *and* decoded pair groups (cold start).
    pub fn clear_cache(&self) {
        self.cached.clear();
    }

    /// Number of pages in the oracle file.
    pub fn page_count(&self) -> u64 {
        self.cached.store().page_count()
    }

    /// Fetches node `a`'s pair group: the decoded cache first, then the
    /// buffer pool, then the store. A store fault (after the pool's
    /// retries), a checksum mismatch, or structural corruption of the group
    /// (records not sorted — which would silently break the binary search —
    /// or an invalid error cap) surfaces as a typed error; nothing is
    /// cached, so a later call re-attempts the read.
    fn try_load_group(&self, a: u32) -> Result<Arc<[PairRecord]>, PcpError> {
        Ok(self.cached.try_get_or_decode(a as u64, |pool| self.decode_group(pool, a))?)
    }

    /// Decodes node `a`'s pair group from its pages through the pool.
    /// Version-aware: v4 records are delta+varint compressed with the
    /// representatives elided (derived from the pinned split tree); v1
    /// records carry no cap, so the file's global a-priori bound is
    /// substituted — exactly the ε a v1 oracle promised. Structural
    /// violations come back as `InvalidData`, which [`PcpError::from`]
    /// lifts to [`PcpError::Corrupt`].
    fn decode_group(&self, pool: &BufferPool<S>, a: u32) -> io::Result<Arc<[PairRecord]>> {
        let (start, count) = self.directory[a as usize];
        let (byte_lo, byte_hi) = if self.version >= 4 {
            // `start` is a byte offset; the group ends where the next one
            // starts (or the pair region ends).
            let end = self.directory.get(a as usize + 1).map_or(self.pairs_len, |d| d.0);
            (self.pairs_base + start, self.pairs_base + end)
        } else {
            let lo = self.pairs_base + start * self.pair_bytes as u64;
            (lo, lo + count as u64 * self.pair_bytes as u64)
        };
        let mut raw = Vec::with_capacity((byte_hi.saturating_sub(byte_lo)) as usize);
        pool.read_range(byte_lo, byte_hi, &mut raw)?;
        let records = if self.version >= 4 {
            self.decode_group_v4(a, &raw, count).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("pair group {a}: {e}"))
            })?
        } else {
            let mut r = &raw[..];
            let mut records = Vec::with_capacity(count as usize);
            for _ in 0..count {
                records.push(PairRecord {
                    b: r.get_u32_le(),
                    rep_a: r.get_u32_le(),
                    rep_b: r.get_u32_le(),
                    dist: r.get_f64_le(),
                    max_err: if self.version >= 2 { r.get_f64_le() } else { self.eps_max },
                });
            }
            records
        };
        if !records.windows(2).all(|w| w[0].b < w[1].b) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("pair group {a} is not sorted by node id"),
            ));
        }
        // Cap-section corruption is invisible to open-time metadata
        // validation; a nonsensical cap would silently poison interval
        // math downstream, so it fails loudly here instead.
        if !records.iter().all(|rec| !rec.max_err.is_nan() && rec.max_err >= 0.0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("pair group {a} holds an invalid error cap"),
            ));
        }
        Ok(records.into())
    }

    /// Decodes one v4 compressed group span: per record a varint `b` delta
    /// (first absolute, later gaps — a zero gap would break the strict
    /// ordering the binary search relies on and is rejected), the `f64`
    /// distance and cap bits verbatim, and the representatives derived from
    /// the split tree. Every failure is a typed error, never a panic; the
    /// span must be consumed exactly.
    fn decode_group_v4(&self, a: u32, raw: &[u8], count: u32) -> io::Result<Vec<PairRecord>> {
        use crate::split_tree::NodeRef;
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let node_count = self.directory.len() as u64;
        let mut r = silc_storage::varint::VarintReader::new(raw);
        let mut records = Vec::with_capacity(count as usize);
        let rep_a = self.tree.representative(NodeRef(a)).0;
        let mut prev_b: Option<u64> = None;
        for _ in 0..count {
            let delta = r.u64()?;
            let b = match prev_b {
                None => delta,
                Some(p) => {
                    if delta == 0 {
                        return Err(bad("records are not strictly sorted (zero b delta)".into()));
                    }
                    p.checked_add(delta).ok_or_else(|| bad("b delta overflows".into()))?
                }
            };
            if b >= node_count {
                return Err(bad(format!("b-side node id {b} out of range")));
            }
            let dist = r.f64_le()?;
            let max_err = r.f64_le()?;
            prev_b = Some(b);
            records.push(PairRecord {
                b: b as u32,
                rep_a,
                rep_b: self.tree.representative(NodeRef(b as u32)).0,
                dist,
                max_err,
            });
        }
        if r.remaining() != 0 {
            return Err(bad(format!("{} unconsumed bytes after the last record", r.remaining())));
        }
        Ok(records)
    }

    /// Resolves one stored orientation `(a, b)` — the lookup `locate_pair`
    /// drives: `a`'s group, binary-searched by `b`.
    fn try_lookup(&self, a: u32, b: u32) -> Result<Option<PairData>, PcpError> {
        if self.directory[a as usize].1 == 0 {
            return Ok(None);
        }
        let group = self.try_load_group(a)?;
        Ok(group.binary_search_by_key(&b, |r| r.b).ok().map(|i| {
            let r = group[i];
            PairData {
                rep_a: VertexId(r.rep_a),
                rep_b: VertexId(r.rep_b),
                dist: r.dist,
                max_err: r.max_err,
            }
        }))
    }

    fn try_locate(&self, u: VertexId, v: VertexId) -> Result<(PairData, bool), PcpError> {
        // The locate walk is infallible given a lookup closure; thread the
        // first error out through a capture so the walk stays the exact
        // same function the memory oracle uses (bit-identity). On error a
        // dummy hit terminates the walk at once and is discarded below.
        let mut failed: Option<PcpError> = None;
        let result = locate_pair(&self.tree, u, v, |a, b| match self.try_lookup(a, b) {
            Ok(hit) => hit,
            Err(e) => {
                failed = Some(e);
                Some(PairData { rep_a: VertexId(0), rep_b: VertexId(0), dist: 0.0, max_err: 0.0 })
            }
        });
        match failed {
            Some(e) => Err(e),
            None => Ok(result),
        }
    }

    /// Approximate network distance `u → v` (exact 0 when `u == v`) —
    /// bit-identical to the memory oracle this file was written from.
    ///
    /// # Panics
    /// Panics where [`Self::try_distance`] would error (I/O failure after
    /// retries, checksum mismatch, structural corruption of a pair group).
    pub fn distance(&self, u: VertexId, v: VertexId) -> f64 {
        self.try_distance(u, v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::distance`].
    pub fn try_distance(&self, u: VertexId, v: VertexId) -> Result<f64, PcpError> {
        if u == v {
            return Ok(0.0);
        }
        Ok(self.try_locate(u, v)?.0.dist)
    }

    /// Approximate distance together with the covering pair's own error cap
    /// (v2+; v1 files answer the global a-priori bound for every pair).
    /// `(0, 0)` when `u == v`.
    ///
    /// # Panics
    /// Panics where [`Self::try_distance_with_epsilon`] would error.
    pub fn distance_with_epsilon(&self, u: VertexId, v: VertexId) -> (f64, f64) {
        self.try_distance_with_epsilon(u, v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::distance_with_epsilon`].
    pub fn try_distance_with_epsilon(
        &self,
        u: VertexId,
        v: VertexId,
    ) -> Result<(f64, f64), PcpError> {
        if u == v {
            return Ok((0.0, 0.0));
        }
        let (p, _) = self.try_locate(u, v)?;
        Ok((p.dist, p.max_err))
    }

    /// The error cap of the pair covering `(u, v)` (0 when `u == v`).
    ///
    /// # Panics
    /// Panics where [`Self::try_epsilon_for`] would error.
    pub fn epsilon_for(&self, u: VertexId, v: VertexId) -> f64 {
        self.try_epsilon_for(u, v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::epsilon_for`].
    pub fn try_epsilon_for(&self, u: VertexId, v: VertexId) -> Result<f64, PcpError> {
        if u == v {
            return Ok(0.0);
        }
        Ok(self.try_locate(u, v)?.0.max_err)
    }

    /// The representative vertices of the pair covering `(u, v)`, oriented
    /// so the first is on `u`'s side.
    ///
    /// # Panics
    /// Panics where [`Self::try_representatives`] would error.
    pub fn representatives(&self, u: VertexId, v: VertexId) -> Option<(VertexId, VertexId)> {
        self.try_representatives(u, v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::representatives`].
    pub fn try_representatives(
        &self,
        u: VertexId,
        v: VertexId,
    ) -> Result<Option<(VertexId, VertexId)>, PcpError> {
        if u == v {
            return Ok(None);
        }
        let (p, flipped) = self.try_locate(u, v)?;
        Ok(Some(if flipped { (p.rep_b, p.rep_a) } else { (p.rep_a, p.rep_b) }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{
        encode_oracle as encode, encode_oracle_v2, write_oracle, HEADER_BYTES, HEADER_BYTES_V2,
        MAGIC,
    };
    use silc_network::generate::{road_network, RoadConfig};
    use silc_network::SpatialNetwork;
    use std::io;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn network() -> SpatialNetwork {
        road_network(&RoadConfig { vertices: 140, seed: 77, ..Default::default() })
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("silc-pcp-disk-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// A store that counts physical reads — proves the oracle reads only
    /// through the buffer pool.
    struct CountingStore {
        inner: MemPageStore,
        reads: AtomicU64,
    }

    impl PageStore for CountingStore {
        fn read_page(&self, page: silc_storage::PageId) -> io::Result<Arc<[u8]>> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.inner.read_page(page)
        }

        fn page_count(&self) -> u64 {
            self.inner.page_count()
        }
    }

    #[test]
    fn disk_distances_are_bit_identical_to_memory() {
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 4.0);
        let path = tmp("bitident.pcp");
        write_oracle(&mem, &path).unwrap();
        let disk = DiskDistanceOracle::open(&path, 0.25).unwrap();
        assert_eq!(disk.pair_count(), mem.pair_count());
        assert_eq!(disk.vertex_count(), g.vertex_count());
        assert_eq!(disk.separation(), mem.separation());
        assert_eq!(disk.stretch().to_bits(), mem.stretch().to_bits());
        assert_eq!(disk.epsilon().to_bits(), mem.epsilon().to_bits());
        let n = g.vertex_count() as u32;
        for u in 0..n {
            for v in 0..n {
                let (u, v) = (VertexId(u), VertexId(v));
                assert_eq!(
                    mem.distance(u, v).to_bits(),
                    disk.distance(u, v).to_bits(),
                    "distance bits differ for {u}->{v}"
                );
                assert_eq!(
                    mem.representatives(u, v),
                    disk.representatives(u, v),
                    "representatives differ for {u}->{v}"
                );
            }
        }
        assert!(disk.io_stats().requests() > 0, "disk queries must touch pages");
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = network();
        let a = encode(&DistanceOracle::build(&g, 10, 3.0));
        let b = encode(&DistanceOracle::build(&g, 10, 3.0));
        assert_eq!(a, b, "equal oracles must serialize byte-exactly");
    }

    #[test]
    fn warm_sweep_issues_zero_store_reads() {
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 3.0);
        let store =
            CountingStore { inner: MemPageStore::new(&encode(&mem)), reads: AtomicU64::new(0) };
        // Pool big enough for every page: after the cold sweep, nothing may
        // reach the store again.
        let disk = DiskDistanceOracle::from_store(store, 1.0, None).unwrap();
        // Opening reads the pinned metadata straight from the store; only
        // reads after this point belong to the query path.
        let open_reads = disk.cached.store().reads.load(Ordering::Relaxed);
        let n = g.vertex_count() as u32;
        let sweep = |o: &DiskDistanceOracle<CountingStore>| {
            for u in (0..n).step_by(3) {
                for v in (0..n).step_by(5) {
                    let _ = o.distance(VertexId(u), VertexId(v));
                }
            }
        };
        sweep(&disk);
        let cold_reads = disk.cached.store().reads.load(Ordering::Relaxed) - open_reads;
        assert!(cold_reads > 0, "the cold sweep must read the store");
        assert_eq!(disk.io_stats().misses, cold_reads, "every miss is exactly one store read");
        disk.reset_io_stats();
        sweep(&disk);
        assert_eq!(
            disk.cached.store().reads.load(Ordering::Relaxed) - open_reads,
            cold_reads,
            "a warm sweep must issue zero store reads"
        );
        let warm = disk.io_stats();
        assert_eq!(warm.misses, 0, "warm pool must not miss: {warm:?}");
        let cache = disk.pair_cache_stats();
        assert!(cache.hits > 0, "warm sweep must hit the decoded-pair cache");
        // clear_cache drops both tiers: the next query reads the store again.
        disk.clear_cache();
        let _ = disk.distance(VertexId(0), VertexId(1));
        assert!(disk.cached.store().reads.load(Ordering::Relaxed) - open_reads > cold_reads);
    }

    #[test]
    fn tiny_pair_cache_still_answers_through_the_pool() {
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 2.0);
        let path = tmp("tinycache.pcp");
        write_oracle(&mem, &path).unwrap();
        let disk = DiskDistanceOracle::open_with_pair_cache(&path, 1.0, 1).unwrap();
        for &(u, v) in &[(0u32, 100u32), (55, 7), (139, 2)] {
            assert_eq!(
                mem.distance(VertexId(u), VertexId(v)).to_bits(),
                disk.distance(VertexId(u), VertexId(v)).to_bits()
            );
        }
        assert!(disk.pair_cache_stats().requests() > 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let g = network();
        let mut bytes = encode(&DistanceOracle::build(&g, 10, 2.0));
        bytes[0] ^= 0xFF;
        match DiskDistanceOracle::from_store(MemPageStore::new(&bytes), 0.5, None) {
            Err(PcpError::Corrupt(msg)) => assert!(msg.contains("magic"), "{msg}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn future_version_rejected() {
        let g = network();
        let mut bytes = encode(&DistanceOracle::build(&g, 10, 2.0));
        bytes[8] = 0xFE; // version little-endian low byte
        match DiskDistanceOracle::from_store(MemPageStore::new(&bytes), 0.5, None) {
            Err(PcpError::Corrupt(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn truncated_file_rejected() {
        let g = network();
        let bytes = encode(&DistanceOracle::build(&g, 10, 3.0));
        // Cut the pair region short (keep whole pages so the store opens).
        for keep_pages in [1usize, bytes.len() / (2 * silc_storage::PAGE_SIZE)] {
            let cut = (keep_pages * silc_storage::PAGE_SIZE).min(bytes.len() - 1);
            let store = MemPageStore::new(&bytes[..cut]);
            assert!(
                DiskDistanceOracle::from_store(store, 0.5, None).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
        // A header shorter than HEADER_BYTES is rejected too.
        let store = MemPageStore::new(&bytes[..HEADER_BYTES - 4]);
        assert!(DiskDistanceOracle::from_store(store, 0.5, None).is_err());
    }

    #[test]
    fn corrupt_directory_rejected() {
        // v2 bytes: no checksum table, so the flip reaches the structural
        // validator (under v3 the page checksum would catch it first).
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 2.0);
        let bytes = encode_oracle_v2(&mem);
        // The directory's first group start sits right before the pair
        // region; breaking contiguity must be caught.
        let meta_len = {
            let mut h = &bytes[HEADER_BYTES_V2 - 8..HEADER_BYTES_V2];
            h.get_u64_le() as usize
        };
        let dir_first_start = meta_len - mem.tree().raw_nodes().len() * 12;
        let mut broken = bytes.clone();
        broken[dir_first_start] = 1;
        match DiskDistanceOracle::from_store(MemPageStore::new(&broken), 0.5, None) {
            Err(PcpError::Corrupt(msg)) => assert!(msg.contains("contiguous"), "{msg}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
        assert_eq!(&bytes[..8], MAGIC, "layout assumption: magic leads the header");
    }

    #[test]
    fn unsorted_pair_group_fails_loudly() {
        // Pair-region corruption is invisible to open-time metadata checks;
        // an unsorted group must abort the query with a clear message, not
        // silently miss pairs in the binary search.
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 2.0);
        let bytes = encode_oracle_v2(&mem);
        let pairs_base = {
            let mut h = &bytes[HEADER_BYTES_V2 - 8..HEADER_BYTES_V2];
            h.get_u64_le() as usize
        };
        // Walk the serialized directory to find a group with ≥ 2 records,
        // then duplicate its first b into its second — strict ordering
        // broken, metadata untouched.
        let node_count = mem.tree().raw_nodes().len();
        let dir_base = pairs_base - node_count * 12;
        let (start, _count) = (0..node_count)
            .map(|i| {
                let mut d = &bytes[dir_base + i * 12..dir_base + (i + 1) * 12];
                (d.get_u64_le() as usize, d.get_u32_le())
            })
            .find(|&(_, count)| count >= 2)
            .expect("some node stores at least two pairs");
        let rec = |i: usize| pairs_base + (start + i) * crate::format::PAIR_BYTES;
        let mut broken = bytes.clone();
        let first_b: [u8; 4] = broken[rec(0)..rec(0) + 4].try_into().unwrap();
        broken[rec(1)..rec(1) + 4].copy_from_slice(&first_b);
        let disk = DiskDistanceOracle::from_store(MemPageStore::new(&broken), 1.0, None).unwrap();
        let n = g.vertex_count() as u32;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for u in 0..n {
                for v in 0..n {
                    let _ = disk.distance(VertexId(u), VertexId(v));
                }
            }
        }));
        let err = result.expect_err("the corrupted group must abort a query");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("not sorted"), "unexpected panic message: {msg}");
    }

    #[test]
    fn v1_file_opens_with_apriori_epsilon() {
        // Backward compatibility: a version-1 file (20-byte records, no cap
        // fields) must open, answer bit-identical distances, and fall back
        // to the a-priori 4t/s bound — the only ε a v1 oracle ever had.
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 4.0);
        let v1 = crate::format::encode_oracle_v1(&mem);
        let disk = DiskDistanceOracle::from_store(MemPageStore::new(&v1), 0.5, None).unwrap();
        assert_eq!(disk.format_version(), 1);
        assert_eq!(disk.pair_count(), mem.pair_count());
        assert_eq!(disk.stretch().to_bits(), mem.stretch().to_bits());
        assert_eq!(
            disk.epsilon().to_bits(),
            mem.epsilon_apriori().to_bits(),
            "a v1 file's guaranteed ε is the a-priori bound"
        );
        let n = g.vertex_count() as u32;
        for u in (0..n).step_by(3) {
            for v in (0..n).step_by(7) {
                let (u, v) = (VertexId(u), VertexId(v));
                assert_eq!(mem.distance(u, v).to_bits(), disk.distance(u, v).to_bits());
                let (d, eps) = disk.distance_with_epsilon(u, v);
                assert_eq!(d.to_bits(), disk.distance(u, v).to_bits());
                if u != v {
                    assert_eq!(
                        eps.to_bits(),
                        disk.epsilon().to_bits(),
                        "every v1 pair answers the global bound"
                    );
                }
            }
        }
    }

    #[test]
    fn corrupt_cap_section_fails_loudly() {
        // Cap bytes live in the pair region, invisible to open-time
        // validation; a NaN or negative cap must abort the query loudly
        // instead of silently poisoning downstream interval math.
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 2.0);
        let bytes = encode_oracle_v2(&mem);
        let pairs_base = {
            let mut h = &bytes[HEADER_BYTES_V2 - 8..HEADER_BYTES_V2];
            h.get_u64_le() as usize
        };
        for bad in [f64::NAN, -0.25] {
            // Corrupt the cap of the very first stored record.
            let cap_at = pairs_base + crate::format::PAIR_BYTES - 8;
            let mut broken = bytes.clone();
            broken[cap_at..cap_at + 8].copy_from_slice(&bad.to_le_bytes());
            let disk =
                DiskDistanceOracle::from_store(MemPageStore::new(&broken), 1.0, None).unwrap();
            let n = g.vertex_count() as u32;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for u in 0..n {
                    for v in 0..n {
                        let _ = disk.distance(VertexId(u), VertexId(v));
                    }
                }
            }));
            let err = result.expect_err("the corrupted cap must abort a query");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("invalid error cap"), "unexpected panic message: {msg}");
        }
    }

    #[test]
    fn version_zero_rejected() {
        let g = network();
        let mut bytes = encode(&DistanceOracle::build(&g, 10, 2.0));
        bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
        match DiskDistanceOracle::from_store(MemPageStore::new(&bytes), 0.5, None) {
            Err(PcpError::Corrupt(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn truncated_v1_file_rejected() {
        // The v1 span check must use v1 record sizes: cutting the pair
        // region of a v1 file is caught at open time.
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 3.0);
        let bytes = crate::format::encode_oracle_v1(&mem);
        let cut = (bytes.len() / (2 * silc_storage::PAGE_SIZE)) * silc_storage::PAGE_SIZE;
        let store = MemPageStore::new(&bytes[..cut.min(bytes.len() - 1)]);
        assert!(DiskDistanceOracle::from_store(store, 0.5, None).is_err());
    }

    #[test]
    fn per_pair_epsilon_round_trips_bit_exactly() {
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 4.0);
        let disk =
            DiskDistanceOracle::from_store(MemPageStore::new(&encode(&mem)), 0.5, None).unwrap();
        assert_eq!(disk.format_version(), crate::format::VERSION);
        assert_eq!(disk.epsilon().to_bits(), mem.epsilon().to_bits());
        assert_eq!(disk.epsilon_apriori().to_bits(), mem.epsilon_apriori().to_bits());
        let n = g.vertex_count() as u32;
        for u in (0..n).step_by(5) {
            for v in (0..n).step_by(11) {
                let (u, v) = (VertexId(u), VertexId(v));
                let (md, me) = mem.distance_with_epsilon(u, v);
                let (dd, de) = disk.distance_with_epsilon(u, v);
                assert_eq!(md.to_bits(), dd.to_bits(), "distance bits differ for {u}->{v}");
                assert_eq!(me.to_bits(), de.to_bits(), "cap bits differ for {u}->{v}");
                assert_eq!(disk.epsilon_for(u, v).to_bits(), mem.epsilon_for(u, v).to_bits());
            }
        }
    }

    #[test]
    fn v2_file_opens_with_its_caps() {
        // Backward compatibility one version back: a v2 file (per-pair caps
        // but no checksum table) opens, reports its version, and answers
        // bit-identically including the per-pair ε.
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 4.0);
        let v2 = encode_oracle_v2(&mem);
        let disk = DiskDistanceOracle::from_store(MemPageStore::new(&v2), 0.5, None).unwrap();
        assert_eq!(disk.format_version(), 2);
        assert_eq!(disk.epsilon().to_bits(), mem.epsilon().to_bits());
        let n = g.vertex_count() as u32;
        for u in (0..n).step_by(3) {
            for v in (0..n).step_by(7) {
                let (u, v) = (VertexId(u), VertexId(v));
                let (md, me) = mem.distance_with_epsilon(u, v);
                let (dd, de) = disk.distance_with_epsilon(u, v);
                assert_eq!(md.to_bits(), dd.to_bits());
                assert_eq!(me.to_bits(), de.to_bits());
            }
        }
    }

    #[test]
    fn checksums_catch_pair_region_bit_flips() {
        // A bit flip anywhere in the pair region of a current-version file
        // must surface as a typed Corrupt error naming the page — never a
        // silently wrong distance.
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 3.0);
        let bytes = encode(&mem);
        let pairs_base = {
            let mut h = &bytes[HEADER_BYTES - 8..HEADER_BYTES];
            h.get_u64_le() as usize
        };
        let victim_page = pairs_base / silc_storage::PAGE_SIZE + 1;
        let flip_at = victim_page * silc_storage::PAGE_SIZE + 17;
        let mut broken = bytes.clone();
        broken[flip_at] ^= 0x04;
        let disk = DiskDistanceOracle::from_store(MemPageStore::new(&broken), 1.0, None).unwrap();
        assert_eq!(disk.format_version(), crate::format::VERSION);
        let n = g.vertex_count() as u32;
        let mut hit = false;
        'sweep: for u in 0..n {
            for v in 0..n {
                match disk.try_distance(VertexId(u), VertexId(v)) {
                    Ok(d) => {
                        assert_eq!(
                            d.to_bits(),
                            mem.distance(VertexId(u), VertexId(v)).to_bits(),
                            "an Ok answer must still be bit-identical"
                        );
                    }
                    Err(PcpError::Corrupt(msg)) => {
                        assert!(msg.contains("checksum mismatch"), "{msg}");
                        assert!(msg.contains(&format!("page {victim_page}")), "{msg}");
                        hit = true;
                        break 'sweep;
                    }
                    Err(e) => panic!("expected Corrupt, got {e}"),
                }
            }
        }
        assert!(hit, "no probe touched the corrupted page");
        let stats = disk.io_stats();
        assert!(stats.faults_seen >= 1);
        assert_eq!(stats.retries, 0, "checksum mismatches must not be retried");
    }

    #[test]
    fn metadata_corruption_is_caught_at_open() {
        // v3 verifies the whole pinned metadata span at open time.
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 2.0);
        let bytes = encode(&mem);
        let mut broken = bytes.clone();
        broken[HEADER_BYTES + 40] ^= 0x01; // somewhere in the sorted array
        match DiskDistanceOracle::from_store(MemPageStore::new(&broken), 0.5, None) {
            Err(PcpError::Corrupt(msg)) => assert!(msg.contains("checksum mismatch"), "{msg}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn round_trip_through_a_real_file_is_byte_exact() {
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 3.0);
        let path = tmp("roundtrip.pcp");
        write_oracle(&mem, &path).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        let encoded = encode(&mem);
        assert_eq!(&on_disk[..encoded.len()], &encoded[..], "file must hold the exact encoding");
        assert!(on_disk[encoded.len()..].iter().all(|&b| b == 0), "padding must be zeros");
        assert_eq!(on_disk.len() % silc_storage::PAGE_SIZE, 0, "file must be page-aligned");
    }

    #[test]
    fn v3_file_opens_with_fixed_records_and_checksums() {
        // Backward compatibility one version back: a v3 file (fixed 28-byte
        // records with a checksum table) opens, reports its version, and
        // answers bit-identically including the per-pair ε.
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 4.0);
        let v3 = crate::format::encode_oracle_v3(&mem);
        let disk = DiskDistanceOracle::from_store(MemPageStore::new(&v3), 0.5, None).unwrap();
        assert_eq!(disk.format_version(), 3);
        assert_eq!(disk.pair_count(), mem.pair_count());
        assert_eq!(disk.epsilon().to_bits(), mem.epsilon().to_bits());
        let n = g.vertex_count() as u32;
        for u in (0..n).step_by(3) {
            for v in (0..n).step_by(7) {
                let (u, v) = (VertexId(u), VertexId(v));
                let (md, me) = mem.distance_with_epsilon(u, v);
                let (dd, de) = disk.distance_with_epsilon(u, v);
                assert_eq!(md.to_bits(), dd.to_bits());
                assert_eq!(me.to_bits(), de.to_bits());
            }
        }
        // Its checksum table still guards the metadata.
        let mut broken = v3.clone();
        broken[crate::format::HEADER_BYTES_V3 + 40] ^= 0x01;
        match DiskDistanceOracle::from_store(MemPageStore::new(&broken), 0.5, None) {
            Err(PcpError::Corrupt(msg)) => assert!(msg.contains("checksum mismatch"), "{msg}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn v4_pair_region_shrinks_by_at_least_thirty_percent() {
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 4.0);
        let v4 = encode(&mem);
        let disk = DiskDistanceOracle::from_store(MemPageStore::new(&v4), 0.5, None).unwrap();
        let fixed = (mem.pair_count() * crate::format::PAIR_BYTES) as f64;
        let compressed = disk.pair_region_bytes() as f64;
        assert!(
            compressed <= 0.7 * fixed,
            "pair region must shrink ≥30%: {compressed} vs fixed {fixed}"
        );
        // The whole file shrinks too (the metadata region is shared).
        let v3 = crate::format::encode_oracle_v3(&mem);
        assert!(v4.len() < v3.len(), "v4 file {} must be smaller than v3 {}", v4.len(), v3.len());
    }

    /// Recomputes the checksum table of a current-version byte image after
    /// a test tampered with it, so the edit reaches the structural
    /// validators instead of being caught by a page checksum first.
    fn retable(bytes: &mut Vec<u8>) {
        let cksum_base = {
            let mut h = &bytes[HEADER_BYTES - 24..HEADER_BYTES - 16];
            h.get_u64_le() as usize
        };
        let table = silc_storage::ChecksumTable::compute(&bytes[..cksum_base]);
        bytes.truncate(cksum_base);
        bytes.extend_from_slice(&table.to_bytes());
    }

    /// The pair-region layout of a current-version byte image:
    /// `(pairs_base, pairs_len, per-node (byte start, count))`.
    fn v4_layout(bytes: &[u8], node_count: usize) -> (usize, usize, Vec<(usize, u32)>) {
        let read_u64 = |at: usize| {
            let mut h = &bytes[at..at + 8];
            h.get_u64_le() as usize
        };
        let pairs_base = read_u64(HEADER_BYTES - 8);
        let pairs_len = read_u64(HEADER_BYTES - 16);
        let dir_base = pairs_base - node_count * 12;
        let dir = (0..node_count)
            .map(|i| {
                let mut d = &bytes[dir_base + i * 12..dir_base + (i + 1) * 12];
                (d.get_u64_le() as usize, d.get_u32_le())
            })
            .collect();
        (pairs_base, pairs_len, dir)
    }

    #[test]
    fn corrupt_v4_records_surface_as_typed_corruption_not_panics() {
        // Every way a compressed record can be malformed — over-long
        // varint, zero b delta, b past the node table, a record run that
        // does not consume its directory span exactly — must surface as a
        // typed Corrupt error naming the group, never a panic or a silent
        // misread. Each tampered image gets its checksum table recomputed
        // so the bytes reach the structural validator.
        let g = network();
        let mem = DistanceOracle::build(&g, 10, 2.0);
        let bytes = encode(&mem);
        let node_count = mem.tree().raw_nodes().len();
        let (pairs_base, _pairs_len, dir) = v4_layout(&bytes, node_count);

        let sweep_err = |mut broken: Vec<u8>| -> String {
            retable(&mut broken);
            let disk =
                DiskDistanceOracle::from_store(MemPageStore::new(&broken), 1.0, None).unwrap();
            let n = g.vertex_count() as u32;
            for u in 0..n {
                for v in 0..n {
                    match disk.try_distance(VertexId(u), VertexId(v)) {
                        Ok(_) => {}
                        Err(PcpError::Corrupt(msg)) => return msg,
                        Err(e) => panic!("expected Corrupt, got {e}"),
                    }
                }
            }
            panic!("no probe decoded the tampered group");
        };

        // (a) Over-long varint: 11 continuation bytes at a group start.
        let ga = dir.iter().position(|&(_, c)| c >= 1).expect("some group stores a pair");
        let mut broken = bytes.clone();
        for i in 0..11 {
            broken[pairs_base + dir[ga].0 + i] = 0x80;
        }
        let msg = sweep_err(broken);
        assert!(
            msg.contains("pair group")
                && (msg.contains("longer than 10") || msg.contains("overflows")),
            "{msg}"
        );

        // (b) Zero b delta: breaks the strict ordering the binary search
        // relies on. Pick a ≥2-record group whose second delta is a
        // single-byte varint and zero it.
        let (_, zero_at) = dir
            .iter()
            .filter(|&&(_, c)| c >= 2)
            .find_map(|&(s, _)| {
                let (_, used) = silc_storage::varint::decode_u64(&bytes[pairs_base + s..]).unwrap();
                let at = pairs_base + s + used + 16;
                (bytes[at] < 0x80).then_some((s, at))
            })
            .expect("a multi-record group with a one-byte delta");
        let mut broken = bytes.clone();
        broken[zero_at] = 0x00;
        let msg = sweep_err(broken);
        assert!(msg.contains("zero b delta"), "{msg}");

        // (c) b-side id past the node table.
        let mut broken = bytes.clone();
        let at = pairs_base + dir[ga].0;
        broken[at] = 0xFF;
        broken[at + 1] = 0xFF;
        broken[at + 2] = 0x7F; // varint 2097151 — far past any node id
        let msg = sweep_err(broken);
        assert!(msg.contains("out of range"), "{msg}");

        // (d) A record run that leaves its directory span unconsumed: turn
        // a multi-byte leading varint into the single byte 1 (a valid node
        // id), shifting every later field and stranding trailing bytes.
        if let Some(&(s, _)) = dir.iter().find(|&&(s, c)| c >= 1 && bytes[pairs_base + s] >= 0x80) {
            let mut broken = bytes.clone();
            broken[pairs_base + s] = 0x01;
            // The shifted fields can trip any structural check — what
            // matters is that the misread is caught as typed corruption.
            let msg = sweep_err(broken);
            assert!(msg.contains("pair group"), "{msg}");
        }
    }
}
