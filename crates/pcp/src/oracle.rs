//! The ε-approximate distance oracle built on the WSPD.
//!
//! For every well-separated pair `(A, B)` the oracle stores one
//! representative network distance `d(rep(A), rep(B))` **and that pair's own
//! error cap** — the relative error any query covered by the pair can
//! suffer, derived from exact network radii during construction (see
//! [`crate::build`]). A query `(u, v)` locates its unique covering pair by
//! descending the split tree — mirroring the construction's split rule, so
//! the walk takes `O(tree depth)` — and returns the representative distance
//! (with, on request, its cap).
//!
//! Two error bounds coexist:
//!
//! * [`DistanceOracle::epsilon`] — the **guaranteed** bound: the maximum
//!   stored per-pair cap. Honest by construction, and far tighter than the
//!   classic stretch formula on road networks (one spatially-close but
//!   network-far pair no longer poisons every query's bound).
//! * [`DistanceOracle::epsilon_apriori`] — the classic first-order
//!   `4t/s` formula over the global stretch `t`, kept for comparison (this
//!   is what v1 oracle files report).

use crate::build::{build_oracle, PcpBuildConfig, PcpBuildStats};
use crate::split_tree::SplitTree;
use silc_network::{SpatialNetwork, VertexId};
use std::collections::HashMap;

/// Stored payload of one pair.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PairData {
    pub(crate) rep_a: VertexId,
    pub(crate) rep_b: VertexId,
    /// Representative network distance `rep_a → rep_b`.
    pub(crate) dist: f64,
    /// This pair's own relative-error cap (see [`crate::build`] for the
    /// derivation and soundness argument).
    pub(crate) max_err: f64,
}

/// The pair-location walk shared by the memory and disk oracles: descend
/// the split tree mirroring the WSPD construction's split rule until the
/// stored pair covering `(u, v)` is found. `lookup` resolves one stored
/// orientation `(a, b)`; the walk probes both orientations at each step.
///
/// Both oracles answer through this one function over identical tree data,
/// which is what makes their answers bit-identical by construction.
pub(crate) fn locate_pair(
    tree: &SplitTree,
    u: VertexId,
    v: VertexId,
    mut lookup: impl FnMut(u32, u32) -> Option<PairData>,
) -> (PairData, bool) {
    let t = tree;
    let mut a = t.root();
    let mut b = t.root();
    loop {
        if a == b {
            // Descend together until u and v part ways.
            let ca = t.child_containing(a, u);
            let cb = t.child_containing(b, v);
            a = ca;
            b = cb;
            continue;
        }
        if let Some(p) = lookup(a.0, b.0) {
            return (p, false);
        }
        if let Some(p) = lookup(b.0, a.0) {
            return (p, true);
        }
        // Mirror the construction's split rule: split the larger
        // diameter (ties split `a`-side of the stored orientation —
        // which is the node that compares ≥).
        if t.diameter(a) >= t.diameter(b) && !t.is_leaf(a) {
            a = t.child_containing(a, u);
        } else if !t.is_leaf(b) {
            b = t.child_containing(b, v);
        } else {
            // WSPD invariant of the in-memory tree: two distinct leaves are
            // always a stored (well-separated) pair, so one of the lookups
            // above must have hit. Fallible disk lookups keep this
            // unreachable by answering a placeholder hit on error and
            // discarding the walk (`DiskDistanceOracle::try_locate`).
            unreachable!("two leaves always form a stored pair");
        }
    }
}

/// An approximate network-distance oracle.
pub struct DistanceOracle {
    tree: SplitTree,
    pairs: HashMap<(u32, u32), PairData>,
    separation: f64,
    /// Max observed `d_network / d_euclidean` over representative pairs —
    /// an empirical estimate of the network stretch `t`.
    stretch: f64,
    /// The guaranteed relative-error bound: the maximum stored per-pair cap.
    eps_max: f64,
    stats: PcpBuildStats,
}

impl DistanceOracle {
    /// Builds the oracle with separation factor `s` (larger `s` = more
    /// pairs = better accuracy), using all available cores.
    ///
    /// Convenience over [`Self::build_with`]; the build is batched — one
    /// truncated multi-target search per distinct representative instead of
    /// one probe per pair — and its output is byte-identical for any thread
    /// count, so defaulting to parallel is safe. Networks must be strongly
    /// connected.
    pub fn build(network: &SpatialNetwork, grid_exponent: u32, s: f64) -> Self {
        Self::build_with(network, &PcpBuildConfig { grid_exponent, separation: s, threads: 0 })
    }

    /// Builds the oracle from an explicit [`PcpBuildConfig`] (grid
    /// exponent, separation, worker threads). See [`crate::build`] for the
    /// pipeline and the per-pair error-cap construction.
    pub fn build_with(network: &SpatialNetwork, cfg: &PcpBuildConfig) -> Self {
        build_oracle(network, cfg)
    }

    /// Assembles an oracle from the build pipeline's parts.
    pub(crate) fn from_parts(
        tree: SplitTree,
        pairs: HashMap<(u32, u32), PairData>,
        separation: f64,
        stretch: f64,
        eps_max: f64,
        stats: PcpBuildStats,
    ) -> Self {
        DistanceOracle { tree, pairs, separation, stretch, eps_max, stats }
    }

    /// Number of stored pairs (the oracle's size; `O(s²n)`).
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The separation factor the oracle was built with.
    pub fn separation(&self) -> f64 {
        self.separation
    }

    /// Empirical network stretch `t` observed over representative pairs.
    pub fn stretch(&self) -> f64 {
        self.stretch
    }

    /// The guaranteed relative error bound: the maximum per-pair cap stored
    /// during construction. Sound on symmetric networks (see
    /// [`crate::build`]), and typically far below [`Self::epsilon_apriori`]
    /// on road networks.
    pub fn epsilon(&self) -> f64 {
        self.eps_max
    }

    /// The classic a-priori first-order bound `≈ 4t/s` over the global
    /// stretch `t` — near-vacuous on road networks where one
    /// spatially-close-but-network-far pair inflates `t`; kept for
    /// comparison and as the fallback bound of v1 oracle files.
    pub fn epsilon_apriori(&self) -> f64 {
        4.0 * self.stretch / self.separation
    }

    /// Cost counters of the construction (probe batching, refinement).
    pub fn build_stats(&self) -> &PcpBuildStats {
        &self.stats
    }

    /// The split tree the oracle was built on (serialization access).
    pub(crate) fn tree(&self) -> &SplitTree {
        &self.tree
    }

    /// The stored pairs keyed by split-tree node ids (serialization access).
    pub(crate) fn pair_map(&self) -> &HashMap<(u32, u32), PairData> {
        &self.pairs
    }

    /// The well-separated pair covering `(u, v)` and its payload.
    fn locate(&self, u: VertexId, v: VertexId) -> (PairData, bool) {
        locate_pair(&self.tree, u, v, |a, b| self.pairs.get(&(a, b)).copied())
    }

    /// Approximate network distance `u → v` (exact 0 when `u == v`).
    pub fn distance(&self, u: VertexId, v: VertexId) -> f64 {
        if u == v {
            return 0.0;
        }
        let (p, _) = self.locate(u, v);
        p.dist
    }

    /// Approximate distance together with the covering pair's own error cap
    /// — the per-query-honest `(estimate, ε)` the interval math in
    /// `silc-query` consumes. `(0, 0)` when `u == v`.
    pub fn distance_with_epsilon(&self, u: VertexId, v: VertexId) -> (f64, f64) {
        if u == v {
            return (0.0, 0.0);
        }
        let (p, _) = self.locate(u, v);
        (p.dist, p.max_err)
    }

    /// The error cap of the pair covering `(u, v)` (0 when `u == v`): the
    /// guaranteed relative error of [`Self::distance`] for this query.
    pub fn epsilon_for(&self, u: VertexId, v: VertexId) -> f64 {
        if u == v {
            return 0.0;
        }
        self.locate(u, v).0.max_err
    }

    /// The representative vertices of the pair covering `(u, v)`, oriented
    /// so the first is on `u`'s side. This is the "common vertex `t`" the
    /// PCP framework exposes for path stitching.
    pub fn representatives(&self, u: VertexId, v: VertexId) -> Option<(VertexId, VertexId)> {
        if u == v {
            return None;
        }
        let (p, flipped) = self.locate(u, v);
        Some(if flipped { (p.rep_b, p.rep_a) } else { (p.rep_a, p.rep_b) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_network::dijkstra;
    use silc_network::generate::{road_network, RoadConfig};

    fn network() -> SpatialNetwork {
        road_network(&RoadConfig { vertices: 150, seed: 91, ..Default::default() })
    }

    /// (mean, max) relative error of the oracle over a deterministic pair
    /// sample.
    fn rel_error(g: &SpatialNetwork, oracle: &DistanceOracle) -> (f64, f64) {
        let n = g.vertex_count() as u32;
        let mut worst = 0.0f64;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for i in 0..60u32 {
            let u = VertexId((i * 7) % n);
            let v = VertexId((i * 13 + 31) % n);
            if u == v {
                continue;
            }
            let truth = dijkstra::distance(g, u, v).unwrap();
            let approx = oracle.distance(u, v);
            let err = (approx - truth).abs() / truth.max(1e-12);
            worst = worst.max(err);
            sum += err;
            count += 1;
        }
        (sum / count as f64, worst)
    }

    #[test]
    fn identical_vertices_are_zero() {
        let g = network();
        let o = DistanceOracle::build(&g, 10, 4.0);
        assert_eq!(o.distance(VertexId(3), VertexId(3)), 0.0);
        assert!(o.representatives(VertexId(3), VertexId(3)).is_none());
    }

    #[test]
    fn every_query_resolves() {
        let g = network();
        let o = DistanceOracle::build(&g, 10, 2.0);
        let n = g.vertex_count() as u32;
        for u in (0..n).step_by(17) {
            for v in (0..n).step_by(13) {
                if u == v {
                    continue;
                }
                let d = o.distance(VertexId(u), VertexId(v));
                assert!(d.is_finite() && d > 0.0);
            }
        }
    }

    #[test]
    fn error_shrinks_with_separation() {
        let g = network();
        let coarse = DistanceOracle::build(&g, 10, 2.0);
        let fine = DistanceOracle::build(&g, 10, 16.0);
        let (mean_coarse, _) = rel_error(&g, &coarse);
        let (mean_fine, _) = rel_error(&g, &fine);
        assert!(
            mean_fine < mean_coarse,
            "higher separation must be more accurate on average: {mean_fine} vs {mean_coarse}"
        );
        assert!(mean_fine < 0.25, "s=16 should be reasonably accurate, got {mean_fine}");
        assert!(fine.pair_count() > coarse.pair_count());
    }

    #[test]
    fn error_within_guaranteed_bound() {
        let g = network();
        let o = DistanceOracle::build(&g, 10, 8.0);
        let (_, worst) = rel_error(&g, &o);
        // The per-pair caps are sound, so the guaranteed ε needs no slack —
        // unlike the a-priori 4t/s bound it replaced.
        assert!(
            worst <= o.epsilon() + 1e-9,
            "observed error {worst} exceeds the guaranteed bound {}",
            o.epsilon()
        );
        assert!(o.epsilon().is_finite(), "guaranteed bound must be finite on road networks");
    }

    #[test]
    fn per_pair_caps_bound_every_sampled_error() {
        let g = network();
        let o = DistanceOracle::build(&g, 10, 6.0);
        let n = g.vertex_count() as u32;
        let mut below_global = 0usize;
        let mut total = 0usize;
        for u in (0..n).step_by(7) {
            let truth = dijkstra::full_sssp(&g, VertexId(u));
            for v in (0..n).step_by(5) {
                if u == v {
                    continue;
                }
                let (approx, cap) = o.distance_with_epsilon(VertexId(u), VertexId(v));
                assert_eq!(cap, o.epsilon_for(VertexId(u), VertexId(v)));
                assert!(cap <= o.epsilon(), "a pair cap must not exceed the global bound");
                let t = truth.dist[v as usize];
                let err = (approx - t).abs() / t;
                assert!(
                    err <= cap + 1e-9,
                    "({u},{v}): error {err:.4} exceeds the pair's own cap {cap:.4}"
                );
                total += 1;
                if cap < o.epsilon() {
                    below_global += 1;
                }
            }
        }
        // The point of per-pair caps: most queries carry a bound strictly
        // tighter than the global worst case.
        assert!(
            below_global * 2 > total,
            "per-pair caps should usually beat the global ε ({below_global}/{total})"
        );
    }

    #[test]
    fn serial_and_parallel_builds_are_identical() {
        use crate::build::PcpBuildConfig;
        let g = network();
        let serial = DistanceOracle::build_with(
            &g,
            &PcpBuildConfig { grid_exponent: 10, separation: 5.0, threads: 1 },
        );
        let parallel = DistanceOracle::build_with(
            &g,
            &PcpBuildConfig { grid_exponent: 10, separation: 5.0, threads: 4 },
        );
        assert_eq!(
            crate::format::encode_oracle(&serial),
            crate::format::encode_oracle(&parallel),
            "thread count must not change a single encoded byte"
        );
        assert_eq!(serial.build_stats().pairs, parallel.build_stats().pairs);
        assert_eq!(serial.build_stats().batch_sources, parallel.build_stats().batch_sources);
    }

    #[test]
    fn identity_queries_have_zero_cap() {
        let g = network();
        let o = DistanceOracle::build(&g, 10, 4.0);
        assert_eq!(o.distance_with_epsilon(VertexId(9), VertexId(9)), (0.0, 0.0));
        assert_eq!(o.epsilon_for(VertexId(9), VertexId(9)), 0.0);
    }

    #[test]
    fn representatives_are_in_the_right_nodes() {
        let g = network();
        let o = DistanceOracle::build(&g, 10, 3.0);
        let (u, v) = (VertexId(10), VertexId(100));
        let (ra, rb) = o.representatives(u, v).unwrap();
        // Orientation check via symmetry: the reversed query flips them.
        let (sa, sb) = o.representatives(v, u).unwrap();
        assert_eq!((ra, rb), (sb, sa));
        // The representative on u's side must be (weakly) nearer to u.
        let dua = g.euclidean(u, ra);
        let dub = g.euclidean(u, rb);
        // rep_a shares a WSPD node with u, so it is closer than the far rep
        // whenever the pair is genuinely separated.
        if dua > 0.0 && dub > 0.0 {
            assert!(dua <= dub * 1.5 + g.bounds().width() * 0.2);
        }
    }

    #[test]
    fn symmetric_distances() {
        let g = network();
        let o = DistanceOracle::build(&g, 10, 4.0);
        for &(u, v) in &[(0u32, 140u32), (5, 60), (99, 98)] {
            let a = o.distance(VertexId(u), VertexId(v));
            let b = o.distance(VertexId(v), VertexId(u));
            // Same covering pair either way; symmetric networks give equal
            // representative distances.
            assert!((a - b).abs() < 1e-9);
        }
    }
}
