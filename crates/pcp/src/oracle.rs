//! The ε-approximate distance oracle built on the WSPD.
//!
//! For every well-separated pair `(A, B)` the oracle stores one
//! representative network distance `d(rep(A), rep(B))`. A query `(u, v)`
//! locates its unique covering pair by descending the split tree — mirroring
//! the construction's split rule, so the walk takes `O(tree depth)` — and
//! returns the representative distance. With separation `s` and network
//! stretch `t = max d_network/d_euclidean`, the relative error is bounded by
//! roughly `4t/s` (shrinking the pair radii shrinks how far `u, v` can be
//! from the representatives).

use crate::split_tree::SplitTree;
use crate::wspd::{wspd, WspdPair};
use silc_network::astar::AStar;
use silc_network::{SpatialNetwork, SsspWorkspace, VertexId};
use std::collections::HashMap;

/// Stored payload of one pair.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PairData {
    pub(crate) rep_a: VertexId,
    pub(crate) rep_b: VertexId,
    /// Representative network distance `rep_a → rep_b`.
    pub(crate) dist: f64,
}

/// The pair-location walk shared by the memory and disk oracles: descend
/// the split tree mirroring the WSPD construction's split rule until the
/// stored pair covering `(u, v)` is found. `lookup` resolves one stored
/// orientation `(a, b)`; the walk probes both orientations at each step.
///
/// Both oracles answer through this one function over identical tree data,
/// which is what makes their answers bit-identical by construction.
pub(crate) fn locate_pair(
    tree: &SplitTree,
    u: VertexId,
    v: VertexId,
    mut lookup: impl FnMut(u32, u32) -> Option<PairData>,
) -> (PairData, bool) {
    let t = tree;
    let mut a = t.root();
    let mut b = t.root();
    loop {
        if a == b {
            // Descend together until u and v part ways.
            let ca = t.child_containing(a, u);
            let cb = t.child_containing(b, v);
            a = ca;
            b = cb;
            continue;
        }
        if let Some(p) = lookup(a.0, b.0) {
            return (p, false);
        }
        if let Some(p) = lookup(b.0, a.0) {
            return (p, true);
        }
        // Mirror the construction's split rule: split the larger
        // diameter (ties split `a`-side of the stored orientation —
        // which is the node that compares ≥).
        if t.diameter(a) >= t.diameter(b) && !t.is_leaf(a) {
            a = t.child_containing(a, u);
        } else if !t.is_leaf(b) {
            b = t.child_containing(b, v);
        } else {
            unreachable!("two leaves always form a stored pair");
        }
    }
}

/// An approximate network-distance oracle.
pub struct DistanceOracle {
    tree: SplitTree,
    pairs: HashMap<(u32, u32), PairData>,
    separation: f64,
    /// Max observed `d_network / d_euclidean` over representative pairs —
    /// an empirical estimate of the network stretch `t`.
    stretch: f64,
}

impl DistanceOracle {
    /// Builds the oracle with separation factor `s` (larger `s` = more
    /// pairs = better accuracy).
    ///
    /// Every representative distance is one A* computation — `O(s²n)` of
    /// them — so all searches share one reusable [`SsspWorkspace`] instead
    /// of allocating fresh search state per pair; networks must be strongly
    /// connected.
    pub fn build(network: &SpatialNetwork, grid_exponent: u32, s: f64) -> Self {
        let tree = SplitTree::build(network, grid_exponent);
        let raw: Vec<WspdPair> = wspd(&tree, s);
        let astar = AStar::new(network);
        let mut ws = SsspWorkspace::with_capacity(network.vertex_count());
        let mut pairs = HashMap::with_capacity(raw.len());
        let mut stretch = 1.0f64;
        for p in raw {
            let rep_a = tree.representative(p.a);
            let rep_b = tree.representative(p.b);
            let dist = astar
                .distance_with(&mut ws, rep_a, rep_b)
                .expect("oracle requires a strongly connected network");
            let euclid = network.euclidean(rep_a, rep_b);
            if euclid > 0.0 {
                stretch = stretch.max(dist / euclid);
            }
            pairs.insert((p.a.0, p.b.0), PairData { rep_a, rep_b, dist });
        }
        DistanceOracle { tree, pairs, separation: s, stretch }
    }

    /// Number of stored pairs (the oracle's size; `O(s²n)`).
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The separation factor the oracle was built with.
    pub fn separation(&self) -> f64 {
        self.separation
    }

    /// Empirical network stretch `t` observed over representative pairs.
    pub fn stretch(&self) -> f64 {
        self.stretch
    }

    /// The a-priori relative error bound `≈ 4t/s`.
    pub fn epsilon(&self) -> f64 {
        4.0 * self.stretch / self.separation
    }

    /// The split tree the oracle was built on (serialization access).
    pub(crate) fn tree(&self) -> &SplitTree {
        &self.tree
    }

    /// The stored pairs keyed by split-tree node ids (serialization access).
    pub(crate) fn pair_map(&self) -> &HashMap<(u32, u32), PairData> {
        &self.pairs
    }

    /// The well-separated pair covering `(u, v)` and its payload.
    fn locate(&self, u: VertexId, v: VertexId) -> (PairData, bool) {
        locate_pair(&self.tree, u, v, |a, b| self.pairs.get(&(a, b)).copied())
    }

    /// Approximate network distance `u → v` (exact 0 when `u == v`).
    pub fn distance(&self, u: VertexId, v: VertexId) -> f64 {
        if u == v {
            return 0.0;
        }
        let (p, _) = self.locate(u, v);
        p.dist
    }

    /// The representative vertices of the pair covering `(u, v)`, oriented
    /// so the first is on `u`'s side. This is the "common vertex `t`" the
    /// PCP framework exposes for path stitching.
    pub fn representatives(&self, u: VertexId, v: VertexId) -> Option<(VertexId, VertexId)> {
        if u == v {
            return None;
        }
        let (p, flipped) = self.locate(u, v);
        Some(if flipped { (p.rep_b, p.rep_a) } else { (p.rep_a, p.rep_b) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_network::dijkstra;
    use silc_network::generate::{road_network, RoadConfig};

    fn network() -> SpatialNetwork {
        road_network(&RoadConfig { vertices: 150, seed: 91, ..Default::default() })
    }

    /// (mean, max) relative error of the oracle over a deterministic pair
    /// sample.
    fn rel_error(g: &SpatialNetwork, oracle: &DistanceOracle) -> (f64, f64) {
        let n = g.vertex_count() as u32;
        let mut worst = 0.0f64;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for i in 0..60u32 {
            let u = VertexId((i * 7) % n);
            let v = VertexId((i * 13 + 31) % n);
            if u == v {
                continue;
            }
            let truth = dijkstra::distance(g, u, v).unwrap();
            let approx = oracle.distance(u, v);
            let err = (approx - truth).abs() / truth.max(1e-12);
            worst = worst.max(err);
            sum += err;
            count += 1;
        }
        (sum / count as f64, worst)
    }

    #[test]
    fn identical_vertices_are_zero() {
        let g = network();
        let o = DistanceOracle::build(&g, 10, 4.0);
        assert_eq!(o.distance(VertexId(3), VertexId(3)), 0.0);
        assert!(o.representatives(VertexId(3), VertexId(3)).is_none());
    }

    #[test]
    fn every_query_resolves() {
        let g = network();
        let o = DistanceOracle::build(&g, 10, 2.0);
        let n = g.vertex_count() as u32;
        for u in (0..n).step_by(17) {
            for v in (0..n).step_by(13) {
                if u == v {
                    continue;
                }
                let d = o.distance(VertexId(u), VertexId(v));
                assert!(d.is_finite() && d > 0.0);
            }
        }
    }

    #[test]
    fn error_shrinks_with_separation() {
        let g = network();
        let coarse = DistanceOracle::build(&g, 10, 2.0);
        let fine = DistanceOracle::build(&g, 10, 16.0);
        let (mean_coarse, _) = rel_error(&g, &coarse);
        let (mean_fine, _) = rel_error(&g, &fine);
        assert!(
            mean_fine < mean_coarse,
            "higher separation must be more accurate on average: {mean_fine} vs {mean_coarse}"
        );
        assert!(mean_fine < 0.25, "s=16 should be reasonably accurate, got {mean_fine}");
        assert!(fine.pair_count() > coarse.pair_count());
    }

    #[test]
    fn error_within_theoretical_bound() {
        let g = network();
        let o = DistanceOracle::build(&g, 10, 8.0);
        let (_, worst) = rel_error(&g, &o);
        // ≈ 4t/s is a first-order bound; allow slack for the rect-based
        // separation test.
        assert!(
            worst <= 1.5 * o.epsilon() + 0.05,
            "observed error {worst} far exceeds bound {}",
            o.epsilon()
        );
    }

    #[test]
    fn representatives_are_in_the_right_nodes() {
        let g = network();
        let o = DistanceOracle::build(&g, 10, 3.0);
        let (u, v) = (VertexId(10), VertexId(100));
        let (ra, rb) = o.representatives(u, v).unwrap();
        // Orientation check via symmetry: the reversed query flips them.
        let (sa, sb) = o.representatives(v, u).unwrap();
        assert_eq!((ra, rb), (sb, sa));
        // The representative on u's side must be (weakly) nearer to u.
        let dua = g.euclidean(u, ra);
        let dub = g.euclidean(u, rb);
        // rep_a shares a WSPD node with u, so it is closer than the far rep
        // whenever the pair is genuinely separated.
        if dua > 0.0 && dub > 0.0 {
            assert!(dua <= dub * 1.5 + g.bounds().width() * 0.2);
        }
    }

    #[test]
    fn symmetric_distances() {
        let g = network();
        let o = DistanceOracle::build(&g, 10, 4.0);
        for &(u, v) in &[(0u32, 140u32), (5, 60), (99, 98)] {
            let a = o.distance(VertexId(u), VertexId(v));
            let b = o.distance(VertexId(v), VertexId(u));
            // Same covering pair either way; symmetric networks give equal
            // representative distances.
            assert!((a - b).abs() < 1e-9);
        }
    }
}
