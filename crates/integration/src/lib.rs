//! Host crate for the cross-crate integration tests in the repository-root `tests/` directory.
