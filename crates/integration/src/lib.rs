//! Host crate for the cross-crate integration tests in the repository-root `tests/` directory.
//!
//! Besides naming the test suites (see `Cargo.toml`), this crate compiles the
//! fenced Rust blocks in the top-level prose docs as doctests, so the README
//! quickstart and the `ARCHITECTURE.md` walkthrough can never silently rot:
//! `cargo test -p silc-integration --doc` builds and runs them against the
//! real workspace crates.

/// The repository README, doctest-compiled.
#[doc = include_str!("../../../README.md")]
pub mod readme {}

/// `ARCHITECTURE.md`, doctest-compiled.
#[doc = include_str!("../../../ARCHITECTURE.md")]
pub mod architecture {}
