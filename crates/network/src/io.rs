//! Compact binary serialization of spatial networks.
//!
//! Generated experiment networks are expensive to rebuild (the Gabriel pass
//! dominates), so the harness caches them on disk. The format is a simple
//! little-endian dump of the CSR arrays with a magic header; corrupt or
//! truncated input fails with `InvalidData` rather than panicking.

use crate::SpatialNetwork;
use bytes::{Buf, BufMut};
use silc_geom::Point;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SILCNET1";

/// Serializes `g` into `w`.
pub fn write_network<W: Write>(g: &SpatialNetwork, w: &mut W) -> io::Result<()> {
    let (positions, offsets, targets, weights) = g.clone().into_parts();
    let mut buf =
        Vec::with_capacity(16 + positions.len() * 16 + offsets.len() * 4 + targets.len() * 12);
    buf.put_slice(MAGIC);
    buf.put_u32_le(positions.len() as u32);
    buf.put_u32_le(targets.len() as u32);
    for p in &positions {
        buf.put_f64_le(p.x);
        buf.put_f64_le(p.y);
    }
    for &o in &offsets {
        buf.put_u32_le(o);
    }
    for &t in &targets {
        buf.put_u32_le(t);
    }
    for &wt in &weights {
        buf.put_f64_le(wt);
    }
    w.write_all(&buf)
}

/// Deserializes a network from `r`, validating all structural invariants.
pub fn read_network<R: Read>(r: &mut R) -> io::Result<SpatialNetwork> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    let mut buf = &data[..];
    let fail = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());

    if buf.remaining() < 16 {
        return Err(fail("truncated header"));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let n = buf.get_u32_le() as usize;
    let m = buf.get_u32_le() as usize;
    let need = n * 16 + (n + 1) * 4 + m * 12;
    if buf.remaining() != need {
        return Err(fail("length mismatch"));
    }
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        let x = buf.get_f64_le();
        let y = buf.get_f64_le();
        if !x.is_finite() || !y.is_finite() {
            return Err(fail("non-finite position"));
        }
        positions.push(Point::new(x, y));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(buf.get_u32_le());
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        targets.push(buf.get_u32_le());
    }
    let mut weights = Vec::with_capacity(m);
    for _ in 0..m {
        weights.push(buf.get_f64_le());
    }
    SpatialNetwork::from_parts(positions, offsets, targets, weights)
        .map_err(|e| fail(&format!("invalid network: {e}")))
}

/// Writes `g` to the file at `path`.
pub fn save<P: AsRef<Path>>(g: &SpatialNetwork, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_network(g, &mut w)?;
    w.flush()
}

/// Reads a network from the file at `path`.
pub fn load<P: AsRef<Path>>(path: P) -> io::Result<SpatialNetwork> {
    let mut r = BufReader::new(File::open(path)?);
    read_network(&mut r)
}

/// Writes `g` in the line-oriented text format (see [`read_text`]).
pub fn write_text<W: Write>(g: &SpatialNetwork, w: &mut W) -> io::Result<()> {
    writeln!(
        w,
        "# silc spatial network: {} vertices, {} directed edges",
        g.vertex_count(),
        g.edge_count()
    )?;
    for v in g.vertices() {
        let p = g.position(v);
        writeln!(w, "v {} {}", p.x, p.y)?;
    }
    for u in g.vertices() {
        for (v, wt) in g.out_edges(u) {
            writeln!(w, "e {} {} {}", u.0, v.0, wt)?;
        }
    }
    Ok(())
}

/// Reads the line-oriented text format, the drop-in path for external road
/// data (e.g. converted TIGER extracts):
///
/// ```text
/// # comment
/// v <x> <y>          — one vertex per line, ids assigned in order
/// e <u> <v> <weight> — one *directed* edge per line
/// ```
pub fn read_text<R: Read>(r: &mut R) -> io::Result<SpatialNetwork> {
    use crate::{NetworkBuilder, VertexId};
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let fail = |line_no: usize, msg: &str| {
        io::Error::new(io::ErrorKind::InvalidData, format!("line {line_no}: {msg}"))
    };
    let mut b = NetworkBuilder::new();
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("v") => {
                let x: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| fail(line_no, "bad vertex x"))?;
                let y: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| fail(line_no, "bad vertex y"))?;
                if !(x.is_finite() && y.is_finite()) {
                    return Err(fail(line_no, "non-finite vertex position"));
                }
                b.add_vertex(Point::new(x, y));
            }
            Some("e") => {
                let u: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| fail(line_no, "bad edge source"))?;
                let v: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| fail(line_no, "bad edge target"))?;
                let w: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| fail(line_no, "bad edge weight"))?;
                edges.push((u, v, w));
            }
            Some(other) => return Err(fail(line_no, &format!("unknown record '{other}'"))),
            None => {}
        }
    }
    let n = b.vertex_count() as u32;
    for (line_ish, (u, v, w)) in edges.into_iter().enumerate() {
        if u >= n || v >= n {
            return Err(fail(line_ish + 1, "edge endpoint out of range"));
        }
        if !w.is_finite() || w < 0.0 || u == v {
            return Err(fail(line_ish + 1, "invalid edge"));
        }
        b.add_edge(VertexId(u), VertexId(v), w);
    }
    Ok(b.build())
}

/// Writes `g` in the FMI-style plain-text exchange format (see
/// [`read_fmi`]). Coordinates are written as `lat lon`, i.e. `y` first.
pub fn write_fmi<W: Write>(g: &SpatialNetwork, w: &mut W) -> io::Result<()> {
    writeln!(w, "# FMI-style graph: node count, edge count, nodes, edges")?;
    writeln!(w, "{}", g.vertex_count())?;
    writeln!(w, "{}", g.edge_count())?;
    for v in g.vertices() {
        let p = g.position(v);
        writeln!(w, "{} {}", p.y, p.x)?;
    }
    for u in g.vertices() {
        for (v, wt) in g.out_edges(u) {
            writeln!(w, "{} {} {}", u.0, v.0, wt)?;
        }
    }
    Ok(())
}

/// Reads the FMI-style plain-text exchange format used by road-graph
/// tooling (node/edge counts first, then one node per line, then one
/// directed edge per line):
///
/// ```text
/// # comments and blank lines are skipped anywhere
/// <node count>
/// <edge count>
/// <lat> <lon>           — node lines, ids assigned in order
/// <src> <dst> <weight>  — directed edge lines
/// ```
///
/// `lat` maps to `y` and `lon` to `x`. Fails with `InvalidData` (and the
/// offending line number) on malformed counts, non-finite coordinates,
/// out-of-range endpoints, self-loops, non-positive or non-finite
/// weights, missing lines, or trailing garbage.
pub fn read_fmi<R: Read>(r: &mut R) -> io::Result<SpatialNetwork> {
    use crate::{NetworkBuilder, VertexId};
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let fail = |line_no: usize, msg: &str| {
        io::Error::new(io::ErrorKind::InvalidData, format!("line {line_no}: {msg}"))
    };
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let mut next = |what: &str| {
        lines.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected end of input: missing {what}"),
            )
        })
    };

    let (no, line) = next("node count line")?;
    let n: usize = line.parse().map_err(|_| fail(no, "bad node count"))?;
    let (no, line) = next("edge count line")?;
    let m: usize = line.parse().map_err(|_| fail(no, "bad edge count"))?;

    let mut b = NetworkBuilder::with_capacity(n, m);
    for _ in 0..n {
        let (no, line) = next("node line")?;
        let mut parts = line.split_whitespace();
        let lat: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| fail(no, "bad node latitude"))?;
        let lon: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| fail(no, "bad node longitude"))?;
        if !(lat.is_finite() && lon.is_finite()) {
            return Err(fail(no, "non-finite node position"));
        }
        if parts.next().is_some() {
            return Err(fail(no, "trailing fields on node line"));
        }
        b.add_vertex(Point::new(lon, lat));
    }
    for _ in 0..m {
        let (no, line) = next("edge line")?;
        let mut parts = line.split_whitespace();
        let src: u32 =
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| fail(no, "bad edge source"))?;
        let dst: u32 =
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| fail(no, "bad edge target"))?;
        let w: f64 =
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| fail(no, "bad edge weight"))?;
        if parts.next().is_some() {
            return Err(fail(no, "trailing fields on edge line"));
        }
        if src as usize >= n || dst as usize >= n {
            return Err(fail(no, "edge endpoint out of range"));
        }
        if src == dst {
            return Err(fail(no, "self-loop edge"));
        }
        if !w.is_finite() || w < 0.0 {
            return Err(fail(no, "invalid edge weight"));
        }
        b.add_edge(VertexId(src), VertexId(dst), w);
    }
    if let Some((no, _)) = lines.next() {
        return Err(fail(no, "trailing data after declared nodes and edges"));
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{grid_network, GridConfig};
    use crate::VertexId;

    #[test]
    fn roundtrip_in_memory() {
        let g = grid_network(&GridConfig { rows: 7, cols: 5, seed: 99, ..Default::default() });
        let mut buf = Vec::new();
        write_network(&g, &mut buf).unwrap();
        let g2 = read_network(&mut &buf[..]).unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.vertices() {
            assert_eq!(g.position(v), g2.position(v));
            let a: Vec<_> = g.out_edges(v).collect();
            let b: Vec<_> = g2.out_edges(v).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_on_disk() {
        let g = grid_network(&GridConfig { rows: 4, cols: 4, ..Default::default() });
        let dir = std::env::temp_dir().join("silc-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.bin");
        save(&g, &path).unwrap();
        let g2 = load(&path).unwrap();
        assert_eq!(g2.vertex_count(), 16);
        assert_eq!(g2.position(VertexId(3)), g.position(VertexId(3)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = b"NOTSILC!".to_vec();
        buf.extend_from_slice(&[0u8; 8]);
        assert!(read_network(&mut &buf[..]).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let g = grid_network(&GridConfig { rows: 3, cols: 3, ..Default::default() });
        let mut buf = Vec::new();
        write_network(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_network(&mut &buf[..]).is_err());
        assert!(read_network(&mut &buf[..4]).is_err());
    }

    #[test]
    fn tampered_target_rejected() {
        let g = grid_network(&GridConfig { rows: 2, cols: 2, ..Default::default() });
        let mut buf = Vec::new();
        write_network(&g, &mut buf).unwrap();
        // Targets start after header + positions + offsets; set one to 0xFFFFFFFF.
        let n = g.vertex_count();
        let off = 16 + n * 16 + (n + 1) * 4;
        buf[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_network(&mut &buf[..]).is_err());
    }

    #[test]
    fn empty_network_roundtrips() {
        let g = crate::NetworkBuilder::new().build();
        let mut buf = Vec::new();
        write_network(&g, &mut buf).unwrap();
        let g2 = read_network(&mut &buf[..]).unwrap();
        assert_eq!(g2.vertex_count(), 0);
    }

    #[test]
    fn text_roundtrip() {
        let g = grid_network(&GridConfig { rows: 5, cols: 6, seed: 2, ..Default::default() });
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text(&mut &buf[..]).unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.vertices() {
            assert_eq!(g.position(v), g2.position(v));
            let a: Vec<_> = g.out_edges(v).collect();
            let b: Vec<_> = g2.out_edges(v).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn text_format_parses_hand_written_input() {
        let text =
            "# a triangle\nv 0 0\nv 1 0\nv 0 1\ne 0 1 1.0\ne 1 0 1.0\ne 1 2 1.5\ne 2 1 1.5\n";
        let g = read_text(&mut text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.edge_weight(VertexId(1), VertexId(2)), Some(1.5));
    }

    #[test]
    fn text_format_rejects_garbage() {
        for bad in [
            "v 0\n",                    // missing coordinate
            "e 0 1 2.0\n",              // edge before any vertex
            "v 0 0\nv 1 1\ne 0 5 1\n",  // endpoint out of range
            "v 0 0\nx what\n",          // unknown record
            "v 0 0\nv 1 1\ne 0 1 -3\n", // negative weight
        ] {
            assert!(read_text(&mut bad.as_bytes()).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn fmi_roundtrip() {
        let g = grid_network(&GridConfig { rows: 6, cols: 5, seed: 8, ..Default::default() });
        let mut buf = Vec::new();
        write_fmi(&g, &mut buf).unwrap();
        let g2 = read_fmi(&mut &buf[..]).unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.vertices() {
            assert_eq!(g.position(v), g2.position(v), "lat/lon must map back to y/x");
            let a: Vec<_> = g.out_edges(v).collect();
            let b: Vec<_> = g2.out_edges(v).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn fmi_parses_hand_written_input() {
        let text = "# tiny graph\n\n3\n4\n50.1 8.6\n50.2 8.7\n50.3 8.8\n\
                    0 1 2.5\n1 0 2.5\n1 2 1.25\n2 1 1.25\n";
        let g = read_fmi(&mut text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 4);
        // lat is y, lon is x.
        assert_eq!(g.position(VertexId(0)), silc_geom::Point::new(8.6, 50.1));
        assert_eq!(g.edge_weight(VertexId(1), VertexId(2)), Some(1.25));
    }

    #[test]
    fn fmi_rejects_malformed_input() {
        for bad in [
            "",                                  // empty
            "2\n",                               // missing edge count
            "x\n0\n",                            // bad node count
            "2\ny\n0 0\n1 1\n",                  // bad edge count
            "2\n0\n0 0\n",                       // too few node lines
            "2\n1\n0 0\n1 1\n",                  // too few edge lines
            "2\n0\n0\n1 1\n",                    // node line missing a field
            "2\n0\n0 0 9\n1 1\n",                // node line trailing field
            "2\n0\nnan 0\n1 1\n",                // non-finite coordinate
            "2\n1\n0 0\n1 1\n0 5 1\n",           // endpoint out of range
            "2\n1\n0 0\n1 1\n0 0 1\n",           // self-loop
            "2\n1\n0 0\n1 1\n0 1 -2\n",          // negative weight
            "2\n1\n0 0\n1 1\n0 1 inf\n",         // non-finite weight
            "2\n1\n0 0\n1 1\n0 1 1 9\n",         // edge line trailing field
            "2\n1\n0 0\n1 1\n0 1 1\nleftover\n", // trailing data
        ] {
            assert!(read_fmi(&mut bad.as_bytes()).is_err(), "accepted: {bad:?}");
        }
    }
}
