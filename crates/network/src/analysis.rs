//! Connectivity analysis and component extraction.

use crate::{NetworkBuilder, SpatialNetwork, VertexId};
use std::collections::VecDeque;

/// A disjoint-set (union-find) forest with path halving and union by size.
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets { parent: (0..n as u32).collect(), size: vec![1; n], components: n }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

/// Tests whether every vertex can reach every other vertex following
/// directed edges (strong connectivity): forward BFS plus BFS on the
/// reversed graph.
pub fn is_strongly_connected(g: &SpatialNetwork) -> bool {
    let n = g.vertex_count();
    if n == 0 {
        return true;
    }
    if bfs_reach_count(g, VertexId(0), false) != n {
        return false;
    }
    bfs_reach_count(g, VertexId(0), true) == n
}

fn bfs_reach_count(g: &SpatialNetwork, start: VertexId, reversed: bool) -> usize {
    let n = g.vertex_count();
    // For the reversed direction build a reverse adjacency once.
    let rev: Option<Vec<Vec<u32>>> = if reversed {
        let mut r = vec![Vec::new(); n];
        for u in g.vertices() {
            for (v, _) in g.out_edges(u) {
                r[v.index()].push(u.0);
            }
        }
        Some(r)
    } else {
        None
    };
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start.0);
    let mut count = 0usize;
    while let Some(u) = queue.pop_front() {
        count += 1;
        match &rev {
            Some(r) => {
                for &v in &r[u as usize] {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        queue.push_back(v);
                    }
                }
            }
            None => {
                for (v, _) in g.out_edges(VertexId(u)) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        queue.push_back(v.0);
                    }
                }
            }
        }
    }
    count
}

/// Tests whether the network is symmetric: for every directed edge
/// `(u, v, w)` the reverse edge `(v, u, w)` exists with the same weight.
/// On symmetric networks a forward SSSP from `v` also yields the
/// distances *to* `v`, so precompute passes that need both directions
/// (the frontier-distance tier) can run and store half the work.
pub fn is_symmetric(g: &SpatialNetwork) -> bool {
    g.vertices().all(|u| g.out_edges(u).all(|(v, w)| g.edge_weight(v, u) == Some(w)))
}

/// Extracts the largest weakly-connected component as a new network.
///
/// Returns the subnetwork and, for each new vertex id `i`, the original id
/// `mapping[i]`. For symmetric networks (all our generators) weak and strong
/// connectivity coincide.
pub fn largest_component(g: &SpatialNetwork) -> (SpatialNetwork, Vec<VertexId>) {
    let n = g.vertex_count();
    if n == 0 {
        return (NetworkBuilder::new().build(), Vec::new());
    }
    let mut sets = DisjointSets::new(n);
    for u in g.vertices() {
        for (v, _) in g.out_edges(u) {
            sets.union(u.0, v.0);
        }
    }
    // Find the root with the largest membership.
    let mut counts = std::collections::HashMap::new();
    for v in 0..n as u32 {
        *counts.entry(sets.find(v)).or_insert(0usize) += 1;
    }
    let (&best_root, _) = counts
        .iter()
        .max_by_key(|&(root, count)| (*count, std::cmp::Reverse(*root)))
        .expect("non-empty network");

    let mut new_id = vec![u32::MAX; n];
    let mut mapping = Vec::new();
    for v in 0..n as u32 {
        if sets.find(v) == best_root {
            new_id[v as usize] = mapping.len() as u32;
            mapping.push(VertexId(v));
        }
    }
    let mut b = NetworkBuilder::with_capacity(mapping.len(), g.edge_count());
    for &old in &mapping {
        b.add_vertex(g.position(old));
    }
    for &old in &mapping {
        let u = new_id[old.index()];
        for (v, w) in g.out_edges(old) {
            let nv = new_id[v.index()];
            if nv != u32::MAX {
                b.add_edge(VertexId(u), VertexId(nv), w);
            }
        }
    }
    (b.build(), mapping)
}

/// Summary statistics of a network, used by the experiment harness to report
/// workload characteristics alongside results.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    pub vertices: usize,
    pub directed_edges: usize,
    pub min_out_degree: usize,
    pub max_out_degree: usize,
    pub mean_out_degree: f64,
    /// Undirected edge count divided by vertex count (the paper's network
    /// has m/n ≈ 1.25).
    pub edge_vertex_ratio: f64,
}

/// Computes [`NetworkStats`] for `g`.
pub fn stats(g: &SpatialNetwork) -> NetworkStats {
    let n = g.vertex_count();
    let mut min_d = usize::MAX;
    let mut max_d = 0usize;
    for v in g.vertices() {
        let d = g.out_degree(v);
        min_d = min_d.min(d);
        max_d = max_d.max(d);
    }
    if n == 0 {
        min_d = 0;
    }
    NetworkStats {
        vertices: n,
        directed_edges: g.edge_count(),
        min_out_degree: min_d,
        max_out_degree: max_d,
        mean_out_degree: if n == 0 { 0.0 } else { g.edge_count() as f64 / n as f64 },
        edge_vertex_ratio: if n == 0 { 0.0 } else { g.edge_count() as f64 / 2.0 / n as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_geom::Point;

    fn two_islands() -> SpatialNetwork {
        let mut b = NetworkBuilder::new();
        // Island A: 0-1-2 (triangle), island B: 3-4.
        let p: Vec<_> = (0..5).map(|i| b.add_vertex(Point::new(i as f64, 0.0))).collect();
        b.add_edge_sym(p[0], p[1], 1.0);
        b.add_edge_sym(p[1], p[2], 1.0);
        b.add_edge_sym(p[0], p[2], 1.0);
        b.add_edge_sym(p[3], p[4], 1.0);
        b.build()
    }

    #[test]
    fn union_find_basics() {
        let mut s = DisjointSets::new(4);
        assert_eq!(s.component_count(), 4);
        assert!(s.union(0, 1));
        assert!(!s.union(1, 0));
        assert!(s.union(2, 3));
        assert_eq!(s.component_count(), 2);
        assert_eq!(s.find(0), s.find(1));
        assert_ne!(s.find(0), s.find(2));
        s.union(1, 3);
        assert_eq!(s.component_count(), 1);
    }

    #[test]
    fn strong_connectivity_detects_islands() {
        assert!(!is_strongly_connected(&two_islands()));
        let (comp, _) = largest_component(&two_islands());
        assert!(is_strongly_connected(&comp));
    }

    #[test]
    fn one_way_edge_breaks_strong_connectivity() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge(u, v, 1.0);
        assert!(!is_strongly_connected(&b.build()));
    }

    #[test]
    fn largest_component_picks_bigger_island() {
        let (comp, mapping) = largest_component(&two_islands());
        assert_eq!(comp.vertex_count(), 3);
        assert_eq!(comp.edge_count(), 6);
        let originals: Vec<u32> = mapping.iter().map(|v| v.0).collect();
        assert_eq!(originals, vec![0, 1, 2]);
        // Positions preserved.
        assert_eq!(comp.position(VertexId(1)), Point::new(1.0, 0.0));
    }

    #[test]
    fn largest_component_of_empty() {
        let (comp, mapping) = largest_component(&NetworkBuilder::new().build());
        assert_eq!(comp.vertex_count(), 0);
        assert!(mapping.is_empty());
    }

    #[test]
    fn stats_of_islands() {
        let s = stats(&two_islands());
        assert_eq!(s.vertices, 5);
        assert_eq!(s.directed_edges, 8);
        assert_eq!(s.min_out_degree, 1);
        assert_eq!(s.max_out_degree, 2);
        assert!((s.edge_vertex_ratio - 0.8).abs() < 1e-12);
    }
}
