//! A disk-resident spatial network: adjacency lists served from disk pages
//! through an LRU buffer pool.
//!
//! The paper's evaluation is disk-resident end to end: the competitors INE
//! and IER traverse the *network* from disk exactly as SILC reads its
//! quadtrees from disk. This module provides that substrate — the vertex
//! directory (offsets, positions) stays in memory like any index's root
//! metadata, while the `O(m)` adjacency records are fetched page by page.
//!
//! ## File layout
//!
//! ```text
//! header    magic "SILCPNET", n, m, edge-region offset
//! positions n × (f64, f64)
//! offsets   (n+1) × u32
//! edges     m × (target u32 | weight f64)   — 12 bytes per record
//! ```

use crate::{SpatialNetwork, VertexId};
use bytes::{Buf, BufMut};
use silc_geom::Point;
use silc_storage::{BufferPool, FilePageStore, PageId, PageStore, PAGE_SIZE};
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"SILCPNET";
/// Bytes per serialized edge record.
pub const EDGE_BYTES: usize = 12;

/// Serializes `g` into a page file at `path` (see the module docs for the
/// layout).
pub fn write_paged<P: AsRef<Path>>(g: &SpatialNetwork, path: P) -> io::Result<()> {
    let n = g.vertex_count();
    let m = g.edge_count();
    let header_len = 8 + 4 + 4 + 8;
    let meta_len = header_len + n * 16 + (n + 1) * 4;
    let mut buf = Vec::with_capacity(meta_len + m * EDGE_BYTES);
    buf.put_slice(MAGIC);
    buf.put_u32_le(n as u32);
    buf.put_u32_le(m as u32);
    buf.put_u64_le(meta_len as u64);
    for v in g.vertices() {
        let p = g.position(v);
        buf.put_f64_le(p.x);
        buf.put_f64_le(p.y);
    }
    let mut offset = 0u32;
    buf.put_u32_le(0);
    for v in g.vertices() {
        offset += g.out_degree(v) as u32;
        buf.put_u32_le(offset);
    }
    debug_assert_eq!(buf.len(), meta_len);
    for u in g.vertices() {
        for (v, w) in g.out_edges(u) {
            buf.put_u32_le(v.0);
            buf.put_f64_le(w);
        }
    }
    FilePageStore::create(path, &buf)?;
    Ok(())
}

/// A spatial network whose adjacency lists live on disk behind an LRU
/// buffer pool.
pub struct PagedNetwork {
    positions: Vec<Point>,
    offsets: Vec<u32>,
    edges_base: u64,
    pool: BufferPool<FilePageStore>,
}

impl PagedNetwork {
    /// Opens a paged network file with a buffer pool holding
    /// `cache_fraction` of its pages (the paper uses 0.05).
    pub fn open<P: AsRef<Path>>(path: P, cache_fraction: f64) -> io::Result<Self> {
        let store = FilePageStore::open(&path)?;
        let fail = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let read_bytes = |from: usize, len: usize| -> io::Result<Vec<u8>> {
            let mut out = Vec::with_capacity(len);
            let mut page = from / PAGE_SIZE;
            let mut off = from % PAGE_SIZE;
            while out.len() < len {
                let data = store.read_page(PageId(page as u64))?;
                let take = (len - out.len()).min(PAGE_SIZE - off);
                out.extend_from_slice(&data[off..off + take]);
                page += 1;
                off = 0;
            }
            Ok(out)
        };
        let header_len = 8 + 4 + 4 + 8;
        if (store.page_count() as usize) * PAGE_SIZE < header_len {
            return Err(fail("file too small"));
        }
        let header = read_bytes(0, header_len)?;
        let mut h = &header[..];
        let mut magic = [0u8; 8];
        h.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(fail("bad magic"));
        }
        let n = h.get_u32_le() as usize;
        let m = h.get_u32_le() as usize;
        let edges_base = h.get_u64_le();
        if edges_base + (m * EDGE_BYTES) as u64 > store.page_count() * PAGE_SIZE as u64 {
            return Err(fail("edge region extends past end of file"));
        }
        let meta = read_bytes(header_len, n * 16 + (n + 1) * 4)?;
        let mut r = &meta[..];
        let mut positions = Vec::with_capacity(n);
        for _ in 0..n {
            positions.push(Point::new(r.get_f64_le(), r.get_f64_le()));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            offsets.push(r.get_u32_le());
        }
        if offsets[n] as usize != m {
            return Err(fail("offset table does not match edge count"));
        }
        let pool = BufferPool::with_fraction(store, cache_fraction);
        Ok(PagedNetwork { positions, offsets, edges_base, pool })
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// Position of vertex `v` (the spatial directory stays in memory).
    pub fn position(&self, v: VertexId) -> Point {
        self.positions[v.index()]
    }

    /// Reads the adjacency list of `v` from disk pages — the
    /// panic-at-the-boundary wrapper around [`Self::try_out_edges`] for
    /// the INE/IER baselines, whose scans treat a vanished network file
    /// as fatal.
    ///
    /// # Panics
    /// Panics on I/O errors; use [`Self::try_out_edges`] to handle them.
    pub fn out_edges(&self, v: VertexId, out: &mut Vec<(VertexId, f64)>) {
        self.try_out_edges(v, out).unwrap_or_else(|e| panic!("network page read failed: {e}"))
    }

    /// Fallible adjacency read: I/O trouble comes back as the error (the
    /// scratch vector is then left cleared, holding no partial list).
    pub fn try_out_edges(&self, v: VertexId, out: &mut Vec<(VertexId, f64)>) -> io::Result<()> {
        out.clear();
        let start = self.offsets[v.index()] as u64;
        let end = self.offsets[v.index() + 1] as u64;
        if start == end {
            return Ok(());
        }
        let byte_lo = self.edges_base + start * EDGE_BYTES as u64;
        let byte_hi = self.edges_base + end * EDGE_BYTES as u64;
        let page_lo = byte_lo / PAGE_SIZE as u64;
        let page_hi = (byte_hi - 1) / PAGE_SIZE as u64;
        // Gather the raw records across the page range.
        let mut raw = Vec::with_capacity((byte_hi - byte_lo) as usize);
        for page in page_lo..=page_hi {
            let data = self.pool.get(PageId(page))?;
            let lo = byte_lo.max(page * PAGE_SIZE as u64) - page * PAGE_SIZE as u64;
            let hi = byte_hi.min((page + 1) * PAGE_SIZE as u64) - page * PAGE_SIZE as u64;
            raw.extend_from_slice(&data[lo as usize..hi as usize]);
        }
        let mut r = &raw[..];
        for _ in start..end {
            let target = r.get_u32_le();
            let weight = r.get_f64_le();
            out.push((VertexId(target), weight));
        }
        Ok(())
    }

    /// Replaces the pool's retry policy for transient store faults.
    pub fn set_retry_policy(&mut self, retry: silc_storage::RetryPolicy) {
        self.pool.set_retry_policy(retry);
    }

    /// I/O counters of the buffer pool.
    pub fn io_stats(&self) -> silc_storage::IoStats {
        self.pool.stats()
    }

    /// Zeroes the I/O counters.
    pub fn reset_io_stats(&self) {
        self.pool.reset_stats()
    }

    /// Drops all cached pages.
    pub fn clear_cache(&self) {
        self.pool.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{road_network, RoadConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("silc-paged-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn paged_adjacency_matches_memory() {
        let g = road_network(&RoadConfig { vertices: 120, seed: 4, ..Default::default() });
        let path = tmp("adj.pnet");
        write_paged(&g, &path).unwrap();
        let p = PagedNetwork::open(&path, 1.0).unwrap();
        assert_eq!(p.vertex_count(), g.vertex_count());
        let mut buf = Vec::new();
        for v in g.vertices() {
            assert_eq!(p.position(v), g.position(v));
            p.out_edges(v, &mut buf);
            let want: Vec<_> = g.out_edges(v).collect();
            assert_eq!(buf, want, "adjacency of {v} differs");
        }
        assert!(p.io_stats().requests() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn small_cache_pays_for_scans() {
        let g = road_network(&RoadConfig { vertices: 300, seed: 5, ..Default::default() });
        let path = tmp("scan.pnet");
        write_paged(&g, &path).unwrap();
        let p = PagedNetwork::open(&path, 0.05).unwrap();
        let mut buf = Vec::new();
        for v in g.vertices() {
            p.out_edges(v, &mut buf);
        }
        let first = p.io_stats();
        assert!(first.misses > 0);
        // A second full scan in the same order re-misses (sequential flood
        // beats a 5% LRU).
        p.reset_io_stats();
        for v in g.vertices() {
            p.out_edges(v, &mut buf);
        }
        assert!(p.io_stats().misses > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_files_rejected() {
        let path = tmp("bad.pnet");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(PagedNetwork::open(&path, 0.5).is_err());
        std::fs::remove_file(&path).ok();
    }
}
