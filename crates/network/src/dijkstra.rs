//! Dijkstra's algorithm: full SSSP with first-hop extraction, point-to-point
//! search, a step-wise expander, and the reusable [`SsspWorkspace`] that
//! makes repeated-SSSP precomputation allocation-free.
//!
//! The paper's motivating observation (p.3/p.7) is that Dijkstra *visits far
//! too many vertices*: e.g. 3191 of 4233 vertices to find a 76-edge path.
//! Every entry point here therefore reports how many vertices it settled so
//! the experiments can reproduce that comparison.
//!
//! # One-shot vs. reused searches
//!
//! [`full_sssp`] allocates fresh result vectors and is the right call for a
//! single search (tests, one query). Anything that runs *many* searches —
//! the SILC index builder runs one per vertex — should create one
//! [`SsspWorkspace`] per worker thread and call [`full_sssp_into`] in a
//! loop: the workspace owns every buffer (distances, parents, first hops,
//! the priority structure) and resets between runs in O(touched), so no
//! O(n) allocation or zeroing happens per source.
//!
//! # The two-phase engine
//!
//! A classic Dijkstra loop is a serial dependency chain — each pop waits on
//! the relaxations of the previous settle, so the CPU cannot overlap the
//! (random-access) distance gathers of consecutive settles. The workspace
//! engine therefore splits the computation:
//!
//! 1. **Distances** are computed with bucketed label-correcting relaxation
//!    (Δ-stepping with exact results for any bucket width): buckets are
//!    drained in batches whose relaxations are mutually independent, which
//!    restores instruction-level parallelism.
//! 2. **Parents, first hops and the settle order** are then *derived* from
//!    the final distances: Dijkstra's parent of `x` is exactly the
//!    in-neighbor `p` minimizing `(dist(p), p)` among those with
//!    `dist(p) + w(p,x) == dist(x)` and `(dist(p), p) < (dist(x), x)`.
//!
//! The derivation is provably identical to the textbook loop *unless* some
//! improving relaxation satisfies `d + w == d` in floating point (a zero or
//! denormal-small weight). The engine detects that degeneracy during phase
//! 1 and transparently restarts with a bit-faithful classic heap loop, so
//! results — including tie-breaking — always match [`full_sssp`]'s
//! documented semantics: vertices settle in ascending `(distance, id)`
//! order.

use crate::{SpatialNetwork, VertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Sentinel for "no vertex" in parent arrays.
pub const NO_VERTEX: u32 = u32::MAX;
/// Sentinel for "no first hop" (the source itself, or unreachable).
pub const NO_HOP: u32 = u32::MAX;

// ---------------------------------------------------------------------
// Packed keys and the shared min-heap
// ---------------------------------------------------------------------

/// Packs a non-negative finite distance and a vertex id into one ordered
/// integer: the IEEE-754 bit pattern of a non-negative `f64` is
/// order-preserving, so `(dist, vertex)` lexicographic order equals plain
/// `u128` order. One integer comparison replaces a float compare plus a
/// tie-break chain in every heap sift step.
#[inline(always)]
pub(crate) fn pack(dist: f64, vertex: u32) -> u128 {
    debug_assert!(dist >= 0.0 && dist.is_finite());
    ((dist.to_bits() as u128) << 32) | vertex as u128
}

#[inline(always)]
fn unpack(key: u128) -> (f64, u32) {
    (f64::from_bits((key >> 32) as u64), key as u32)
}

/// A min-heap over packed `(dist, vertex)` keys, used by the classic-order
/// fallback loop and by A*. Pop order over distinct keys is the total
/// `u128` order, so swapping the backing structure changes performance,
/// never results.
#[derive(Debug, Default)]
pub(crate) struct MinHeap {
    data: BinaryHeap<std::cmp::Reverse<u128>>,
}

impl MinHeap {
    pub(crate) fn clear(&mut self) {
        self.data.clear();
    }

    #[inline(always)]
    pub(crate) fn push(&mut self, key: u128) {
        self.data.push(std::cmp::Reverse(key));
    }

    #[inline(always)]
    pub(crate) fn pop(&mut self) -> Option<u128> {
        self.data.pop().map(|r| r.0)
    }
}

// ---------------------------------------------------------------------
// The reusable workspace
// ---------------------------------------------------------------------

/// Number of buckets in the phase-1 ring (must be a power of two). The
/// bucket width is chosen so the live key window (≤ the maximum edge
/// weight) covers at most a quarter of the ring — wrap-around can then
/// never alias an occupied bucket.
const RING_BITS: u32 = 10;
const RING_SLOTS: usize = 1 << RING_BITS;

/// Reusable single-source shortest-path state: distance/parent/first-hop
/// buffers plus the priority structures, reset in O(touched) between runs.
///
/// # When to reuse vs. one-shot
///
/// Create **one workspace per worker thread** and keep it for the worker's
/// whole lifetime whenever searches repeat — index precomputation, oracle
/// construction, all-pairs experiments. The buffers grow to the largest
/// graph seen and are never shrunk or re-zeroed; per-run reset cost is
/// proportional to what the previous run touched, not to the graph. For a
/// single search, [`full_sssp`] (which creates a throwaway workspace
/// internally) reads better and costs the same.
///
/// A workspace is freely reusable across *different* graphs and sources;
/// the between-runs invariant (`dist[v] = ∞` everywhere) makes stale state
/// from earlier runs unobservable.
#[derive(Debug, Default)]
pub struct SsspWorkspace {
    /// Tentative/final distances. Invariant between runs: all `∞` — the
    /// relax loop's working set stays as small as possible (8 bytes per
    /// vertex), which keeps the random gathers L1-resident far longer.
    dist: Vec<f64>,
    /// Parent on the shortest-path tree; valid only where `dist` is finite.
    parent: Vec<u32>,
    /// First-hop slot; valid only where `dist` is finite.
    hop: Vec<u32>,
    /// First-touch log of the current run: every vertex whose distance
    /// left `∞`, recorded once, with `dirty_len` the live prefix (the
    /// vector's full length is preallocated capacity). Restores the `dist`
    /// invariant at the next `begin`.
    dirty: Vec<u32>,
    dirty_len: usize,
    /// Per-run marks: `stamp[v] == generation` records a settled vertex in
    /// phase 1 (and the settled set in A*), `generation + 1` marks a
    /// resolved first hop in phase 2.
    stamp: Vec<u32>,
    generation: u32,
    /// Heap for the classic fallback and A*.
    heap: MinHeap,
    /// Phase-1 bucket ring and its occupancy bitmap.
    ring: Vec<Vec<u32>>,
    occ: [u64; RING_SLOTS / 64],
    /// Engine scratch: the bucket batch being drained, the settled-vertex
    /// record, the tie log (manual-length buffer like `dirty`), and the
    /// parent-chain stack of the hop resolution.
    drain: Vec<u32>,
    settled_ids: Vec<u32>,
    tie_ids: Vec<u32>,
    chain: Vec<u32>,
}

impl SsspWorkspace {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for graphs of `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        let mut ws = Self::default();
        ws.grow(n, n.saturating_mul(4));
        ws
    }

    fn grow(&mut self, n: usize, m: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, NO_VERTEX);
            self.hop.resize(n, NO_HOP);
            self.stamp.resize(n, 0);
        }
        // Improvement log: at most one entry per relaxation plus the source.
        if self.dirty.len() < m + 1 {
            self.dirty.resize(m + 1, 0);
        }
    }

    /// Starts a new run: restores the `dist = ∞` invariant over the
    /// previous run's improvements, grows buffers, bumps the generation.
    fn begin(&mut self, g: &SpatialNetwork) -> u32 {
        for &v in &self.dirty[..self.dirty_len] {
            self.dist[v as usize] = f64::INFINITY;
        }
        self.dirty_len = 0;
        self.heap.clear();
        self.grow(g.vertex_count(), g.edge_count());
        if self.generation >= u32::MAX - 2 {
            // Stamp wrap-around: one full re-zeroing every ~2 billion runs.
            for s in &mut self.stamp {
                *s = 0;
            }
            self.generation = 0;
        }
        // Each run owns two marks: `gen` (settled) and `gen + 1` (resolved).
        self.generation += 2;
        self.generation
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Full single-source shortest paths from `source`, with first-hop colors.
///
/// Runs in `O(m log n)`. First hops satisfy the recursion the SILC path
/// retrieval relies on: if `t` is the first hop of `v`, then
/// `d(s,v) = w(s,t) + d(t,v)`. Ties are resolved as if vertices settle in
/// ascending `(distance, id)` order.
///
/// One-shot convenience over [`full_sssp_into`]: creates a throwaway
/// workspace and materializes owned result vectors. Repeated-SSSP callers
/// should hold a [`SsspWorkspace`] instead.
pub fn full_sssp(g: &SpatialNetwork, source: VertexId) -> SsspTree {
    let mut ws = SsspWorkspace::new();
    full_sssp_into(g, source, &mut ws).to_tree()
}

/// Full single-source shortest paths into a reusable workspace.
///
/// Identical results to [`full_sssp`] — the returned [`SsspRun`] is a
/// borrowed view of the workspace buffers instead of owned vectors, and no
/// per-run O(n) allocation or zeroing happens. See [`SsspWorkspace`] for
/// the reuse guidelines.
pub fn full_sssp_into<'ws>(
    g: &SpatialNetwork,
    source: VertexId,
    ws: &'ws mut SsspWorkspace,
) -> SsspRun<'ws> {
    full_sssp_visit(g, source, ws, |_, _, _| {})
}

/// [`full_sssp_into`] with a per-vertex callback: `visit(v, dist,
/// first_hop)` is invoked exactly once for every reached vertex, with its
/// final distance and first-hop color (the source gets [`NO_HOP`]).
///
/// The visit *order* is unspecified — the two-phase engine emits in bucket
/// discovery order, the classic path in settle order. Consumers that need
/// an order sort the (vertex, dist) pairs themselves; the SILC index
/// builder does not, it scatters colors straight into Morton-ordered
/// buffers without an intermediate pass.
pub fn full_sssp_visit<'ws, F: FnMut(VertexId, f64, u32)>(
    g: &SpatialNetwork,
    source: VertexId,
    ws: &'ws mut SsspWorkspace,
    mut visit: F,
) -> SsspRun<'ws> {
    let gen = ws.begin(g);
    let n = g.vertex_count();

    // Bucket width: ~2× the mean weight balances bucket occupancy against
    // intra-bucket correction cascades; the max-weight floor guarantees the
    // ring covers the live window with 4× margin.
    let delta = (4.0 * g.mean_weight()).max(g.max_weight() / (RING_SLOTS as f64 / 4.0));
    // Bucket indices must stay well below u64 saturation (monotonicity of
    // the f64→u64 cast breaks there). n·w_max bounds every finite distance.
    let bucket_bound = n as f64 * g.max_weight() / delta;
    let visited = if delta.is_finite() && delta > 0.0 && bucket_bound < 2f64.powi(60) {
        match two_phase_sssp(g, source, ws, gen, delta, &mut visit) {
            Some(v) => v,
            // Degenerate tie detected: restart classic, re-emitting visits.
            None => classic_sssp(g, source, ws, &mut visit),
        }
    } else {
        classic_sssp(g, source, ws, &mut visit)
    };

    SsspRun { dist: &ws.dist[..n], parent: &ws.parent[..n], hop: &ws.hop[..n], source, visited }
}

// ---------------------------------------------------------------------
// The classic heap loop (fallback + reference semantics)
// ---------------------------------------------------------------------

/// Textbook Dijkstra over the workspace buffers: lazy-deletion heap over
/// packed keys, settle order ascending `(dist, id)`. This is the semantic
/// reference the two-phase path must (and does) reproduce.
fn classic_sssp<F: FnMut(VertexId, f64, u32)>(
    g: &SpatialNetwork,
    source: VertexId,
    ws: &mut SsspWorkspace,
    visit: &mut F,
) -> usize {
    // The fast path may have run first: restore the dist invariant it broke.
    for &v in &ws.dirty[..ws.dirty_len] {
        ws.dist[v as usize] = f64::INFINITY;
    }
    ws.dirty_len = 0;
    ws.heap.clear();

    let dist = &mut ws.dist[..];
    let parent = &mut ws.parent[..];
    let hop = &mut ws.hop[..];
    // First-touch appends only: at most one log entry per reached vertex,
    // which `grow` (≥ m + 1) always covers.
    let dirty = &mut ws.dirty;
    let mut dlen = ws.dirty_len;
    let heap = &mut ws.heap;

    let si = source.index();
    dist[si] = 0.0;
    parent[si] = NO_VERTEX;
    hop[si] = NO_HOP;
    dirty[dlen] = source.0;
    dlen += 1;
    heap.push(pack(0.0, source.0));
    let mut visited = 0usize;

    while let Some(key) = heap.pop() {
        let (d, u) = unpack(key);
        let ui = u as usize;
        // A popped entry is stale iff a strictly better distance has been
        // written since it was pushed; equal (dist, vertex) keys are never
        // pushed twice because relaxations require strict improvement.
        if d.to_bits() != dist[ui].to_bits() {
            continue;
        }
        visited += 1;
        let h = hop[ui];
        visit(VertexId(u), d, h);
        // Settled targets need no explicit skip: their distance is final
        // and ≤ nd, so the improvement test fails on its own.
        let (targets, weights) = g.out_edge_slices(VertexId(u));
        if u == source.0 {
            for (slot, (&v, &w)) in targets.iter().zip(weights).enumerate() {
                let vi = v as usize;
                let nd = d + w;
                if nd < dist[vi] {
                    if dist[vi].is_infinite() {
                        dirty[dlen] = v;
                        dlen += 1;
                    }
                    dist[vi] = nd;
                    parent[vi] = u;
                    hop[vi] = slot as u32;
                    heap.push(pack(nd, v));
                }
            }
        } else {
            for (&v, &w) in targets.iter().zip(weights) {
                let vi = v as usize;
                let nd = d + w;
                if nd < dist[vi] {
                    if dist[vi].is_infinite() {
                        dirty[dlen] = v;
                        dlen += 1;
                    }
                    dist[vi] = nd;
                    parent[vi] = u;
                    hop[vi] = h;
                    heap.push(pack(nd, v));
                }
            }
        }
    }
    ws.dirty_len = dlen;
    visited
}

// ---------------------------------------------------------------------
// The two-phase engine
// ---------------------------------------------------------------------

/// Phase 1 (bucketed label-correcting distances + execution-order parents)
/// followed by phase 2 (tie canonicalization and first-hop resolution).
/// Returns `None` when a degenerate relaxation (`d + w == d`) is detected —
/// the caller then restarts on [`classic_sssp`], whose tie semantics are
/// authoritative in that regime. Visits are only emitted after the
/// degeneracy check, so every reached vertex is visited exactly once.
///
/// Why the results equal the classic loop's, bit for bit:
///
/// * Distances: bucketed relaxation to a fixpoint is exact for any bucket
///   width (all relaxations originate from keys at or beyond the current
///   bucket start, so completed buckets are final).
/// * Parents: the last writer of `dist[x]` reached exactly `dist[x]`, so it
///   is an *achiever* (`dist[p] + w(p,x) == dist[x]`). When the achiever is
///   unique it is also Dijkstra's parent. When several achieve equality, a
///   relaxation with `nd == dist[x]` must have occurred — recorded in the
///   tie list — and the canonical parent (the achiever settling first in
///   Dijkstra, i.e. minimal `(dist, id)` among achievers below `x`) is
///   restored by an in-edge scan over exactly those vertices.
/// * First hops: `hop(x) = hop(parent(x))` (the adjacency slot for direct
///   children of the source), resolved by memoized chain-walking.
///
/// The only regime where the derivation breaks is an equality chain whose
/// achiever does not settle strictly earlier (`d + w == d` for some
/// improving or tying relaxation) — precisely what the degeneracy flag
/// catches during phase 1.
fn two_phase_sssp<F: FnMut(VertexId, f64, u32)>(
    g: &SpatialNetwork,
    source: VertexId,
    ws: &mut SsspWorkspace,
    gen: u32,
    delta: f64,
    visit: &mut F,
) -> Option<usize> {
    let scale = 1.0 / delta;
    if ws.ring.is_empty() {
        ws.ring = (0..RING_SLOTS).map(|_| Vec::new()).collect();
    }
    let n = g.vertex_count();
    let dist = &mut ws.dist[..n];
    let parent = &mut ws.parent[..];
    let hop = &mut ws.hop[..];
    let stamp = &mut ws.stamp[..];
    let dirty = &mut ws.dirty;
    let mut dlen = 0usize;
    let ring = &mut ws.ring[..];
    let occ = &mut ws.occ;
    let drain = &mut ws.drain;
    let settled = &mut ws.settled_ids;
    let ties = &mut ws.tie_ids;
    let chain = &mut ws.chain;
    let mask = (RING_SLOTS - 1) as u64;

    let si = source.index();
    dist[si] = 0.0;
    parent[si] = NO_VERTEX;
    hop[si] = NO_HOP;
    dirty[dlen] = source.0;
    dlen += 1;
    ring[0].push(source.0);
    occ[0] |= 1;
    let mut remaining = 1usize; // queued-but-undrained bucket entries
    let mut degenerate = false;
    let mut cur = 0u64; // absolute index of the bucket being located

    // --- phase 1 ---
    while remaining > 0 {
        // Locate the next occupied bucket (bitmap word scan).
        let bucket = {
            let mut b = cur;
            loop {
                let s = (b & mask) as usize;
                let word = occ[s >> 6] >> (s & 63);
                if word != 0 {
                    break b + word.trailing_zeros() as u64;
                }
                b = (b & !63) + 64;
            }
        };
        let slot = (bucket & mask) as usize;

        // Drain the bucket to completion. All relaxations originate from
        // keys >= the bucket start, so new appends never land before
        // `bucket` and every distance below the bucket end is final once
        // the cascade stops.
        loop {
            std::mem::swap(&mut ring[slot], drain);
            remaining -= drain.len();
            for &u in drain.iter() {
                let ui = u as usize;
                // SAFETY throughout this block: `u` and every CSR target
                // are `< n` (validated at network construction), the
                // workspace arrays are sized ≥ n by `grow` (and `dirty`
                // ≥ m + 1, covering its first-touch-only appends), and
                // every bucket-mapped distance is finite, non-negative and
                // below the `bucket_bound < 2^60` the caller checked — so
                // the unchecked float→int casts cannot overflow. Pushing
                // into `ring[slot]` while iterating is fine: the swap
                // above made `drain` a separate vector.
                let d = unsafe { *dist.get_unchecked(ui) };
                // Stale unless the entry's vertex still belongs here. The
                // test reuses the bucket map exactly, so it can never
                // disagree with the append-side placement.
                if unsafe { (d * scale).to_int_unchecked::<u64>() } != bucket {
                    continue;
                }
                if stamp[ui] != gen {
                    stamp[ui] = gen;
                    settled.push(u);
                }
                let (targets, weights) = g.out_edge_slices(VertexId(u));
                for (&v, &w) in targets.iter().zip(weights) {
                    let vi = v as usize;
                    let nd = d + w;
                    let old = unsafe { *dist.get_unchecked(vi) };
                    if nd < old {
                        degenerate |= nd <= d;
                        unsafe {
                            if old.is_infinite() {
                                *dirty.get_unchecked_mut(dlen) = v;
                                dlen += 1;
                            }
                            *dist.get_unchecked_mut(vi) = nd;
                            *parent.get_unchecked_mut(vi) = u;
                            let b = (nd * scale).to_int_unchecked::<u64>();
                            let s = (b & mask) as usize;
                            ring.get_unchecked_mut(s).push(v);
                            *occ.get_unchecked_mut(s >> 6) |= 1 << (s & 63);
                        }
                        remaining += 1;
                    } else if nd == old {
                        degenerate |= nd <= d;
                        ties.push(v);
                    }
                }
            }
            drain.clear();
            if ring[slot].is_empty() {
                break;
            }
        }
        occ[slot >> 6] &= !(1 << (slot & 63));
        cur = bucket + 1;
    }
    ws.dirty_len = dlen;
    if degenerate {
        settled.clear();
        ties.clear();
        return None;
    }

    // --- phase 2a: canonicalize tied parents ---
    // Re-scans are idempotent, so duplicate tie entries need no dedup.
    for &x in ties.iter() {
        let xi = x as usize;
        if x == source.0 || stamp[xi] != gen {
            continue;
        }
        let key = pack(dist[xi], x);
        let (sources, weights) = g.in_edge_slices(VertexId(x));
        // Initializing `best` to x's own key folds the settles-before-x
        // filter into the minimum search.
        let mut best = key;
        for (&p, &w) in sources.iter().zip(weights) {
            let dp = dist[p as usize];
            let cand = pack(if dp.is_finite() { dp } else { f64::MAX }, p);
            let hit = (dp + w).to_bits() == dist[xi].to_bits();
            best = if hit && cand < best { cand } else { best };
        }
        debug_assert!(best < key, "tied vertex without an earlier achiever");
        parent[xi] = best as u32;
    }
    ties.clear();

    // --- phase 2b: resolve first hops along parent chains ---
    // `stamp == gen + 1` marks a resolved hop; chains are short and each
    // vertex is resolved exactly once (memoization), so this pass is
    // O(reached) with no sorting.
    stamp[si] = gen + 1;
    let visited = settled.len();
    for &x in settled.iter() {
        if stamp[x as usize] != gen + 1 {
            // Walk up to the nearest resolved ancestor, then unwind.
            chain.clear();
            let mut v = x;
            while stamp[v as usize] != gen + 1 {
                chain.push(v);
                v = parent[v as usize];
            }
            while let Some(c) = chain.pop() {
                let p = parent[c as usize];
                hop[c as usize] = if p == source.0 {
                    g.edge_slot(source, VertexId(c)).expect("parent edge exists") as u32
                } else {
                    hop[p as usize]
                };
                stamp[c as usize] = gen + 1;
            }
        }
        visit(VertexId(x), dist[x as usize], hop[x as usize]);
    }
    settled.clear();
    Some(visited)
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

/// Borrowed view of one completed SSSP run inside a [`SsspWorkspace`].
///
/// `dist` is fully valid for every vertex (`∞` when unreachable); parent
/// and first-hop reads are gated on reachability, so stale state from
/// earlier runs is unobservable.
pub struct SsspRun<'ws> {
    dist: &'ws [f64],
    parent: &'ws [u32],
    hop: &'ws [u32],
    source: VertexId,
    visited: usize,
}

impl SsspRun<'_> {
    /// Source of the run.
    #[inline]
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Number of vertices settled (= reached).
    #[inline]
    pub fn visited(&self) -> usize {
        self.visited
    }

    /// Was `v` reached from the source?
    #[inline(always)]
    pub fn reached(&self, v: VertexId) -> bool {
        self.dist[v.index()].is_finite()
    }

    /// Network distance source → `v` (`∞` when unreachable).
    #[inline(always)]
    pub fn dist(&self, v: VertexId) -> f64 {
        self.dist[v.index()]
    }

    /// The full distance slice, indexed by vertex id — valid for every
    /// vertex, `∞` where unreachable.
    #[inline]
    pub fn dist_slice(&self) -> &[f64] {
        self.dist
    }

    /// Predecessor of `v` on the shortest-path tree ([`NO_VERTEX`] for the
    /// source and unreachable vertices).
    #[inline(always)]
    pub fn parent(&self, v: VertexId) -> u32 {
        if self.dist[v.index()].is_finite() {
            self.parent[v.index()]
        } else {
            NO_VERTEX
        }
    }

    /// Slot index (into the source's sorted adjacency list) of the first
    /// edge on the shortest path source → `v`; [`NO_HOP`] for the source
    /// itself and unreachable vertices.
    #[inline(always)]
    pub fn first_hop(&self, v: VertexId) -> u32 {
        if self.dist[v.index()].is_finite() {
            self.hop[v.index()]
        } else {
            NO_HOP
        }
    }

    /// Reconstructs the tree path source → `v` (inclusive), or `None` when
    /// `v` is unreachable.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        if !self.reached(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v.0;
        while cur != self.source.0 {
            cur = self.parent[cur as usize];
            path.push(VertexId(cur));
        }
        path.reverse();
        Some(path)
    }

    /// Materializes the run as an owned [`SsspTree`] (O(n) copies — the
    /// one-shot path; reused pipelines read through the accessors instead).
    pub fn to_tree(&self) -> SsspTree {
        let n = self.dist.len();
        let mut parent = Vec::with_capacity(n);
        let mut first_hop = Vec::with_capacity(n);
        for i in 0..n as u32 {
            let v = VertexId(i);
            parent.push(self.parent(v));
            first_hop.push(self.first_hop(v));
        }
        SsspTree {
            source: self.source,
            dist: self.dist.to_vec(),
            parent,
            first_hop,
            visited: self.visited,
        }
    }
}

/// The shortest-path tree of one source vertex.
#[derive(Debug, Clone)]
pub struct SsspTree {
    /// Source of the tree.
    pub source: VertexId,
    /// `dist[v]` is the network distance source → v (`f64::INFINITY` when
    /// unreachable).
    pub dist: Vec<f64>,
    /// `parent[v]` is the predecessor on the tree path ([`NO_VERTEX`] for the
    /// source and unreachable vertices).
    pub parent: Vec<u32>,
    /// `first_hop[v]` is the *slot index* (into the source's sorted adjacency
    /// list) of the first edge on the shortest path source → v. This is the
    /// "color" of v in the source's shortest-path map. [`NO_HOP`] for the
    /// source itself and unreachable vertices.
    pub first_hop: Vec<u32>,
    /// Number of vertices settled.
    pub visited: usize,
}

impl SsspTree {
    /// Reconstructs the tree path source → v (inclusive), or `None` when `v`
    /// is unreachable.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        if self.dist[v.index()].is_infinite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v.0;
        while self.parent[cur as usize] != NO_VERTEX {
            cur = self.parent[cur as usize];
            path.push(VertexId(cur));
        }
        path.reverse();
        Some(path)
    }
}

/// Result of a point-to-point shortest-path search.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Total network distance.
    pub distance: f64,
    /// Vertices along the path, source first, target last.
    pub path: Vec<VertexId>,
    /// Number of vertices settled during the search.
    pub visited: usize,
}

/// Truncated multi-target Dijkstra over a reusable workspace: settles
/// vertices from `source` in ascending `(distance, id)` order — exactly the
/// classic loop's settle order — invoking `settle(v, d)` once per settled
/// vertex with its **final** distance, and stopping as soon as `settle`
/// returns `false` (or the reachable set is exhausted).
///
/// This is the batching primitive behind `silc-pcp`'s oracle construction:
/// instead of one point-to-point search per `(source, target)` probe, a
/// caller marks all targets of one source, runs a single truncated search,
/// and stops when the last marked target settles. No parent or first-hop
/// bookkeeping is done — the loop touches only distances, so it is cheaper
/// per settle than [`full_sssp_into`] — and the workspace reset discipline
/// is the same O(touched) as every other entry point.
///
/// Returns the number of vertices settled. Settled distances are exact and
/// a deterministic function of the graph alone (the fixpoint over path
/// sums), so batched callers observe bit-identical distances regardless of
/// how probes are grouped.
pub fn sssp_settle_until<F: FnMut(VertexId, f64) -> bool>(
    g: &SpatialNetwork,
    source: VertexId,
    ws: &mut SsspWorkspace,
    mut settle: F,
) -> usize {
    let gen = ws.begin(g);
    let dist = &mut ws.dist[..];
    let stamp = &mut ws.stamp[..];
    let dirty = &mut ws.dirty;
    let mut dlen = 0usize;
    let heap = &mut ws.heap;

    let si = source.index();
    dist[si] = 0.0;
    dirty[dlen] = source.0;
    dlen += 1;
    heap.push(pack(0.0, source.0));
    let mut visited = 0usize;

    while let Some(key) = heap.pop() {
        let (d, u) = unpack(key);
        let ui = u as usize;
        if stamp[ui] == gen {
            continue;
        }
        stamp[ui] = gen;
        visited += 1;
        if !settle(VertexId(u), d) {
            break;
        }
        let (targets, weights) = g.out_edge_slices(VertexId(u));
        for (&v, &w) in targets.iter().zip(weights) {
            let vi = v as usize;
            if stamp[vi] == gen {
                continue;
            }
            let nd = d + w;
            if nd < dist[vi] {
                if dist[vi].is_infinite() {
                    dirty[dlen] = v;
                    dlen += 1;
                }
                dist[vi] = nd;
                heap.push(pack(nd, v));
            }
        }
    }
    ws.dirty_len = dlen;
    visited
}

/// Point-to-point Dijkstra with early termination at `target`.
pub fn point_to_point(
    g: &SpatialNetwork,
    source: VertexId,
    target: VertexId,
) -> Option<PathResult> {
    let mut exp = Expander::new(g, source);
    while let Some((v, _)) = exp.next_settled() {
        if v == target {
            return Some(PathResult {
                distance: exp.dist(target).expect("target just settled"),
                path: exp.path_to(target).expect("target just settled"),
                visited: exp.visited(),
            });
        }
    }
    None
}

/// Network distance source → target, or `None` if unreachable.
pub fn distance(g: &SpatialNetwork, source: VertexId, target: VertexId) -> Option<f64> {
    point_to_point(g, source, target).map(|r| r.distance)
}

/// A* point-to-point search over a reusable workspace (the engine behind
/// [`crate::astar::AStar::search_with`]): goal-directed keys `g + h` with
/// `h = scale · d_euclid(v, target)`, settle marks in the generation
/// stamps, and the same allocation-free reset discipline as the SSSP
/// entry points. Behavior (including tie-breaking on vertex id) is
/// identical to the historical one-shot implementation.
pub(crate) fn astar_search_into(
    g: &SpatialNetwork,
    source: VertexId,
    target: VertexId,
    scale: f64,
    ws: &mut SsspWorkspace,
) -> Option<PathResult> {
    let gen = ws.begin(g);
    let dist = &mut ws.dist[..];
    let parent = &mut ws.parent[..];
    let stamp = &mut ws.stamp[..];
    let dirty = &mut ws.dirty;
    let mut dlen = 0usize;
    let heap = &mut ws.heap;

    let goal = g.position(target);
    let si = source.index();
    dist[si] = 0.0;
    parent[si] = NO_VERTEX;
    dirty[dlen] = source.0;
    dlen += 1;
    let h0 = scale * g.position(source).distance(&goal);
    heap.push(pack(h0, source.0));
    let mut visited = 0usize;
    let mut result = None;

    while let Some(key) = heap.pop() {
        let u = key as u32;
        let ui = u as usize;
        if stamp[ui] == gen {
            continue;
        }
        stamp[ui] = gen;
        visited += 1;
        if u == target.0 {
            let mut path = vec![target];
            let mut cur = u;
            while parent[cur as usize] != NO_VERTEX {
                cur = parent[cur as usize];
                path.push(VertexId(cur));
            }
            path.reverse();
            result = Some(PathResult { distance: dist[target.index()], path, visited });
            break;
        }
        let d = dist[ui];
        for (v, w) in g.out_edges(VertexId(u)) {
            let vi = v.index();
            if stamp[vi] == gen {
                continue;
            }
            let nd = d + w;
            if nd < dist[vi] {
                if dist[vi].is_infinite() {
                    dirty[dlen] = v.0;
                    dlen += 1;
                }
                dist[vi] = nd;
                parent[vi] = u;
                let h = scale * g.position(v).distance(&goal);
                heap.push(pack(nd + h, v.0));
            }
        }
    }
    ws.dirty_len = dlen;
    result
}

/// Min-heap entry ordered by distance, ties broken on vertex id so runs are
/// deterministic regardless of insertion order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need a min-heap.
        other.dist.total_cmp(&self.dist).then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A step-wise Dijkstra expansion: settles one vertex per call.
///
/// This is exactly the primitive the INE baseline ("incremental network
/// expansion", Papadias et al. 2003) needs — it interleaves settling network
/// vertices with checking the objects that reside on them.
pub struct Expander<'g> {
    g: &'g SpatialNetwork,
    dist: Vec<f64>,
    parent: Vec<u32>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
    visited: usize,
    edges_relaxed: usize,
}

impl<'g> Expander<'g> {
    /// Starts an expansion from `source`.
    pub fn new(g: &'g SpatialNetwork, source: VertexId) -> Self {
        let n = g.vertex_count();
        let mut dist = vec![f64::INFINITY; n];
        dist[source.index()] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry { dist: 0.0, vertex: source.0 });
        Expander {
            g,
            dist,
            parent: vec![NO_VERTEX; n],
            settled: vec![false; n],
            heap,
            visited: 0,
            edges_relaxed: 0,
        }
    }

    /// Settles and returns the next-closest unsettled vertex with its final
    /// distance, or `None` when the reachable part is exhausted.
    pub fn next_settled(&mut self) -> Option<(VertexId, f64)> {
        while let Some(HeapEntry { dist: d, vertex: u }) = self.heap.pop() {
            if self.settled[u as usize] {
                continue;
            }
            self.settled[u as usize] = true;
            self.visited += 1;
            let uid = VertexId(u);
            for (v, w) in self.g.out_edges(uid) {
                self.edges_relaxed += 1;
                let vi = v.index();
                if self.settled[vi] {
                    continue;
                }
                let nd = d + w;
                if nd < self.dist[vi] {
                    self.dist[vi] = nd;
                    self.parent[vi] = u;
                    self.heap.push(HeapEntry { dist: nd, vertex: v.0 });
                }
            }
            return Some((uid, d));
        }
        None
    }

    /// Final distance of a *settled* vertex (tentative distances of
    /// unsettled vertices are not exposed).
    pub fn dist(&self, v: VertexId) -> Option<f64> {
        if self.settled[v.index()] {
            Some(self.dist[v.index()])
        } else {
            None
        }
    }

    /// Path from the source to a settled vertex.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        if !self.settled[v.index()] {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v.0;
        while self.parent[cur as usize] != NO_VERTEX {
            cur = self.parent[cur as usize];
            path.push(VertexId(cur));
        }
        path.reverse();
        Some(path)
    }

    /// Number of vertices settled so far.
    pub fn visited(&self) -> usize {
        self.visited
    }

    /// Number of edge relaxations performed so far.
    pub fn edges_relaxed(&self) -> usize {
        self.edges_relaxed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{grid_network, road_network, GridConfig, RoadConfig};
    use crate::NetworkBuilder;
    use silc_geom::Point;

    /// The textbook loop the engine must reproduce bit-for-bit: lazy
    /// BinaryHeap, ties on vertex id, first-hop propagation at relax time.
    fn reference_sssp(g: &SpatialNetwork, source: VertexId) -> (SsspTree, Vec<u32>) {
        let n = g.vertex_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent = vec![NO_VERTEX; n];
        let mut first_hop = vec![NO_HOP; n];
        let mut settled = vec![false; n];
        let mut heap = BinaryHeap::new();
        dist[source.index()] = 0.0;
        heap.push(HeapEntry { dist: 0.0, vertex: source.0 });
        let mut visited = 0usize;
        let mut order = Vec::new();
        while let Some(HeapEntry { dist: d, vertex: u }) = heap.pop() {
            if settled[u as usize] {
                continue;
            }
            settled[u as usize] = true;
            visited += 1;
            order.push(u);
            for (slot, (v, w)) in g.out_edges(VertexId(u)).enumerate() {
                let vi = v.index();
                if settled[vi] {
                    continue;
                }
                let nd = d + w;
                if nd < dist[vi] {
                    dist[vi] = nd;
                    parent[vi] = u;
                    first_hop[vi] = if u == source.0 { slot as u32 } else { first_hop[u as usize] };
                    heap.push(HeapEntry { dist: nd, vertex: v.0 });
                }
            }
        }
        (SsspTree { source, dist, parent, first_hop, visited }, order)
    }

    /// Asserts the engine (via one reused workspace) matches the reference
    /// on every vertex of `g` as source: dists bit-identical, parents,
    /// first hops, visited counts, and visit order.
    fn assert_engine_matches_reference(g: &SpatialNetwork, label: &str) {
        let mut ws = SsspWorkspace::new();
        for s in g.vertices() {
            let (truth, order) = reference_sssp(g, s);
            let mut visits: Vec<(u32, f64, u32)> = Vec::new();
            let run = full_sssp_visit(g, s, &mut ws, |v, d, h| visits.push((v.0, d, h)));
            assert_eq!(run.visited(), truth.visited, "[{label}] visited s={s}");
            for v in g.vertices() {
                let vi = v.index();
                assert_eq!(
                    run.dist(v).to_bits(),
                    truth.dist[vi].to_bits(),
                    "[{label}] dist mismatch s={s} v={v}"
                );
                assert_eq!(run.parent(v), truth.parent[vi], "[{label}] parent s={s} v={v}");
                assert_eq!(
                    run.first_hop(v),
                    truth.first_hop[vi],
                    "[{label}] first hop s={s} v={v}"
                );
            }
            // Visits: exactly once per reached vertex, final values; order
            // is unspecified, so compare as sets against the settle set.
            assert_eq!(visits.len(), order.len(), "[{label}] visit count s={s}");
            let mut got: Vec<u32> = visits.iter().map(|&(v, _, _)| v).collect();
            got.sort_unstable();
            let mut want = order.clone();
            want.sort_unstable();
            assert_eq!(got, want, "[{label}] visited set s={s}");
            for (v, d, h) in visits {
                assert_eq!(d.to_bits(), truth.dist[v as usize].to_bits());
                assert_eq!(h, truth.first_hop[v as usize]);
            }
        }
    }

    /// 0 -1- 1 -1- 2
    /// |           |
    /// 5 --------- 3   (0-5 cost 10, 2-3 cost 1, 3-5... )
    fn line_with_shortcut() -> SpatialNetwork {
        let mut b = NetworkBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(Point::new(i as f64, 0.0))).collect();
        b.add_edge_sym(v[0], v[1], 1.0);
        b.add_edge_sym(v[1], v[2], 1.0);
        b.add_edge_sym(v[2], v[3], 1.0);
        b.add_edge_sym(v[0], v[3], 10.0); // expensive direct road
        b.build()
    }

    #[test]
    fn sssp_distances() {
        let g = line_with_shortcut();
        let t = full_sssp(&g, VertexId(0));
        assert_eq!(t.dist, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(t.visited, 4);
    }

    #[test]
    fn sssp_first_hops_are_slots() {
        let g = line_with_shortcut();
        let t = full_sssp(&g, VertexId(0));
        // Vertex 0's sorted adjacency: [1 (slot 0), 3 (slot 1)].
        assert_eq!(t.first_hop[0], NO_HOP);
        assert_eq!(t.first_hop[1], 0);
        assert_eq!(t.first_hop[2], 0);
        assert_eq!(t.first_hop[3], 0); // through 1-2, not the direct road
    }

    #[test]
    fn first_hop_recursion_property() {
        // d(s,v) = w(s,t) + d(t,v) for t = first hop of v.
        let g = line_with_shortcut();
        let s = VertexId(0);
        let tree = full_sssp(&g, s);
        for v in g.vertices() {
            if v == s || tree.first_hop[v.index()] == NO_HOP {
                continue;
            }
            let (t, w) = g.out_edge(s, tree.first_hop[v.index()] as usize);
            let dt = full_sssp(&g, t);
            let lhs = tree.dist[v.index()];
            let rhs = w + dt.dist[v.index()];
            assert!((lhs - rhs).abs() < 1e-9, "recursion broken at {v}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn sssp_path_reconstruction() {
        let g = line_with_shortcut();
        let t = full_sssp(&g, VertexId(0));
        let path = t.path_to(VertexId(3)).unwrap();
        assert_eq!(path, vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn unreachable_vertex() {
        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(1.0, 0.0));
        let _iso = b.add_vertex(Point::new(5.0, 5.0));
        b.add_edge_sym(a, c, 1.0);
        let g = b.build();
        let t = full_sssp(&g, a);
        assert!(t.dist[2].is_infinite());
        assert_eq!(t.first_hop[2], NO_HOP);
        assert!(t.path_to(VertexId(2)).is_none());
        assert_eq!(t.visited, 2);
    }

    #[test]
    fn engine_matches_reference_on_tie_heavy_grid() {
        // Zero jitter / zero detour: weights are exact grid spacings, so
        // distance ties are everywhere — the adversarial case for derived
        // parents and settle order.
        let g = grid_network(&GridConfig {
            rows: 7,
            cols: 7,
            jitter: 0.0,
            detour: 0.0,
            keep_prob: 1.0,
            seed: 3,
            ..Default::default()
        });
        assert_engine_matches_reference(&g, "uniform grid");
    }

    #[test]
    fn engine_matches_reference_on_jittered_grid() {
        let g = grid_network(&GridConfig { rows: 8, cols: 8, seed: 11, ..Default::default() });
        assert_engine_matches_reference(&g, "jittered grid");
    }

    #[test]
    fn engine_matches_reference_on_road_network() {
        let g = road_network(&RoadConfig { vertices: 150, seed: 7, ..Default::default() });
        assert_engine_matches_reference(&g, "road");
    }

    #[test]
    fn engine_matches_reference_on_directed_graph() {
        // One-way edges: exercises the reverse-CSR parent derivation.
        let mut b = NetworkBuilder::new();
        let v: Vec<_> =
            (0..6).map(|i| b.add_vertex(Point::new(i as f64, (i % 2) as f64))).collect();
        b.add_edge(v[0], v[1], 1.0);
        b.add_edge(v[1], v[2], 1.0);
        b.add_edge(v[2], v[0], 1.0);
        b.add_edge(v[0], v[3], 2.5);
        b.add_edge(v[3], v[4], 0.5);
        b.add_edge(v[4], v[5], 0.5);
        b.add_edge(v[5], v[0], 0.5);
        b.add_edge_sym(v[2], v[4], 1.25);
        let g = b.build();
        assert_engine_matches_reference(&g, "directed");
    }

    #[test]
    fn engine_matches_reference_with_zero_weight_edges() {
        // Zero weights force the degenerate-tie fallback; results must
        // still match the reference loop exactly.
        let mut b = NetworkBuilder::new();
        let v: Vec<_> = (0..5).map(|i| b.add_vertex(Point::new(i as f64, 0.0))).collect();
        b.add_edge_sym(v[2], v[0], 0.0);
        b.add_edge_sym(v[0], v[1], 0.0);
        b.add_edge_sym(v[1], v[3], 1.0);
        b.add_edge_sym(v[3], v[4], 0.0);
        let g = b.build();
        assert_engine_matches_reference(&g, "zero weights");
    }

    #[test]
    fn engine_matches_reference_with_denormal_small_weights() {
        // w > 0 but d + w == d in f64: the subtle degeneracy the flag must
        // catch (the classic restart owns tie semantics here).
        let mut b = NetworkBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(Point::new(i as f64, 0.0))).collect();
        b.add_edge_sym(v[3], v[0], 1.0);
        b.add_edge_sym(v[0], v[1], 1e-300);
        b.add_edge_sym(v[1], v[2], 1e-300);
        let g = b.build();
        assert_engine_matches_reference(&g, "denormal weights");
    }

    #[test]
    fn workspace_reuse_across_graphs_of_different_sizes() {
        let big = grid_network(&GridConfig { rows: 8, cols: 8, seed: 1, ..Default::default() });
        let small = line_with_shortcut();
        let mut ws = SsspWorkspace::new();
        let _ = full_sssp_into(&big, VertexId(40), &mut ws);
        // The smaller graph must not see the bigger graph's stale state.
        let run = full_sssp_into(&small, VertexId(0), &mut ws);
        let tree = run.to_tree();
        assert_eq!(tree.dist, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(tree.dist.len(), small.vertex_count());
    }

    #[test]
    fn workspace_invariant_hides_unreachable_stale_state() {
        // Run on a connected graph, then on a disconnected one: the isolated
        // vertex must read as unreachable even though its buffer slot holds
        // stale parent/hop data from the first run.
        let connected = line_with_shortcut();
        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(1.0, 0.0));
        let _iso = b.add_vertex(Point::new(5.0, 5.0));
        b.add_edge_sym(a, c, 1.0);
        let disconnected = b.build();

        let mut ws = SsspWorkspace::new();
        let _ = full_sssp_into(&connected, VertexId(0), &mut ws);
        let run = full_sssp_into(&disconnected, a, &mut ws);
        assert!(!run.reached(VertexId(2)));
        assert!(run.dist(VertexId(2)).is_infinite());
        assert_eq!(run.parent(VertexId(2)), NO_VERTEX);
        assert_eq!(run.first_hop(VertexId(2)), NO_HOP);
        assert!(run.path_to(VertexId(2)).is_none());
        assert_eq!(run.visited(), 2);
    }

    #[test]
    fn dist_slice_is_fully_valid() {
        let g = line_with_shortcut();
        let mut ws = SsspWorkspace::new();
        let run = full_sssp_into(&g, VertexId(1), &mut ws);
        assert_eq!(run.dist_slice(), &[1.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn min_heap_pops_sorted() {
        // Deterministic pseudo-random keys: the heap must pop them in
        // ascending u128 order (= ascending (dist, vertex)).
        let mut heap = MinHeap::default();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut keys = Vec::new();
        for i in 0..500u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = pack((x % 1_000_000) as f64, i);
            keys.push(key);
            heap.push(key);
        }
        keys.sort_unstable();
        let mut popped = Vec::new();
        while let Some(k) = heap.pop() {
            popped.push(k);
        }
        assert_eq!(popped, keys);
    }

    #[test]
    fn pack_preserves_order() {
        let samples = [0.0, 1e-12, 0.5, 1.0, 1.5, 1e9, 1e300];
        for (i, &a) in samples.iter().enumerate() {
            for &b in &samples[i + 1..] {
                assert!(pack(a, 7) < pack(b, 3), "order broken for {a} vs {b}");
            }
            assert!(pack(a, 3) < pack(a, 4), "vertex tie-break broken at {a}");
        }
    }

    #[test]
    fn point_to_point_early_exit_visits_fewer() {
        let g = line_with_shortcut();
        let r = point_to_point(&g, VertexId(0), VertexId(1)).unwrap();
        assert_eq!(r.distance, 1.0);
        assert_eq!(r.path, vec![VertexId(0), VertexId(1)]);
        assert!(r.visited <= 2, "early exit should settle at most 2, got {}", r.visited);
    }

    #[test]
    fn point_to_point_unreachable_is_none() {
        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge(a, c, 1.0); // one-way: c cannot reach a
        let g = b.build();
        assert!(point_to_point(&g, c, a).is_none());
        assert_eq!(distance(&g, a, c), Some(1.0));
    }

    #[test]
    fn expander_settles_in_distance_order() {
        let g = line_with_shortcut();
        let mut exp = Expander::new(&g, VertexId(0));
        let mut last = -1.0;
        let mut order = Vec::new();
        while let Some((v, d)) = exp.next_settled() {
            assert!(d >= last);
            last = d;
            order.push(v.0);
        }
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(exp.visited(), 4);
        assert!(exp.edges_relaxed() > 0);
    }

    #[test]
    fn settle_until_matches_expander_and_stops_early() {
        let g = road_network(&RoadConfig { vertices: 120, seed: 9, ..Default::default() });
        let mut ws = SsspWorkspace::new();
        for s in [VertexId(0), VertexId(57)] {
            // Full run: settle order and distances equal the Expander's.
            let mut got = Vec::new();
            let visited = sssp_settle_until(&g, s, &mut ws, |v, d| {
                got.push((v, d));
                true
            });
            let mut exp = Expander::new(&g, s);
            let mut want = Vec::new();
            while let Some(step) = exp.next_settled() {
                want.push(step);
            }
            assert_eq!(visited, want.len());
            assert_eq!(got.len(), want.len());
            for ((gv, gd), (wv, wd)) in got.iter().zip(&want) {
                assert_eq!(gv, wv, "settle order diverges from the classic loop");
                assert_eq!(gd.to_bits(), wd.to_bits(), "settled distance bits differ at {gv}");
            }
            // Truncated run: stop after the 10th settle; the reused
            // workspace must still produce identical prefixes.
            let mut prefix = Vec::new();
            let visited = sssp_settle_until(&g, s, &mut ws, |v, d| {
                prefix.push((v, d));
                prefix.len() < 10
            });
            assert_eq!(visited, 10);
            assert_eq!(&prefix[..], &got[..10]);
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equidistant vertices settle in id order.
        let mut b = NetworkBuilder::new();
        let s = b.add_vertex(Point::new(0.0, 0.0));
        let a = b.add_vertex(Point::new(1.0, 0.0));
        let c = b.add_vertex(Point::new(-1.0, 0.0));
        b.add_edge_sym(s, a, 1.0);
        b.add_edge_sym(s, c, 1.0);
        let g = b.build();
        let mut exp = Expander::new(&g, s);
        exp.next_settled(); // s
        assert_eq!(exp.next_settled().unwrap().0, a);
        assert_eq!(exp.next_settled().unwrap().0, c);
    }
}
