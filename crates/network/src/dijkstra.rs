//! Dijkstra's algorithm: full SSSP with first-hop extraction, point-to-point
//! search, and a step-wise expander.
//!
//! The paper's motivating observation (p.3/p.7) is that Dijkstra *visits far
//! too many vertices*: e.g. 3191 of 4233 vertices to find a 76-edge path.
//! Every entry point here therefore reports how many vertices it settled so
//! the experiments can reproduce that comparison.

use crate::{SpatialNetwork, VertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Sentinel for "no vertex" in parent arrays.
pub const NO_VERTEX: u32 = u32::MAX;
/// Sentinel for "no first hop" (the source itself, or unreachable).
pub const NO_HOP: u32 = u32::MAX;

/// Min-heap entry ordered by distance, ties broken on vertex id so runs are
/// deterministic regardless of insertion order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need a min-heap.
        other.dist.total_cmp(&self.dist).then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The shortest-path tree of one source vertex.
#[derive(Debug, Clone)]
pub struct SsspTree {
    /// Source of the tree.
    pub source: VertexId,
    /// `dist[v]` is the network distance source → v (`f64::INFINITY` when
    /// unreachable).
    pub dist: Vec<f64>,
    /// `parent[v]` is the predecessor on the tree path ([`NO_VERTEX`] for the
    /// source and unreachable vertices).
    pub parent: Vec<u32>,
    /// `first_hop[v]` is the *slot index* (into the source's sorted adjacency
    /// list) of the first edge on the shortest path source → v. This is the
    /// "color" of v in the source's shortest-path map. [`NO_HOP`] for the
    /// source itself and unreachable vertices.
    pub first_hop: Vec<u32>,
    /// Number of vertices settled.
    pub visited: usize,
}

impl SsspTree {
    /// Reconstructs the tree path source → v (inclusive), or `None` when `v`
    /// is unreachable.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        if self.dist[v.index()].is_infinite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v.0;
        while self.parent[cur as usize] != NO_VERTEX {
            cur = self.parent[cur as usize];
            path.push(VertexId(cur));
        }
        path.reverse();
        Some(path)
    }
}

/// Full single-source shortest paths from `source`, with first-hop colors.
///
/// Runs in `O(m log n)`. First hops satisfy the recursion the SILC path
/// retrieval relies on: if `t` is the first hop of `v`, then
/// `d(s,v) = w(s,t) + d(t,v)`.
pub fn full_sssp(g: &SpatialNetwork, source: VertexId) -> SsspTree {
    let n = g.vertex_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![NO_VERTEX; n];
    let mut first_hop = vec![NO_HOP; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n / 4 + 16);

    dist[source.index()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, vertex: source.0 });
    let mut visited = 0usize;

    while let Some(HeapEntry { dist: d, vertex: u }) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        visited += 1;
        let uid = VertexId(u);
        for (slot, (v, w)) in g.out_edges(uid).enumerate() {
            let vi = v.index();
            if settled[vi] {
                continue;
            }
            let nd = d + w;
            if nd < dist[vi] {
                dist[vi] = nd;
                parent[vi] = u;
                first_hop[vi] = if u == source.0 { slot as u32 } else { first_hop[u as usize] };
                heap.push(HeapEntry { dist: nd, vertex: v.0 });
            }
        }
    }

    SsspTree { source, dist, parent, first_hop, visited }
}

/// Result of a point-to-point shortest-path search.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Total network distance.
    pub distance: f64,
    /// Vertices along the path, source first, target last.
    pub path: Vec<VertexId>,
    /// Number of vertices settled during the search.
    pub visited: usize,
}

/// Point-to-point Dijkstra with early termination at `target`.
pub fn point_to_point(
    g: &SpatialNetwork,
    source: VertexId,
    target: VertexId,
) -> Option<PathResult> {
    let mut exp = Expander::new(g, source);
    while let Some((v, _)) = exp.next_settled() {
        if v == target {
            return Some(PathResult {
                distance: exp.dist(target).expect("target just settled"),
                path: exp.path_to(target).expect("target just settled"),
                visited: exp.visited(),
            });
        }
    }
    None
}

/// Network distance source → target, or `None` if unreachable.
pub fn distance(g: &SpatialNetwork, source: VertexId, target: VertexId) -> Option<f64> {
    point_to_point(g, source, target).map(|r| r.distance)
}

/// A step-wise Dijkstra expansion: settles one vertex per call.
///
/// This is exactly the primitive the INE baseline ("incremental network
/// expansion", Papadias et al. 2003) needs — it interleaves settling network
/// vertices with checking the objects that reside on them.
pub struct Expander<'g> {
    g: &'g SpatialNetwork,
    dist: Vec<f64>,
    parent: Vec<u32>,
    settled: Vec<bool>,
    heap: BinaryHeap<HeapEntry>,
    visited: usize,
    edges_relaxed: usize,
}

impl<'g> Expander<'g> {
    /// Starts an expansion from `source`.
    pub fn new(g: &'g SpatialNetwork, source: VertexId) -> Self {
        let n = g.vertex_count();
        let mut dist = vec![f64::INFINITY; n];
        dist[source.index()] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry { dist: 0.0, vertex: source.0 });
        Expander {
            g,
            dist,
            parent: vec![NO_VERTEX; n],
            settled: vec![false; n],
            heap,
            visited: 0,
            edges_relaxed: 0,
        }
    }

    /// Settles and returns the next-closest unsettled vertex with its final
    /// distance, or `None` when the reachable part is exhausted.
    pub fn next_settled(&mut self) -> Option<(VertexId, f64)> {
        while let Some(HeapEntry { dist: d, vertex: u }) = self.heap.pop() {
            if self.settled[u as usize] {
                continue;
            }
            self.settled[u as usize] = true;
            self.visited += 1;
            let uid = VertexId(u);
            for (v, w) in self.g.out_edges(uid) {
                self.edges_relaxed += 1;
                let vi = v.index();
                if self.settled[vi] {
                    continue;
                }
                let nd = d + w;
                if nd < self.dist[vi] {
                    self.dist[vi] = nd;
                    self.parent[vi] = u;
                    self.heap.push(HeapEntry { dist: nd, vertex: v.0 });
                }
            }
            return Some((uid, d));
        }
        None
    }

    /// Final distance of a *settled* vertex (tentative distances of
    /// unsettled vertices are not exposed).
    pub fn dist(&self, v: VertexId) -> Option<f64> {
        if self.settled[v.index()] {
            Some(self.dist[v.index()])
        } else {
            None
        }
    }

    /// Path from the source to a settled vertex.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        if !self.settled[v.index()] {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v.0;
        while self.parent[cur as usize] != NO_VERTEX {
            cur = self.parent[cur as usize];
            path.push(VertexId(cur));
        }
        path.reverse();
        Some(path)
    }

    /// Number of vertices settled so far.
    pub fn visited(&self) -> usize {
        self.visited
    }

    /// Number of edge relaxations performed so far.
    pub fn edges_relaxed(&self) -> usize {
        self.edges_relaxed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;
    use silc_geom::Point;

    /// 0 -1- 1 -1- 2
    /// |           |
    /// 5 --------- 3   (0-5 cost 10, 2-3 cost 1, 3-5... )
    fn line_with_shortcut() -> SpatialNetwork {
        let mut b = NetworkBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(Point::new(i as f64, 0.0))).collect();
        b.add_edge_sym(v[0], v[1], 1.0);
        b.add_edge_sym(v[1], v[2], 1.0);
        b.add_edge_sym(v[2], v[3], 1.0);
        b.add_edge_sym(v[0], v[3], 10.0); // expensive direct road
        b.build()
    }

    #[test]
    fn sssp_distances() {
        let g = line_with_shortcut();
        let t = full_sssp(&g, VertexId(0));
        assert_eq!(t.dist, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(t.visited, 4);
    }

    #[test]
    fn sssp_first_hops_are_slots() {
        let g = line_with_shortcut();
        let t = full_sssp(&g, VertexId(0));
        // Vertex 0's sorted adjacency: [1 (slot 0), 3 (slot 1)].
        assert_eq!(t.first_hop[0], NO_HOP);
        assert_eq!(t.first_hop[1], 0);
        assert_eq!(t.first_hop[2], 0);
        assert_eq!(t.first_hop[3], 0); // through 1-2, not the direct road
    }

    #[test]
    fn first_hop_recursion_property() {
        // d(s,v) = w(s,t) + d(t,v) for t = first hop of v.
        let g = line_with_shortcut();
        let s = VertexId(0);
        let tree = full_sssp(&g, s);
        for v in g.vertices() {
            if v == s || tree.first_hop[v.index()] == NO_HOP {
                continue;
            }
            let (t, w) = g.out_edge(s, tree.first_hop[v.index()] as usize);
            let dt = full_sssp(&g, t);
            let lhs = tree.dist[v.index()];
            let rhs = w + dt.dist[v.index()];
            assert!((lhs - rhs).abs() < 1e-9, "recursion broken at {v}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn sssp_path_reconstruction() {
        let g = line_with_shortcut();
        let t = full_sssp(&g, VertexId(0));
        let path = t.path_to(VertexId(3)).unwrap();
        assert_eq!(path, vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn unreachable_vertex() {
        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(1.0, 0.0));
        let _iso = b.add_vertex(Point::new(5.0, 5.0));
        b.add_edge_sym(a, c, 1.0);
        let g = b.build();
        let t = full_sssp(&g, a);
        assert!(t.dist[2].is_infinite());
        assert_eq!(t.first_hop[2], NO_HOP);
        assert!(t.path_to(VertexId(2)).is_none());
        assert_eq!(t.visited, 2);
    }

    #[test]
    fn point_to_point_early_exit_visits_fewer() {
        let g = line_with_shortcut();
        let r = point_to_point(&g, VertexId(0), VertexId(1)).unwrap();
        assert_eq!(r.distance, 1.0);
        assert_eq!(r.path, vec![VertexId(0), VertexId(1)]);
        assert!(r.visited <= 2, "early exit should settle at most 2, got {}", r.visited);
    }

    #[test]
    fn point_to_point_unreachable_is_none() {
        let mut b = NetworkBuilder::new();
        let a = b.add_vertex(Point::new(0.0, 0.0));
        let c = b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge(a, c, 1.0); // one-way: c cannot reach a
        let g = b.build();
        assert!(point_to_point(&g, c, a).is_none());
        assert_eq!(distance(&g, a, c), Some(1.0));
    }

    #[test]
    fn expander_settles_in_distance_order() {
        let g = line_with_shortcut();
        let mut exp = Expander::new(&g, VertexId(0));
        let mut last = -1.0;
        let mut order = Vec::new();
        while let Some((v, d)) = exp.next_settled() {
            assert!(d >= last);
            last = d;
            order.push(v.0);
        }
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(exp.visited(), 4);
        assert!(exp.edges_relaxed() > 0);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equidistant vertices settle in id order.
        let mut b = NetworkBuilder::new();
        let s = b.add_vertex(Point::new(0.0, 0.0));
        let a = b.add_vertex(Point::new(1.0, 0.0));
        let c = b.add_vertex(Point::new(-1.0, 0.0));
        b.add_edge_sym(s, a, 1.0);
        b.add_edge_sym(s, c, 1.0);
        let g = b.build();
        let mut exp = Expander::new(&g, s);
        exp.next_settled(); // s
        assert_eq!(exp.next_settled().unwrap().0, a);
        assert_eq!(exp.next_settled().unwrap().0, c);
    }
}
