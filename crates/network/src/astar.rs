//! A* point-to-point search with an admissible Euclidean heuristic.
//!
//! Used by the IER baseline (and by the oracle builders in `silc-pcp`) to
//! compute individual network distances faster than plain Dijkstra. The
//! heuristic scales straight-line distance by the network's minimum
//! weight/Euclidean ratio, which keeps it admissible even when some edges
//! are cheaper than their geometric length (e.g. travel-time weights).

use crate::dijkstra::{PathResult, NO_VERTEX};
use crate::{SpatialNetwork, VertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq)]
struct AStarEntry {
    f: f64,
    vertex: u32,
}

impl Eq for AStarEntry {}

impl Ord for AStarEntry {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        other.f.total_cmp(&self.f).then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for AStarEntry {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable A* search context.
///
/// Caches the admissible heuristic scale so repeated point-to-point queries
/// (IER issues one per candidate object) don't rescan all edges.
pub struct AStar<'g> {
    g: &'g SpatialNetwork,
    /// Multiplier for the Euclidean lower bound; `h(v) = scale · dE(v, goal)`.
    scale: f64,
}

impl<'g> AStar<'g> {
    /// Prepares a search context for `g`, scanning edges once to find the
    /// admissible heuristic scale.
    pub fn new(g: &'g SpatialNetwork) -> Self {
        AStar { g, scale: g.min_weight_ratio() }
    }

    /// Prepares a context with a caller-supplied heuristic scale.
    ///
    /// # Panics
    /// Panics if `scale` is negative or non-finite (`0.0` degrades to plain
    /// Dijkstra and is allowed).
    pub fn with_scale(g: &'g SpatialNetwork, scale: f64) -> Self {
        assert!(scale.is_finite() && scale >= 0.0, "heuristic scale must be finite and >= 0");
        AStar { g, scale }
    }

    /// The heuristic scale in use.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Shortest path `source → target`, or `None` when unreachable.
    pub fn search(&self, source: VertexId, target: VertexId) -> Option<PathResult> {
        let n = self.g.vertex_count();
        let goal = self.g.position(target);
        let mut dist = vec![f64::INFINITY; n];
        let mut parent = vec![NO_VERTEX; n];
        let mut settled = vec![false; n];
        let mut heap = BinaryHeap::new();

        dist[source.index()] = 0.0;
        let h0 = self.scale * self.g.position(source).distance(&goal);
        heap.push(AStarEntry { f: h0, vertex: source.0 });
        let mut visited = 0usize;

        while let Some(AStarEntry { vertex: u, .. }) = heap.pop() {
            if settled[u as usize] {
                continue;
            }
            settled[u as usize] = true;
            visited += 1;
            if u == target.0 {
                let mut path = vec![target];
                let mut cur = u;
                while parent[cur as usize] != NO_VERTEX {
                    cur = parent[cur as usize];
                    path.push(VertexId(cur));
                }
                path.reverse();
                return Some(PathResult { distance: dist[target.index()], path, visited });
            }
            let d = dist[u as usize];
            for (v, w) in self.g.out_edges(VertexId(u)) {
                let vi = v.index();
                if settled[vi] {
                    continue;
                }
                let nd = d + w;
                if nd < dist[vi] {
                    dist[vi] = nd;
                    parent[vi] = u;
                    let h = self.scale * self.g.position(v).distance(&goal);
                    heap.push(AStarEntry { f: nd + h, vertex: v.0 });
                }
            }
        }
        None
    }

    /// Network distance only.
    pub fn distance(&self, source: VertexId, target: VertexId) -> Option<f64> {
        self.search(source, target).map(|r| r.distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{grid_network, GridConfig};
    use crate::{dijkstra, NetworkBuilder};
    use silc_geom::Point;

    #[test]
    fn astar_matches_dijkstra_on_grid() {
        let g = grid_network(&GridConfig { rows: 12, cols: 12, seed: 7, ..Default::default() });
        let a = AStar::new(&g);
        let pairs = [(0u32, 140u32), (5, 77), (12, 12), (3, 100)];
        for &(s, t) in &pairs {
            let (s, t) = (VertexId(s), VertexId(t));
            let ours = a.distance(s, t);
            let truth = dijkstra::distance(&g, s, t);
            match (ours, truth) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{s}->{t}: {x} vs {y}"),
                (None, None) => {}
                other => panic!("reachability mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn astar_visits_no_more_than_dijkstra() {
        let g = grid_network(&GridConfig { rows: 15, cols: 15, seed: 3, ..Default::default() });
        let a = AStar::new(&g);
        let s = VertexId(0);
        let t = VertexId((g.vertex_count() - 1) as u32);
        let astar_visits = a.search(s, t).unwrap().visited;
        let dij_visits = dijkstra::point_to_point(&g, s, t).unwrap().visited;
        assert!(astar_visits <= dij_visits, "A* settled {astar_visits} > Dijkstra {dij_visits}");
    }

    #[test]
    fn zero_scale_is_dijkstra() {
        let g = grid_network(&GridConfig { rows: 6, cols: 6, seed: 1, ..Default::default() });
        let a = AStar::with_scale(&g, 0.0);
        let s = VertexId(0);
        let t = VertexId(35);
        assert_eq!(a.distance(s, t), dijkstra::distance(&g, s, t));
    }

    #[test]
    fn source_equals_target() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge_sym(u, v, 1.0);
        let g = b.build();
        let a = AStar::new(&g);
        let r = a.search(u, u).unwrap();
        assert_eq!(r.distance, 0.0);
        assert_eq!(r.path, vec![u]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        let _w = b.add_vertex(Point::new(2.0, 0.0));
        b.add_edge_sym(u, v, 1.0);
        let g = b.build();
        let a = AStar::new(&g);
        assert!(a.search(u, VertexId(2)).is_none());
    }

    #[test]
    #[should_panic(expected = "heuristic scale")]
    fn negative_scale_rejected() {
        let g = NetworkBuilder::new().build();
        AStar::with_scale(&g, -1.0);
    }
}
