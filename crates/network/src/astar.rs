//! A* point-to-point search with an admissible Euclidean heuristic.
//!
//! Used by the IER baseline (and by the oracle builders in `silc-pcp`) to
//! compute individual network distances faster than plain Dijkstra. The
//! heuristic scales straight-line distance by the network's minimum
//! weight/Euclidean ratio, which keeps it admissible even when some edges
//! are cheaper than their geometric length (e.g. travel-time weights).

use crate::dijkstra::{self, PathResult, SsspWorkspace};
use crate::{SpatialNetwork, VertexId};

/// Reusable A* search context.
///
/// Caches the admissible heuristic scale so repeated point-to-point queries
/// (IER issues one per candidate object) don't rescan all edges. Callers
/// issuing *many* searches should additionally hold a [`SsspWorkspace`] and
/// use [`AStar::search_with`] — the one-shot [`AStar::search`] allocates
/// fresh search state per call.
pub struct AStar<'g> {
    g: &'g SpatialNetwork,
    /// Multiplier for the Euclidean lower bound; `h(v) = scale · dE(v, goal)`.
    scale: f64,
}

impl<'g> AStar<'g> {
    /// Prepares a search context for `g`, scanning edges once to find the
    /// admissible heuristic scale.
    pub fn new(g: &'g SpatialNetwork) -> Self {
        AStar { g, scale: g.min_weight_ratio() }
    }

    /// Prepares a context with a caller-supplied heuristic scale.
    ///
    /// # Panics
    /// Panics if `scale` is negative or non-finite (`0.0` degrades to plain
    /// Dijkstra and is allowed).
    pub fn with_scale(g: &'g SpatialNetwork, scale: f64) -> Self {
        assert!(scale.is_finite() && scale >= 0.0, "heuristic scale must be finite and >= 0");
        AStar { g, scale }
    }

    /// The heuristic scale in use.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Shortest path `source → target`, or `None` when unreachable.
    ///
    /// One-shot convenience over [`AStar::search_with`] with a throwaway
    /// workspace.
    pub fn search(&self, source: VertexId, target: VertexId) -> Option<PathResult> {
        let mut ws = SsspWorkspace::new();
        self.search_with(&mut ws, source, target)
    }

    /// Shortest path `source → target` using a reusable workspace: no
    /// per-search O(n) allocation or zeroing. Results are identical to
    /// [`AStar::search`]; see [`SsspWorkspace`] for reuse guidelines.
    pub fn search_with(
        &self,
        ws: &mut SsspWorkspace,
        source: VertexId,
        target: VertexId,
    ) -> Option<PathResult> {
        dijkstra::astar_search_into(self.g, source, target, self.scale, ws)
    }

    /// Network distance only.
    pub fn distance(&self, source: VertexId, target: VertexId) -> Option<f64> {
        self.search(source, target).map(|r| r.distance)
    }

    /// Network distance only, over a reusable workspace.
    pub fn distance_with(
        &self,
        ws: &mut SsspWorkspace,
        source: VertexId,
        target: VertexId,
    ) -> Option<f64> {
        self.search_with(ws, source, target).map(|r| r.distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{grid_network, GridConfig};
    use crate::{dijkstra, NetworkBuilder};
    use silc_geom::Point;

    #[test]
    fn astar_matches_dijkstra_on_grid() {
        let g = grid_network(&GridConfig { rows: 12, cols: 12, seed: 7, ..Default::default() });
        let a = AStar::new(&g);
        let pairs = [(0u32, 140u32), (5, 77), (12, 12), (3, 100)];
        for &(s, t) in &pairs {
            let (s, t) = (VertexId(s), VertexId(t));
            let ours = a.distance(s, t);
            let truth = dijkstra::distance(&g, s, t);
            match (ours, truth) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{s}->{t}: {x} vs {y}"),
                (None, None) => {}
                other => panic!("reachability mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn astar_visits_no_more_than_dijkstra() {
        let g = grid_network(&GridConfig { rows: 15, cols: 15, seed: 3, ..Default::default() });
        let a = AStar::new(&g);
        let s = VertexId(0);
        let t = VertexId((g.vertex_count() - 1) as u32);
        let astar_visits = a.search(s, t).unwrap().visited;
        let dij_visits = dijkstra::point_to_point(&g, s, t).unwrap().visited;
        assert!(astar_visits <= dij_visits, "A* settled {astar_visits} > Dijkstra {dij_visits}");
    }

    #[test]
    fn zero_scale_is_dijkstra() {
        let g = grid_network(&GridConfig { rows: 6, cols: 6, seed: 1, ..Default::default() });
        let a = AStar::with_scale(&g, 0.0);
        let s = VertexId(0);
        let t = VertexId(35);
        assert_eq!(a.distance(s, t), dijkstra::distance(&g, s, t));
    }

    #[test]
    fn source_equals_target() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge_sym(u, v, 1.0);
        let g = b.build();
        let a = AStar::new(&g);
        let r = a.search(u, u).unwrap();
        assert_eq!(r.distance, 0.0);
        assert_eq!(r.path, vec![u]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        let _w = b.add_vertex(Point::new(2.0, 0.0));
        b.add_edge_sym(u, v, 1.0);
        let g = b.build();
        let a = AStar::new(&g);
        assert!(a.search(u, VertexId(2)).is_none());
    }

    #[test]
    fn search_with_reuse_matches_one_shot() {
        let g = grid_network(&GridConfig { rows: 10, cols: 10, seed: 5, ..Default::default() });
        let a = AStar::new(&g);
        let mut ws = crate::dijkstra::SsspWorkspace::new();
        for &(s, t) in &[(0u32, 99u32), (99, 0), (5, 5), (17, 80), (80, 17)] {
            let (s, t) = (VertexId(s), VertexId(t));
            let one_shot = a.search(s, t);
            let reused = a.search_with(&mut ws, s, t);
            assert_eq!(one_shot, reused, "{s}->{t} differs under workspace reuse");
        }
    }

    #[test]
    #[should_panic(expected = "heuristic scale")]
    fn negative_scale_rejected() {
        let g = NetworkBuilder::new().build();
        AStar::with_scale(&g, -1.0);
    }
}
