//! The spatial network graph.

use serde::{Deserialize, Serialize};
use silc_geom::{Point, Rect};

/// Identifier of a network vertex.
///
/// A thin `u32` newtype: networks of interest (road networks) have well under
/// 2³² vertices and halving the id size keeps adjacency arrays and priority
/// queue entries compact.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A directed, weighted graph with a planar position at every vertex, stored
/// in compressed sparse row (CSR) form.
///
/// Invariants (established by [`NetworkBuilder::build`]):
/// * adjacency lists are sorted by target id (deterministic iteration and
///   `O(log deg)` weight lookup),
/// * all weights are finite and non-negative,
/// * `offsets.len() == vertex_count() + 1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpatialNetwork {
    positions: Vec<Point>,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    bounds: Rect,
    /// Reverse CSR (in-edges), built eagerly at construction: the two-phase
    /// SSSP engine derives parents from final distances by scanning each
    /// vertex's in-edges.
    rev_offsets: Vec<u32>,
    rev_sources: Vec<u32>,
    rev_weights: Vec<f64>,
    /// Cached weight statistics (min/mean/max over all edges), used to size
    /// the SSSP engine's bucket queue. 0.0 on edgeless graphs.
    min_weight: f64,
    mean_weight: f64,
    max_weight: f64,
}

/// Assembles the full network from forward-CSR parts: derives the reverse
/// CSR and the cached weight statistics. Single construction point shared by
/// the builder and deserialization.
fn finalize_network(
    positions: Vec<Point>,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    bounds: Rect,
) -> SpatialNetwork {
    let n = positions.len();
    let m = targets.len();
    let mut rev_offsets = vec![0u32; n + 1];
    for &t in &targets {
        rev_offsets[t as usize + 1] += 1;
    }
    for i in 0..n {
        rev_offsets[i + 1] += rev_offsets[i];
    }
    let mut cursor = rev_offsets.clone();
    let mut rev_sources = vec![0u32; m];
    let mut rev_weights = vec![0.0f64; m];
    for u in 0..n {
        for e in offsets[u] as usize..offsets[u + 1] as usize {
            let t = targets[e] as usize;
            let slot = cursor[t] as usize;
            rev_sources[slot] = u as u32;
            rev_weights[slot] = weights[e];
            cursor[t] += 1;
        }
    }
    // Forward targets are scanned in ascending source order, so each
    // in-edge list is sorted by source id — deterministic iteration.
    let (mut min_w, mut max_w, mut sum_w) = (f64::INFINITY, 0.0f64, 0.0f64);
    for &w in &weights {
        min_w = min_w.min(w);
        max_w = max_w.max(w);
        sum_w += w;
    }
    let (min_weight, mean_weight) = if m == 0 { (0.0, 0.0) } else { (min_w, sum_w / m as f64) };
    SpatialNetwork {
        positions,
        offsets,
        targets,
        weights,
        bounds,
        rev_offsets,
        rev_sources,
        rev_weights,
        min_weight,
        mean_weight,
        max_weight: max_w,
    }
}

impl SpatialNetwork {
    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of directed edges (a two-way road contributes two).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Position of vertex `v`.
    #[inline]
    pub fn position(&self, v: VertexId) -> Point {
        self.positions[v.index()]
    }

    /// All vertex positions, indexed by vertex id.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Bounding rectangle of all vertex positions.
    #[inline]
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.positions.len() as u32).map(VertexId)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Outgoing edges of `v` as `(target, weight)` pairs, sorted by target.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        let i = v.index();
        let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        self.targets[range.clone()]
            .iter()
            .zip(&self.weights[range])
            .map(|(&t, &w)| (VertexId(t), w))
    }

    /// Outgoing edges of `v` as raw parallel `(targets, weights)` slices —
    /// the zero-overhead form the SSSP inner loops iterate; slot `i` of the
    /// pair is the `i`-th sorted out-edge (the SILC color index).
    #[inline]
    pub fn out_edge_slices(&self, v: VertexId) -> (&[u32], &[f64]) {
        let i = v.index();
        let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        (&self.targets[range.clone()], &self.weights[range])
    }

    /// Incoming edges of `v` as raw parallel `(sources, weights)` slices,
    /// sorted by source id. Backed by a reverse CSR built at construction.
    #[inline]
    pub fn in_edge_slices(&self, v: VertexId) -> (&[u32], &[f64]) {
        let i = v.index();
        let range = self.rev_offsets[i] as usize..self.rev_offsets[i + 1] as usize;
        (&self.rev_sources[range.clone()], &self.rev_weights[range])
    }

    /// Smallest edge weight (0.0 for edgeless graphs).
    #[inline]
    pub fn min_weight(&self) -> f64 {
        self.min_weight
    }

    /// Mean edge weight (0.0 for edgeless graphs).
    #[inline]
    pub fn mean_weight(&self) -> f64 {
        self.mean_weight
    }

    /// Largest edge weight (0.0 for edgeless graphs).
    #[inline]
    pub fn max_weight(&self) -> f64 {
        self.max_weight
    }

    /// The `slot`-th outgoing edge of `v` (slots index the sorted adjacency
    /// list; SILC colors are slot indices).
    ///
    /// # Panics
    /// Panics if `slot >= out_degree(v)`.
    #[inline]
    pub fn out_edge(&self, v: VertexId, slot: usize) -> (VertexId, f64) {
        let base = self.offsets[v.index()] as usize;
        debug_assert!(slot < self.out_degree(v));
        (VertexId(self.targets[base + slot]), self.weights[base + slot])
    }

    /// The weight of edge `u → v`, or `None` when absent. `O(log deg(u))`.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let i = u.index();
        let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        let slice = &self.targets[range.clone()];
        slice.binary_search(&v.0).ok().map(|pos| self.weights[range.start + pos])
    }

    /// The slot index of edge `u → v` in `u`'s adjacency list, or `None`.
    pub fn edge_slot(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let i = u.index();
        let range = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        self.targets[range].binary_search(&v.0).ok()
    }

    /// Euclidean distance between the positions of `u` and `v`.
    #[inline]
    pub fn euclidean(&self, u: VertexId, v: VertexId) -> f64 {
        self.position(u).distance(&self.position(v))
    }

    /// The minimum over all edges of `weight / euclidean_length`.
    ///
    /// Scaling Euclidean distances by this ratio yields an admissible A*
    /// heuristic and a valid network-distance lower bound. Edges between
    /// coincident points are skipped; returns 1.0 for edgeless graphs,
    /// capped at 1.0 since the trivial bound `d_N ≥ 0` must stay valid for
    /// ratio-based reasoning on arbitrary vertex pairs.
    pub fn min_weight_ratio(&self) -> f64 {
        let mut ratio = f64::INFINITY;
        for u in self.vertices() {
            for (v, w) in self.out_edges(u) {
                let e = self.euclidean(u, v);
                if e > 0.0 {
                    ratio = ratio.min(w / e);
                }
            }
        }
        if ratio.is_finite() {
            ratio.clamp(0.0, 1.0)
        } else {
            1.0
        }
    }

    /// The vertex whose position is nearest to `p` (linear scan; use a
    /// spatial index for repeated queries).
    pub fn nearest_vertex(&self, p: &Point) -> Option<VertexId> {
        self.positions
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.distance_sq(p).partial_cmp(&b.distance_sq(p)).expect("positions are finite")
            })
            .map(|(i, _)| VertexId(i as u32))
    }

    /// Raw parts, for serialization.
    pub(crate) fn into_parts(self) -> (Vec<Point>, Vec<u32>, Vec<u32>, Vec<f64>) {
        (self.positions, self.offsets, self.targets, self.weights)
    }

    /// Rebuilds from raw parts, revalidating the CSR invariants.
    pub(crate) fn from_parts(
        positions: Vec<Point>,
        offsets: Vec<u32>,
        targets: Vec<u32>,
        weights: Vec<f64>,
    ) -> Result<Self, String> {
        if offsets.len() != positions.len() + 1 {
            return Err("offsets length mismatch".into());
        }
        if targets.len() != weights.len() {
            return Err("targets/weights length mismatch".into());
        }
        if *offsets.last().unwrap_or(&0) as usize != targets.len() {
            return Err("final offset does not match edge count".into());
        }
        let n = positions.len() as u32;
        if targets.iter().any(|&t| t >= n) {
            return Err("edge target out of range".into());
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err("non-finite or negative edge weight".into());
        }
        let bounds = Rect::bounding(&positions).unwrap_or_else(|| Rect::new(0.0, 0.0, 1.0, 1.0));
        Ok(finalize_network(positions, offsets, targets, weights, bounds))
    }
}

/// Incremental builder for [`SpatialNetwork`].
#[derive(Debug, Default, Clone)]
pub struct NetworkBuilder {
    positions: Vec<Point>,
    edges: Vec<(u32, u32, f64)>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with preallocated capacity.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        NetworkBuilder { positions: Vec::with_capacity(vertices), edges: Vec::with_capacity(edges) }
    }

    /// Adds a vertex at `p`, returning its id.
    ///
    /// # Panics
    /// Panics if `p` has non-finite coordinates.
    pub fn add_vertex(&mut self, p: Point) -> VertexId {
        assert!(p.is_finite(), "vertex position must be finite");
        let id = VertexId(self.positions.len() as u32);
        self.positions.push(p);
        id
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// Adds a directed edge `u → v` with travel cost `w`.
    ///
    /// # Panics
    /// Panics if either endpoint is unknown, if `w` is negative or
    /// non-finite, or on a self loop.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: f64) {
        assert!(u.index() < self.positions.len(), "unknown source vertex {u}");
        assert!(v.index() < self.positions.len(), "unknown target vertex {v}");
        assert!(w.is_finite() && w >= 0.0, "edge weight must be finite and non-negative");
        assert_ne!(u, v, "self loops are not allowed in spatial networks");
        self.edges.push((u.0, v.0, w));
    }

    /// Adds the two directed edges of a two-way road segment.
    pub fn add_edge_sym(&mut self, u: VertexId, v: VertexId, w: f64) {
        self.add_edge(u, v, w);
        self.add_edge(v, u, w);
    }

    /// Adds a two-way road whose cost is the Euclidean length times
    /// `detour_factor` (≥ 1 for realistic roads).
    pub fn add_road(&mut self, u: VertexId, v: VertexId, detour_factor: f64) {
        let w = self.positions[u.index()].distance(&self.positions[v.index()]) * detour_factor;
        self.add_edge_sym(u, v, w);
    }

    /// Finalizes the CSR representation. Duplicate parallel edges are merged
    /// keeping the cheapest weight.
    pub fn build(mut self) -> SpatialNetwork {
        let n = self.positions.len();
        // Sort by (source, target, weight); dedup keeps the first = cheapest.
        self.edges.sort_by(|a, b| {
            (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.partial_cmp(&b.2).expect("finite weights"))
        });
        self.edges.dedup_by_key(|e| (e.0, e.1));

        let mut offsets = vec![0u32; n + 1];
        for &(u, _, _) in &self.edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<u32> = self.edges.iter().map(|e| e.1).collect();
        let weights: Vec<f64> = self.edges.iter().map(|e| e.2).collect();
        let bounds =
            Rect::bounding(&self.positions).unwrap_or_else(|| Rect::new(0.0, 0.0, 1.0, 1.0));
        finalize_network(self.positions, offsets, targets, weights, bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the small test network used throughout this module:
    ///
    /// ```text
    ///   2 --- 3
    ///   |     |
    ///   0 --- 1
    /// ```
    fn square() -> SpatialNetwork {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(1.0, 0.0));
        let v2 = b.add_vertex(Point::new(0.0, 1.0));
        let v3 = b.add_vertex(Point::new(1.0, 1.0));
        b.add_edge_sym(v0, v1, 1.0);
        b.add_edge_sym(v0, v2, 1.0);
        b.add_edge_sym(v1, v3, 1.0);
        b.add_edge_sym(v2, v3, 1.5);
        b.build()
    }

    #[test]
    fn counts() {
        let g = square();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 8);
    }

    #[test]
    fn adjacency_sorted_by_target() {
        let g = square();
        let targets: Vec<u32> = g.out_edges(VertexId(0)).map(|(v, _)| v.0).collect();
        assert_eq!(targets, vec![1, 2]);
        let targets: Vec<u32> = g.out_edges(VertexId(3)).map(|(v, _)| v.0).collect();
        assert_eq!(targets, vec![1, 2]);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = square();
        assert_eq!(g.edge_weight(VertexId(2), VertexId(3)), Some(1.5));
        assert_eq!(g.edge_weight(VertexId(3), VertexId(2)), Some(1.5));
        assert_eq!(g.edge_weight(VertexId(0), VertexId(3)), None);
    }

    #[test]
    fn edge_slot_matches_out_edge() {
        let g = square();
        for u in g.vertices() {
            for (slot, (v, w)) in g.out_edges(u).enumerate() {
                assert_eq!(g.edge_slot(u, v), Some(slot));
                assert_eq!(g.out_edge(u, slot), (v, w));
            }
        }
    }

    #[test]
    fn duplicate_edges_keep_cheapest() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(1.0, 0.0));
        b.add_edge(u, v, 5.0);
        b.add_edge(u, v, 2.0);
        b.add_edge(u, v, 9.0);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(u, v), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loop_rejected() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        b.add_edge(u, u, 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown target")]
    fn unknown_vertex_rejected() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        b.add_edge(u, VertexId(7), 1.0);
    }

    #[test]
    fn bounds_cover_positions() {
        let g = square();
        assert_eq!(*g.bounds(), Rect::new(0.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn nearest_vertex_finds_closest() {
        let g = square();
        assert_eq!(g.nearest_vertex(&Point::new(0.1, 0.2)), Some(VertexId(0)));
        assert_eq!(g.nearest_vertex(&Point::new(0.9, 0.9)), Some(VertexId(3)));
    }

    #[test]
    fn min_weight_ratio_of_unit_square() {
        let g = square();
        // All weights equal Euclidean length except 2-3 (1.5 > 1.0), so the
        // minimum ratio is 1.0 (capped).
        assert_eq!(g.min_weight_ratio(), 1.0);
    }

    #[test]
    fn min_weight_ratio_detects_shortcuts() {
        let mut b = NetworkBuilder::new();
        let u = b.add_vertex(Point::new(0.0, 0.0));
        let v = b.add_vertex(Point::new(2.0, 0.0));
        b.add_edge(u, v, 1.0); // weight below Euclidean length
        let g = b.build();
        assert_eq!(g.min_weight_ratio(), 0.5);
    }

    #[test]
    fn empty_network() {
        let g = NetworkBuilder::new().build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.min_weight_ratio(), 1.0);
        assert_eq!(g.nearest_vertex(&Point::new(0.0, 0.0)), None);
    }

    #[test]
    fn roundtrip_parts() {
        let g = square();
        let (p, o, t, w) = g.clone().into_parts();
        let g2 = SpatialNetwork::from_parts(p, o, t, w).unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.edge_weight(VertexId(2), VertexId(3)), Some(1.5));
    }

    #[test]
    fn from_parts_validates() {
        assert!(SpatialNetwork::from_parts(vec![Point::new(0.0, 0.0)], vec![0], vec![], vec![])
            .is_err()); // offsets too short
        assert!(SpatialNetwork::from_parts(
            vec![Point::new(0.0, 0.0)],
            vec![0, 1],
            vec![5],
            vec![1.0]
        )
        .is_err()); // target out of range
        assert!(SpatialNetwork::from_parts(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            vec![0, 1, 1],
            vec![1],
            vec![f64::NAN]
        )
        .is_err()); // NaN weight
    }
}
