//! Spatial partitioning of a network into vertex-disjoint shards.
//!
//! The SILC precomputation runs one full-graph SSSP per vertex — the
//! O(n²·log n) wall the paper flags as the framework's scaling limit. The
//! standard way through it is spatial: split the network into k
//! vertex-disjoint cells, build one index per cell over the cell's
//! *induced* subnetwork (every SSSP stops at the cell boundary), and track
//! the cut edges so a query layer can reason soundly about paths that
//! cross between cells. Total precompute work drops from n full-graph
//! SSSPs to Σ per-shard work — a k-fold reduction for balanced shards.
//!
//! The partitioner here grows k regions simultaneously over the graph's
//! undirected adjacency, seeded at evenly spaced ranks of the vertices'
//! Morton order (so seeds spread over space, and regions stay spatially
//! coherent). At each step the currently smallest region claims one
//! unclaimed frontier vertex; ties break by region id, so the result is
//! deterministic. Growing over adjacency — rather than cutting Morton
//! ranges directly — guarantees every shard's induced subnetwork is
//! *weakly connected*, which for symmetric networks (every generator in
//! this crate) means strongly connected, the precondition for building a
//! SILC index over the shard.
//!
//! Known limits (tracked in the roadmap): a shard of a *directed* network
//! can be weakly but not strongly connected, in which case the per-shard
//! index build reports the unreachable pair; and the partition is static —
//! there is no incremental re-balancing when the network changes.

use crate::{NetworkBuilder, SpatialNetwork, VertexId};
use silc_geom::GridMapper;
use silc_morton::MortonCode;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Configuration for [`partition_network`].
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Number of shards to aim for (clamped to the vertex count). Shards
    /// that end up undersized (see `min_shard_fraction`) are merged away,
    /// so the final count can be lower.
    pub shards: usize,
    /// Grid exponent of the Morton order used to place the k seeds
    /// (clamped to `1..=16`). Only seed placement depends on it.
    pub grid_exponent: u32,
    /// Minimum shard size as a fraction of the balanced size `n / shards`
    /// (clamped to `0.0..=1.0`). A region whose frontier is exhausted by
    /// its neighbors before it reaches this floor is merged into its
    /// Morton-nearest adjacent region instead of surviving as a straggler
    /// shard. `0.0` disables merging.
    pub min_shard_fraction: f64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig { shards: 8, grid_exponent: 10, min_shard_fraction: 0.25 }
    }
}

/// Why a network could not be partitioned.
#[derive(Debug)]
pub enum PartitionError {
    /// The network has no vertices.
    Empty,
    /// The network is not connected even undirected: region growth claimed
    /// `reached` of `total` vertices and ran out of frontier.
    Disconnected {
        /// Vertices the k growing regions reached.
        reached: usize,
        /// Vertices in the network.
        total: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Empty => write!(f, "cannot partition an empty network"),
            PartitionError::Disconnected { reached, total } => {
                write!(f, "network is disconnected: regions reached {reached} of {total} vertices")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A directed edge whose endpoints live in different shards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutEdge {
    /// Global id of the edge's source.
    pub source: VertexId,
    /// Global id of the edge's target.
    pub target: VertexId,
    /// Edge weight.
    pub weight: f64,
}

/// One cell of a [`NetworkPartition`]: the induced subnetwork plus the
/// local↔global id maps and the exit frontier.
pub struct Shard {
    network: Arc<SpatialNetwork>,
    globals: Vec<VertexId>,
    exit_frontier: Vec<(u32, f64)>,
}

impl Shard {
    /// The induced subnetwork over the shard's vertices (local ids).
    pub fn network(&self) -> &SpatialNetwork {
        &self.network
    }

    /// The induced subnetwork, shareable.
    pub fn network_arc(&self) -> &Arc<SpatialNetwork> {
        &self.network
    }

    /// Number of vertices in the shard.
    pub fn vertex_count(&self) -> usize {
        self.globals.len()
    }

    /// Global ids in local-id order (ascending by global id).
    pub fn globals(&self) -> &[VertexId] {
        &self.globals
    }

    /// Maps a local vertex id back to its global id.
    pub fn to_global(&self, local: u32) -> VertexId {
        self.globals[local as usize]
    }

    /// The shard's exit frontier: each `(local id, w)` is a vertex with at
    /// least one *outgoing* cut edge, and `w` is the minimum weight among
    /// its outgoing cut edges. Any path leaving the shard pays at least
    /// the within-shard distance to some frontier vertex plus its `w` —
    /// the lower bound the cross-shard query router builds on.
    pub fn exit_frontier(&self) -> &[(u32, f64)] {
        &self.exit_frontier
    }
}

/// A spatial split of a network into k vertex-disjoint shards plus the
/// cut-edge frontier between them. Produced by [`partition_network`].
pub struct NetworkPartition {
    shard_of: Vec<u32>,
    local_of: Vec<u32>,
    shards: Vec<Shard>,
    cut_edges: Vec<CutEdge>,
}

impl NetworkPartition {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// All shards, indexed by shard id.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard.
    pub fn shard(&self, s: usize) -> &Shard {
        &self.shards[s]
    }

    /// Shard id of a global vertex.
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.shard_of[v.index()] as usize
    }

    /// Local id of a global vertex within its shard.
    pub fn local_of(&self, v: VertexId) -> u32 {
        self.local_of[v.index()]
    }

    /// Maps `(shard, local id)` back to the global vertex id.
    pub fn to_global(&self, shard: usize, local: u32) -> VertexId {
        self.shards[shard].to_global(local)
    }

    /// All directed edges whose endpoints live in different shards,
    /// grouped by source shard.
    pub fn cut_edges(&self) -> &[CutEdge] {
        &self.cut_edges
    }

    /// Per shard, the sorted, deduplicated local ids of every cut-edge
    /// endpoint (sources of outgoing cuts and targets of incoming ones).
    /// This is the vertex set of the cross-shard frontier graph: every
    /// path between shards enters and leaves through these vertices, so
    /// precomputed distances between them (the frontier-distance tier) and
    /// the per-query frontier Dijkstra both index frontier vertices by
    /// rank in exactly this order.
    pub fn frontier_members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.shards.len()];
        for e in &self.cut_edges {
            out[self.shard_of(e.source)].push(self.local_of(e.source));
            out[self.shard_of(e.target)].push(self.local_of(e.target));
        }
        for m in &mut out {
            m.sort_unstable();
            m.dedup();
        }
        out
    }
}

/// Splits `g` into `cfg.shards` vertex-disjoint shards (see the module
/// docs for the algorithm). Fails on empty networks, and on disconnected
/// networks whenever region growth cannot reach every vertex (a component
/// containing no seed); run [`crate::analysis::largest_component`] first
/// for inputs that may be disconnected.
pub fn partition_network(
    g: &SpatialNetwork,
    cfg: &PartitionConfig,
) -> Result<NetworkPartition, PartitionError> {
    let n = g.vertex_count();
    if n == 0 {
        return Err(PartitionError::Empty);
    }
    let k = cfg.shards.clamp(1, n);

    // Morton order of the vertices; seeds go at evenly spaced ranks so
    // they spread over the occupied space, not the bounding box.
    let mapper = GridMapper::new(*g.bounds(), cfg.grid_exponent.clamp(1, 16));
    let codes: Vec<u64> =
        g.positions().iter().map(|p| MortonCode::encode(mapper.to_grid(p)).value()).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| (codes[v as usize], v));

    const UNCLAIMED: u32 = u32::MAX;
    let mut shard_of = vec![UNCLAIMED; n];
    let mut queues: Vec<VecDeque<u32>> = vec![VecDeque::new(); k];
    let mut sizes = vec![0usize; k];

    let push_neighbors = |v: u32, queue: &mut VecDeque<u32>, shard_of: &[u32]| {
        let (out, _) = g.out_edge_slices(VertexId(v));
        let (inc, _) = g.in_edge_slices(VertexId(v));
        for &t in out.iter().chain(inc) {
            if shard_of[t as usize] == UNCLAIMED {
                queue.push_back(t);
            }
        }
    };

    for (r, queue) in queues.iter_mut().enumerate() {
        // Ranks r·n/k are strictly increasing for k ≤ n, so seeds are
        // distinct vertices.
        let seed = order[r * n / k];
        shard_of[seed as usize] = r as u32;
        sizes[r] = 1;
        push_neighbors(seed, queue, &shard_of);
    }

    let mut claimed = k;
    while claimed < n {
        // The smallest region with a live frontier grows by one vertex;
        // ties break by region id for determinism.
        let mut best: Option<usize> = None;
        for r in 0..k {
            if !queues[r].is_empty() && best.is_none_or(|b| sizes[r] < sizes[b]) {
                best = Some(r);
            }
        }
        let Some(r) = best else {
            return Err(PartitionError::Disconnected { reached: claimed, total: n });
        };
        while let Some(v) = queues[r].pop_front() {
            if shard_of[v as usize] != UNCLAIMED {
                continue; // claimed since it was enqueued
            }
            shard_of[v as usize] = r as u32;
            sizes[r] += 1;
            claimed += 1;
            let mut queue = std::mem::take(&mut queues[r]);
            push_neighbors(v, &mut queue, &shard_of);
            queues[r] = queue;
            break;
        }
    }

    // Merge pass: a region whose frontier was exhausted by its neighbors
    // can finish far below the balanced size, leaving a straggler shard
    // whose index pays full per-shard overhead for a handful of vertices.
    // Fold every region below the floor into its Morton-nearest adjacent
    // region (seed ids are Morton-ordered, so nearest id ≈ nearest seed),
    // smallest region first, until none remain under the floor.
    let floor = (cfg.min_shard_fraction.clamp(0.0, 1.0) * (n as f64 / k as f64)).floor() as usize;
    let k = if floor > 1 && k > 1 {
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
        for v in 0..n as u32 {
            members[shard_of[v as usize] as usize].push(v);
        }
        // Isolated components can have no neighbor to merge into; freeze
        // them instead of spinning.
        let mut frozen = vec![false; k];
        loop {
            let mut small: Option<usize> = None;
            for r in 0..k {
                let sz = members[r].len();
                if sz > 0
                    && sz < floor
                    && !frozen[r]
                    && small.is_none_or(|b| (sz, r) < (members[b].len(), b))
                {
                    small = Some(r);
                }
            }
            let Some(s) = small else { break };
            let mut best: Option<usize> = None;
            for &v in &members[s] {
                let (out, _) = g.out_edge_slices(VertexId(v));
                let (inc, _) = g.in_edge_slices(VertexId(v));
                for &t in out.iter().chain(inc) {
                    let r = shard_of[t as usize] as usize;
                    if r != s && best.is_none_or(|b| (r.abs_diff(s), r) < (b.abs_diff(s), b)) {
                        best = Some(r);
                    }
                }
            }
            match best {
                Some(t) => {
                    for &v in &members[s] {
                        shard_of[v as usize] = t as u32;
                    }
                    let moved = std::mem::take(&mut members[s]);
                    members[t].extend(moved);
                }
                None => frozen[s] = true,
            }
        }
        // Compact shard ids over the surviving regions, preserving order.
        let mut remap = vec![u32::MAX; k];
        let mut live = 0u32;
        for (r, m) in members.iter().enumerate() {
            if !m.is_empty() {
                remap[r] = live;
                live += 1;
            }
        }
        for s in &mut shard_of {
            *s = remap[*s as usize];
        }
        live as usize
    } else {
        k
    };

    // Extract the induced subnetworks. Local ids are ascending global ids,
    // so the maps are deterministic and binary-search friendly.
    let mut globals: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for v in 0..n as u32 {
        globals[shard_of[v as usize] as usize].push(VertexId(v));
    }
    let mut local_of = vec![0u32; n];
    for shard_globals in &globals {
        for (i, &v) in shard_globals.iter().enumerate() {
            local_of[v.index()] = i as u32;
        }
    }

    let mut cut_edges = Vec::new();
    let mut shards = Vec::with_capacity(k);
    for (s, shard_globals) in globals.into_iter().enumerate() {
        let mut b = NetworkBuilder::with_capacity(shard_globals.len(), 0);
        for &v in &shard_globals {
            b.add_vertex(g.position(v));
        }
        let mut min_exit = vec![f64::INFINITY; shard_globals.len()];
        for (i, &v) in shard_globals.iter().enumerate() {
            for (t, w) in g.out_edges(v) {
                if shard_of[t.index()] == s as u32 {
                    b.add_edge(VertexId(i as u32), VertexId(local_of[t.index()]), w);
                } else {
                    cut_edges.push(CutEdge { source: v, target: t, weight: w });
                    min_exit[i] = min_exit[i].min(w);
                }
            }
        }
        let exit_frontier = min_exit
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_finite())
            .map(|(i, &w)| (i as u32, w))
            .collect();
        shards.push(Shard { network: Arc::new(b.build()), globals: shard_globals, exit_frontier });
    }

    Ok(NetworkPartition { shard_of, local_of, shards, cut_edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_strongly_connected;
    use crate::generate::{road_network, RoadConfig};
    use silc_geom::Point;

    fn partition(n: usize, k: usize, seed: u64) -> (SpatialNetwork, NetworkPartition) {
        let g = road_network(&RoadConfig { vertices: n, seed, ..Default::default() });
        let p = partition_network(&g, &PartitionConfig { shards: k, ..Default::default() })
            .expect("generated road networks are connected");
        (g, p)
    }

    #[test]
    fn cover_is_disjoint_and_complete() {
        let (g, p) = partition(300, 5, 7);
        assert_eq!(p.shard_count(), 5);
        let total: usize = p.shards().iter().map(Shard::vertex_count).sum();
        assert_eq!(total, g.vertex_count());
        for v in g.vertices() {
            let s = p.shard_of(v);
            let local = p.local_of(v);
            assert_eq!(p.to_global(s, local), v, "local↔global maps must invert");
            assert_eq!(p.shard(s).network().position(VertexId(local)), g.position(v));
        }
    }

    #[test]
    fn shards_are_reasonably_balanced_and_connected() {
        let (g, p) = partition(400, 8, 11);
        let sizes: Vec<usize> = p.shards().iter().map(Shard::vertex_count).collect();
        let avg = g.vertex_count() / p.shard_count();
        assert!(sizes.iter().all(|&s| s >= 1));
        assert!(
            *sizes.iter().max().unwrap() <= 2 * avg,
            "smallest-first growth keeps shards balanced: {sizes:?}"
        );
        for shard in p.shards() {
            // Symmetric input ⇒ weakly connected shards are strongly
            // connected — the precondition for a per-shard SILC build.
            assert!(is_strongly_connected(shard.network()));
        }
    }

    #[test]
    fn cut_edges_and_exit_frontier_are_exact() {
        let (g, p) = partition(250, 4, 3);
        let intra: usize = p.shards().iter().map(|s| s.network().edge_count()).sum();
        assert_eq!(intra + p.cut_edges().len(), g.edge_count());
        for e in p.cut_edges() {
            assert_ne!(p.shard_of(e.source), p.shard_of(e.target));
            assert_eq!(g.edge_weight(e.source, e.target), Some(e.weight));
        }
        // Recompute each shard's exit frontier from the cut-edge list.
        for (s, shard) in p.shards().iter().enumerate() {
            let mut want: Vec<(u32, f64)> = Vec::new();
            for (local, &v) in shard.globals().iter().enumerate() {
                let min_w = p
                    .cut_edges()
                    .iter()
                    .filter(|e| e.source == v)
                    .map(|e| e.weight)
                    .fold(f64::INFINITY, f64::min);
                if min_w.is_finite() {
                    want.push((local as u32, min_w));
                }
            }
            assert_eq!(shard.exit_frontier(), &want[..], "shard {s}");
        }
    }

    #[test]
    fn intra_shard_edges_keep_weights() {
        let (g, p) = partition(120, 3, 21);
        for shard in p.shards() {
            for (local, &v) in shard.globals().iter().enumerate() {
                for (t_local, w) in shard.network().out_edges(VertexId(local as u32)) {
                    let t = shard.to_global(t_local.0);
                    assert_eq!(g.edge_weight(v, t), Some(w));
                }
            }
        }
    }

    #[test]
    fn partitioning_is_deterministic() {
        let (_, a) = partition(200, 6, 5);
        let (_, b) = partition(200, 6, 5);
        assert_eq!(a.shard_of, b.shard_of);
        assert_eq!(a.cut_edges().len(), b.cut_edges().len());
    }

    #[test]
    fn undersized_shards_are_merged_to_the_floor() {
        let g = road_network(&RoadConfig { vertices: 400, seed: 11, ..Default::default() });
        for fraction in [0.25, 0.5, 0.75] {
            let cfg =
                PartitionConfig { shards: 8, min_shard_fraction: fraction, ..Default::default() };
            let p = partition_network(&g, &cfg).unwrap();
            let floor = (fraction * 400.0 / 8.0).floor() as usize;
            for (s, shard) in p.shards().iter().enumerate() {
                assert!(
                    shard.vertex_count() >= floor,
                    "shard {s} has {} vertices, floor {floor} (fraction {fraction})",
                    shard.vertex_count()
                );
                assert!(is_strongly_connected(shard.network()), "merged shard {s} stays connected");
            }
        }
        // Disabling the floor keeps every grown region, merged or not.
        let off = PartitionConfig { shards: 8, min_shard_fraction: 0.0, ..Default::default() };
        assert_eq!(partition_network(&g, &off).unwrap().shard_count(), 8);
    }

    #[test]
    fn frontier_members_are_exactly_the_cut_endpoints() {
        let (_, p) = partition(250, 4, 3);
        let members = p.frontier_members();
        assert_eq!(members.len(), p.shard_count());
        for (s, m) in members.iter().enumerate() {
            assert!(m.windows(2).all(|w| w[0] < w[1]), "shard {s} members sorted and unique");
            for &local in m {
                let global = p.shard(s).to_global(local);
                let touches_cut =
                    p.cut_edges().iter().any(|e| e.source == global || e.target == global);
                assert!(touches_cut, "shard {s} local {local} must touch a cut edge");
            }
        }
        let listed: usize = members.iter().map(Vec::len).sum();
        let mut endpoints: Vec<VertexId> =
            p.cut_edges().iter().flat_map(|e| [e.source, e.target]).collect();
        endpoints.sort_unstable_by_key(|v| v.0);
        endpoints.dedup();
        assert_eq!(listed, endpoints.len(), "every endpoint listed exactly once");
    }

    #[test]
    fn single_shard_has_no_cut() {
        let (g, p) = partition(80, 1, 2);
        assert_eq!(p.shard_count(), 1);
        assert!(p.cut_edges().is_empty());
        assert!(p.shard(0).exit_frontier().is_empty());
        assert_eq!(p.shard(0).network().edge_count(), g.edge_count());
    }

    #[test]
    fn more_shards_than_vertices_clamps() {
        let (g, p) = partition(10, 64, 1);
        assert_eq!(p.shard_count(), g.vertex_count());
        assert!(p.shards().iter().all(|s| s.vertex_count() == 1));
    }

    #[test]
    fn empty_and_disconnected_inputs_fail() {
        let empty = NetworkBuilder::new().build();
        assert!(matches!(
            partition_network(&empty, &PartitionConfig::default()),
            Err(PartitionError::Empty)
        ));

        // Two disjoint triangles.
        let mut b = NetworkBuilder::new();
        for i in 0..6 {
            let x = f64::from(i % 3) + if i < 3 { 0.0 } else { 100.0 };
            b.add_vertex(Point::new(x, f64::from(i / 3)));
        }
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge_sym(VertexId(u), VertexId(v), 1.0);
        }
        let g = b.build();
        // One seed cannot reach the second triangle.
        match partition_network(&g, &PartitionConfig { shards: 1, ..Default::default() }) {
            Err(PartitionError::Disconnected { reached, total }) => {
                assert_eq!((reached, total), (3, 6));
            }
            other => panic!("expected Disconnected, got {:?}", other.map(|_| ())),
        }
        // With one seed per component the growth covers everything — the
        // components simply become separate shards with an empty cut.
        let p = partition_network(&g, &PartitionConfig { shards: 2, ..Default::default() })
            .expect("two seeds cover two components");
        assert!(p.cut_edges().is_empty());
    }
}
