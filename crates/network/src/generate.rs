//! Synthetic road-network generators.
//!
//! The paper evaluates on a TIGER-derived extract of the US eastern seaboard
//! (91,113 vertices, 114,176 edges — "important roads", so a sparse,
//! near-planar network with m/n ≈ 1.25 and near-Euclidean edge costs). We do
//! not have that proprietary extract; these generators produce synthetic
//! networks with the same structural properties SILC's guarantees rest on:
//! planar embedding, spatial coherence of shortest paths, and edge weights
//! proportional to geometric length.
//!
//! * [`grid_network`] — a perturbed partial grid: guaranteed connected via a
//!   random spanning tree, plus a tunable fraction of the remaining grid
//!   edges. Fast and parameter-free enough for unit tests.
//! * [`road_network`] — random points joined by a Gabriel-style proximity
//!   graph, thinned to a target edge/vertex ratio on top of a Euclidean
//!   minimum spanning tree. This is the workload generator the experiment
//!   harness uses.

use crate::analysis::DisjointSets;
use crate::{NetworkBuilder, SpatialNetwork, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silc_geom::Point;

/// Configuration for [`grid_network`].
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Grid rows (vertices along y).
    pub rows: usize,
    /// Grid columns (vertices along x).
    pub cols: usize,
    /// World-space distance between neighboring grid points.
    pub spacing: f64,
    /// Position jitter as a fraction of `spacing` (kept < 0.5 so neighbor
    /// geometry stays sane).
    pub jitter: f64,
    /// Probability of keeping each non-spanning-tree grid edge.
    pub keep_prob: f64,
    /// Edge weight is Euclidean length × `(1 + U(0, detour))`.
    pub detour: f64,
    /// RNG seed; equal seeds produce identical networks.
    pub seed: u64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            rows: 16,
            cols: 16,
            spacing: 1.0,
            jitter: 0.25,
            keep_prob: 0.85,
            detour: 0.2,
            seed: 42,
        }
    }
}

/// Generates a connected, perturbed partial-grid road network.
///
/// All `rows × cols` vertices are present and mutually reachable: a uniform
/// random spanning tree (via random edge weights + Kruskal) is always kept,
/// and every other grid edge survives with probability `keep_prob`.
pub fn grid_network(cfg: &GridConfig) -> SpatialNetwork {
    assert!(cfg.rows >= 1 && cfg.cols >= 1, "grid must be at least 1x1");
    assert!(cfg.jitter >= 0.0 && cfg.jitter < 0.5, "jitter must be in [0, 0.5)");
    assert!((0.0..=1.0).contains(&cfg.keep_prob), "keep_prob must be a probability");
    assert!(cfg.detour >= 0.0, "detour must be non-negative");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = NetworkBuilder::with_capacity(cfg.rows * cfg.cols, cfg.rows * cfg.cols * 4);

    let at = |r: usize, c: usize| VertexId((r * cfg.cols + c) as u32);
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            let jx = rng.gen_range(-cfg.jitter..=cfg.jitter) * cfg.spacing;
            let jy = rng.gen_range(-cfg.jitter..=cfg.jitter) * cfg.spacing;
            b.add_vertex(Point::new(c as f64 * cfg.spacing + jx, r as f64 * cfg.spacing + jy));
        }
    }

    // Candidate edges: right and up neighbors, each tagged with a random
    // priority; Kruskal over priorities yields a uniform-ish spanning tree.
    let mut candidates: Vec<(f64, VertexId, VertexId)> = Vec::new();
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            if c + 1 < cfg.cols {
                candidates.push((rng.gen::<f64>(), at(r, c), at(r, c + 1)));
            }
            if r + 1 < cfg.rows {
                candidates.push((rng.gen::<f64>(), at(r, c), at(r + 1, c)));
            }
        }
    }
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut sets = DisjointSets::new(cfg.rows * cfg.cols);
    for &(_, u, v) in &candidates {
        let in_tree = sets.union(u.0, v.0);
        if in_tree || rng.gen::<f64>() < cfg.keep_prob {
            let detour = 1.0 + rng.gen_range(0.0..=cfg.detour);
            b.add_road(u, v, detour);
        }
    }
    b.build()
}

/// Configuration for [`road_network`].
#[derive(Debug, Clone)]
pub struct RoadConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Target undirected-edge/vertex ratio. The paper's network has ≈ 1.25.
    /// Values above the proximity graph's natural density (≈ 2) are capped.
    pub edge_factor: f64,
    /// Edge weight is Euclidean length × `(1 + U(0, detour))`.
    pub detour: f64,
    /// Side length of the square world the points are scattered in.
    pub extent: f64,
    /// RNG seed; equal seeds produce identical networks.
    pub seed: u64,
}

impl Default for RoadConfig {
    fn default() -> Self {
        RoadConfig { vertices: 1000, edge_factor: 1.25, detour: 0.2, extent: 1000.0, seed: 42 }
    }
}

/// Generates a connected road-like network from random points.
///
/// Pipeline: scatter points uniformly; build a Gabriel-style proximity graph
/// using a uniform cell grid (an edge `(u,v)` is kept when no third point
/// lies inside the circle with diameter `uv`, tested among each point's
/// nearby candidates); take its Euclidean minimum spanning tree to guarantee
/// connectivity; then add the shortest remaining proximity edges until the
/// undirected edge count reaches `edge_factor × n`.
pub fn road_network(cfg: &RoadConfig) -> SpatialNetwork {
    assert!(cfg.vertices >= 2, "need at least two vertices");
    assert!(cfg.edge_factor >= 1.0, "edge_factor below 1.0 cannot stay connected");
    assert!(cfg.extent > 0.0, "extent must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.vertices;
    let points: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..cfg.extent), rng.gen_range(0.0..cfg.extent)))
        .collect();

    let edges = gabriel_edges(&points, cfg.extent);

    // Kruskal MST over the proximity edges for guaranteed connectivity.
    let mut by_len: Vec<(f64, u32, u32)> = edges
        .iter()
        .map(|&(u, v)| (points[u as usize].distance(&points[v as usize]), u, v))
        .collect();
    by_len.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| (a.1, a.2).cmp(&(b.1, b.2))));

    let mut sets = DisjointSets::new(n);
    let mut chosen: Vec<(u32, u32)> = Vec::with_capacity(n * 2);
    let mut extras: Vec<(u32, u32)> = Vec::new();
    for &(_, u, v) in &by_len {
        if sets.union(u, v) {
            chosen.push((u, v));
        } else {
            extras.push((u, v));
        }
    }
    let target = ((cfg.edge_factor * n as f64).ceil() as usize).max(chosen.len());
    for &(u, v) in extras.iter() {
        if chosen.len() >= target {
            break;
        }
        chosen.push((u, v));
    }

    let mut b = NetworkBuilder::with_capacity(n, chosen.len() * 2);
    for &p in &points {
        b.add_vertex(p);
    }
    for &(u, v) in &chosen {
        let detour = 1.0 + rng.gen_range(0.0..=cfg.detour.max(f64::MIN_POSITIVE));
        b.add_road(VertexId(u), VertexId(v), detour);
    }
    let g = b.build();
    debug_assert!(crate::analysis::is_strongly_connected(&g));
    g
}

/// Gabriel-style proximity edges among `points`, computed with a uniform
/// cell grid: candidate neighbors are drawn from the surrounding cells, and
/// the empty-diametral-circle test runs against points near the midpoint.
fn gabriel_edges(points: &[Point], extent: f64) -> Vec<(u32, u32)> {
    let n = points.len();
    // ~2 points per cell on average.
    let cells_per_side = ((n as f64 / 2.0).sqrt().ceil() as usize).max(1);
    let cell = extent / cells_per_side as f64;
    let grid = CellGrid::build(points, cell, cells_per_side);

    let mut edges = Vec::with_capacity(n * 3);
    let mut candidates = Vec::new();
    for u in 0..n {
        candidates.clear();
        // Look for neighbors in growing rings until some are found; cap the
        // search radius to keep degenerate clusters from going quadratic.
        let mut ring = 1;
        while candidates.len() < 10 && ring <= cells_per_side {
            candidates.clear();
            grid.nearby(points[u], ring, &mut candidates);
            ring += 1;
        }
        for &v in &candidates {
            let v = v as usize;
            if v <= u {
                continue; // each undirected pair once
            }
            let mid = points[u].midpoint(&points[v]);
            let r_sq = points[u].distance_sq(&points[v]) / 4.0;
            // Empty diametral circle test among points near the midpoint.
            let ring_needed = ((r_sq.sqrt() / cell).ceil() as usize).max(1).min(cells_per_side);
            let mut witnesses = Vec::new();
            grid.nearby(mid, ring_needed, &mut witnesses);
            let blocked = witnesses.iter().any(|&w| {
                let w = w as usize;
                w != u && w != v && points[w].distance_sq(&mid) < r_sq - 1e-12
            });
            if !blocked {
                edges.push((u as u32, v as u32));
            }
        }
    }
    edges
}

/// A uniform bucket grid over points, for approximate neighborhood queries.
struct CellGrid {
    cells: Vec<Vec<u32>>,
    cell: f64,
    side: usize,
}

impl CellGrid {
    fn build(points: &[Point], cell: f64, side: usize) -> Self {
        let mut cells = vec![Vec::new(); side * side];
        for (i, p) in points.iter().enumerate() {
            let (cx, cy) = Self::cell_of(p, cell, side);
            cells[cy * side + cx].push(i as u32);
        }
        CellGrid { cells, cell, side }
    }

    fn cell_of(p: &Point, cell: f64, side: usize) -> (usize, usize) {
        let cx = ((p.x / cell) as isize).clamp(0, side as isize - 1) as usize;
        let cy = ((p.y / cell) as isize).clamp(0, side as isize - 1) as usize;
        (cx, cy)
    }

    /// Appends the indices of all points within `ring` cells of `p`'s cell.
    fn nearby(&self, p: Point, ring: usize, out: &mut Vec<u32>) {
        let (cx, cy) = Self::cell_of(&p, self.cell, self.side);
        let x0 = cx.saturating_sub(ring);
        let x1 = (cx + ring).min(self.side - 1);
        let y0 = cy.saturating_sub(ring);
        let y1 = (cy + ring).min(self.side - 1);
        for y in y0..=y1 {
            for x in x0..=x1 {
                out.extend_from_slice(&self.cells[y * self.side + x]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{is_strongly_connected, stats};

    #[test]
    fn grid_has_all_vertices_and_is_connected() {
        let g = grid_network(&GridConfig { rows: 10, cols: 14, ..Default::default() });
        assert_eq!(g.vertex_count(), 140);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn grid_is_deterministic_per_seed() {
        let cfg = GridConfig { rows: 8, cols: 8, seed: 123, ..Default::default() };
        let a = grid_network(&cfg);
        let b = grid_network(&cfg);
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.vertices() {
            assert_eq!(a.position(v), b.position(v));
        }
        let c = grid_network(&GridConfig { seed: 124, ..cfg });
        // Different seed ⇒ (almost surely) different jitter.
        assert_ne!(a.position(VertexId(0)), c.position(VertexId(0)));
    }

    #[test]
    fn grid_keep_prob_zero_is_spanning_tree() {
        let g =
            grid_network(&GridConfig { rows: 9, cols: 9, keep_prob: 0.0, ..Default::default() });
        // Spanning tree: n-1 undirected edges = 2(n-1) arcs.
        assert_eq!(g.edge_count(), 2 * (81 - 1));
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn grid_weights_respect_detour_range() {
        let cfg = GridConfig { rows: 6, cols: 6, detour: 0.3, ..Default::default() };
        let g = grid_network(&cfg);
        for u in g.vertices() {
            for (v, w) in g.out_edges(u) {
                let e = g.euclidean(u, v);
                assert!(w >= e - 1e-9, "weight below Euclidean length");
                assert!(w <= e * 1.3 + 1e-9, "weight above detour cap");
            }
        }
    }

    #[test]
    fn road_network_is_connected_and_sized() {
        let cfg = RoadConfig { vertices: 500, edge_factor: 1.25, seed: 9, ..Default::default() };
        let g = road_network(&cfg);
        assert_eq!(g.vertex_count(), 500);
        assert!(is_strongly_connected(&g));
        let s = stats(&g);
        // Ratio should be at or slightly above the target (MST may exceed it
        // only for extreme configs) and well below Delaunay density.
        assert!(s.edge_vertex_ratio >= 0.99, "ratio {} too small", s.edge_vertex_ratio);
        assert!(s.edge_vertex_ratio <= 1.4, "ratio {} too large", s.edge_vertex_ratio);
    }

    #[test]
    fn road_network_deterministic_per_seed() {
        let cfg = RoadConfig { vertices: 300, seed: 5, ..Default::default() };
        let a = road_network(&cfg);
        let b = road_network(&cfg);
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.vertices() {
            assert_eq!(a.position(v), b.position(v));
        }
    }

    #[test]
    fn road_network_edge_factor_scales_density() {
        let sparse = road_network(&RoadConfig {
            vertices: 400,
            edge_factor: 1.0,
            seed: 11,
            ..Default::default()
        });
        let dense = road_network(&RoadConfig {
            vertices: 400,
            edge_factor: 1.6,
            seed: 11,
            ..Default::default()
        });
        assert!(dense.edge_count() > sparse.edge_count());
    }

    #[test]
    #[should_panic(expected = "edge_factor")]
    fn road_network_rejects_subcritical_factor() {
        road_network(&RoadConfig { edge_factor: 0.5, ..Default::default() });
    }

    #[test]
    fn gabriel_edges_of_square_exclude_long_diagonal() {
        // Four corners of a square plus the center: the diagonals' diametral
        // circles contain the center, so only rim + center edges survive.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
            Point::new(5.0, 5.0),
        ];
        let edges = gabriel_edges(&pts, 10.0);
        let has = |a: u32, b: u32| edges.iter().any(|&(u, v)| (u, v) == (a.min(b), a.max(b)));
        assert!(!has(0, 3), "diagonal 0-3 must be blocked by the center");
        assert!(!has(1, 2), "diagonal 1-2 must be blocked by the center");
        assert!(has(0, 4) && has(1, 4) && has(2, 4) && has(3, 4));
    }
}
