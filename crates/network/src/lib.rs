//! Spatial networks: graphs with spatial positions at vertices and travel
//! costs on edges.
//!
//! This crate is the substrate under the SILC framework. It provides:
//!
//! * [`SpatialNetwork`] — a compact CSR representation of a directed,
//!   weighted graph whose vertices carry planar positions,
//! * [`NetworkBuilder`] — incremental construction,
//! * [`dijkstra`] — full single-source shortest paths with *first-hop*
//!   extraction (the coloring SILC precomputation needs), point-to-point
//!   search with visit counting, and a step-wise [`dijkstra::Expander`] that
//!   the INE baseline drives incrementally,
//! * [`astar`] — goal-directed point-to-point search used by the IER
//!   baseline,
//! * [`generate`] — synthetic road-network generators (perturbed grids and
//!   Gabriel-graph road networks) standing in for the paper's TIGER-derived
//!   US eastern-seaboard network,
//! * [`analysis`] — connectivity checks and component extraction,
//! * [`io`] — a compact binary serialization so generated networks can be
//!   cached between experiment runs.

pub mod analysis;
pub mod astar;
pub mod dijkstra;
pub mod generate;
pub mod graph;
pub mod io;
pub mod paged;
pub mod partition;

pub use dijkstra::SsspWorkspace;
pub use graph::{NetworkBuilder, SpatialNetwork, VertexId};
pub use partition::{partition_network, NetworkPartition, PartitionConfig, PartitionError};
