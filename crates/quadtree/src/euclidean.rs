//! The incremental best-first *Euclidean* nearest-neighbor iterator
//! (Hjaltason & Samet 1995) over a [`PrQuadtree`], which the IER baseline
//! uses as its filter step. Built entirely on the structural API in
//! [`crate::tree`].

use crate::tree::{NodeId, NodeView, PrQuadtree};
use silc_geom::Point;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

impl<T> PrQuadtree<T> {
    /// Incremental best-first nearest-neighbor iterator by Euclidean
    /// distance from `q`: yields `(item, distance)` in non-decreasing
    /// distance order, lazily.
    pub fn nearest_iter(&self, q: Point) -> NearestIter<'_, T> {
        // The root always exists (an empty tree has one empty leaf), so the
        // search starts from it unconditionally.
        let mut heap = BinaryHeap::new();
        heap.push(QueueEntry {
            dist: self.rect(self.root()).min_distance(&q),
            kind: EntryKind::Node(self.root()),
        });
        NearestIter { tree: self, q, heap }
    }

    /// [`Self::nearest_iter`] over a caller-owned [`NearestScratch`]: the
    /// search heap is reused across calls, so a steady-state search
    /// allocates nothing. Yields exactly the sequence `nearest_iter` yields.
    pub fn nearest_with<'a>(
        &'a self,
        q: Point,
        scratch: &'a mut NearestScratch,
    ) -> NearestWith<'a, T> {
        scratch.heap.clear();
        scratch.heap.push(QueueEntry {
            dist: self.rect(self.root()).min_distance(&q),
            kind: EntryKind::Node(self.root()),
        });
        NearestWith { tree: self, q, heap: &mut scratch.heap }
    }

    /// The `k` Euclidean-nearest items to `q`.
    pub fn k_nearest(&self, q: Point, k: usize) -> Vec<(u32, f64)> {
        self.nearest_iter(q).take(k).collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EntryKind {
    Node(NodeId),
    Item(u32),
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct QueueEntry {
    dist: f64,
    kind: EntryKind,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; items before nodes at equal distance so ties
        // resolve without unnecessary expansion; then a stable id order.
        other.dist.total_cmp(&self.dist).then_with(|| {
            let rank = |k: &EntryKind| match k {
                EntryKind::Item(i) => (0u8, *i),
                EntryKind::Node(n) => (1u8, n.0),
            };
            rank(&other.kind).cmp(&rank(&self.kind))
        })
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The best-first advance shared by both iterator forms.
fn advance<T>(
    tree: &PrQuadtree<T>,
    q: Point,
    heap: &mut BinaryHeap<QueueEntry>,
) -> Option<(u32, f64)> {
    while let Some(QueueEntry { dist, kind }) = heap.pop() {
        match kind {
            EntryKind::Item(i) => return Some((i, dist)),
            EntryKind::Node(n) => match tree.node(n) {
                NodeView::Leaf(items) => {
                    for &i in items {
                        let d = tree.position(i).distance(&q);
                        heap.push(QueueEntry { dist: d, kind: EntryKind::Item(i) });
                    }
                }
                NodeView::Internal(children) => {
                    for c in children {
                        let d = tree.rect(c).min_distance(&q);
                        heap.push(QueueEntry { dist: d, kind: EntryKind::Node(c) });
                    }
                }
            },
        }
    }
    None
}

/// Iterator created by [`PrQuadtree::nearest_iter`].
pub struct NearestIter<'t, T> {
    tree: &'t PrQuadtree<T>,
    q: Point,
    heap: BinaryHeap<QueueEntry>,
}

impl<T> Iterator for NearestIter<'_, T> {
    type Item = (u32, f64);

    fn next(&mut self) -> Option<(u32, f64)> {
        advance(self.tree, self.q, &mut self.heap)
    }
}

/// The reusable state of [`PrQuadtree::nearest_with`]: the search's
/// priority queue, retained across searches so repeated queries (a session
/// workload) allocate nothing once grown.
#[derive(Default)]
pub struct NearestScratch {
    heap: BinaryHeap<QueueEntry>,
}

impl NearestScratch {
    /// An empty scratch; the heap grows on first use and is then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Iterator created by [`PrQuadtree::nearest_with`] — identical sequence to
/// [`NearestIter`], over a borrowed heap.
pub struct NearestWith<'a, T> {
    tree: &'a PrQuadtree<T>,
    q: Point,
    heap: &'a mut BinaryHeap<QueueEntry>,
}

impl<T> Iterator for NearestWith<'_, T> {
    type Item = (u32, f64);

    fn next(&mut self) -> Option<(u32, f64)> {
        advance(self.tree, self.q, self.heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use silc_geom::Rect;

    fn random_points(n: usize, seed: u64) -> Vec<(Point, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| (Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)), i))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t: PrQuadtree<()> = PrQuadtree::build(vec![], 4);
        assert!(t.is_empty());
        assert_eq!(t.nearest_iter(Point::new(0.0, 0.0)).count(), 0);
        assert!(t.range_query(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn single_item() {
        let t = PrQuadtree::build(vec![(Point::new(5.0, 5.0), "a")], 4);
        let hits: Vec<_> = t.nearest_iter(Point::new(0.0, 0.0)).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(t.payload(hits[0].0), &"a");
        assert!((hits[0].1 - 50f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn nearest_iter_is_sorted_and_complete() {
        let t = PrQuadtree::build(random_points(300, 2), 6);
        let q = Point::new(33.0, 67.0);
        let got: Vec<(u32, f64)> = t.nearest_iter(q).collect();
        assert_eq!(got.len(), 300);
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12, "distances not sorted");
        }
        // Matches brute force.
        let mut brute: Vec<(u32, f64)> =
            (0..300u32).map(|i| (i, t.position(i).distance(&q))).collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (g, b) in got.iter().zip(&brute) {
            assert!((g.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_with_matches_nearest_iter_and_reuses_state() {
        let t = PrQuadtree::build(random_points(150, 9), 5);
        let mut scratch = NearestScratch::new();
        for &(qx, qy) in &[(3.0, 4.0), (80.0, 80.0), (-5.0, 50.0)] {
            let q = Point::new(qx, qy);
            let owned: Vec<(u32, f64)> = t.nearest_iter(q).collect();
            let reused: Vec<(u32, f64)> = t.nearest_with(q, &mut scratch).collect();
            assert_eq!(owned, reused, "reused-heap search must yield the identical sequence");
        }
        // A partially consumed search leaves stale state; the next call must
        // start fresh.
        let q = Point::new(50.0, 50.0);
        let _ = t.nearest_with(q, &mut scratch).take(3).count();
        let full: Vec<(u32, f64)> = t.nearest_with(q, &mut scratch).collect();
        assert_eq!(full.len(), 150);
    }

    #[test]
    fn k_nearest_prefix_of_full_ranking() {
        let t = PrQuadtree::build(random_points(100, 3), 4);
        let q = Point::new(10.0, 10.0);
        let k5 = t.k_nearest(q, 5);
        let all: Vec<_> = t.nearest_iter(q).collect();
        assert_eq!(k5, all[..5].to_vec());
        // Asking for more than exist returns all.
        assert_eq!(t.k_nearest(q, 1000).len(), 100);
    }

    #[test]
    fn duplicate_points_all_reachable() {
        let items: Vec<(Point, usize)> = (0..20).map(|i| (Point::new(1.0, 1.0), i)).collect();
        let t = PrQuadtree::build(items, 2);
        let all: Vec<_> = t.nearest_iter(Point::new(0.0, 0.0)).collect();
        assert_eq!(all.len(), 20);
    }

    proptest! {
        #[test]
        fn incremental_nn_agrees_with_brute_force(
            pts in proptest::collection::vec((0f64..50.0, 0f64..50.0), 1..80),
            qx in -10f64..60.0, qy in -10f64..60.0,
        ) {
            let items: Vec<(Point, usize)> =
                pts.iter().enumerate().map(|(i, &(x, y))| (Point::new(x, y), i)).collect();
            let t = PrQuadtree::build(items, 3);
            let q = Point::new(qx, qy);
            let got: Vec<f64> = t.nearest_iter(q).map(|(_, d)| d).collect();
            let mut want: Vec<f64> = pts.iter().map(|&(x, y)| Point::new(x, y).distance(&q)).collect();
            want.sort_by(|a, b| a.total_cmp(b));
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-9);
            }
        }
    }
}
