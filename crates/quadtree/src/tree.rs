//! The structural API of the bucket PR quadtree: construction, node
//! traversal, item access, and rectangle range queries.

use silc_geom::{Point, Rect};

/// Handle to a quadtree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) u32);

/// Maximum tree depth; with the default bucket size this is never reached
/// except by pathological duplicate-heavy inputs.
const MAX_DEPTH: u32 = 32;

#[derive(Debug, Clone)]
enum NodeKind {
    /// Indices into the item arrays, contiguous slice `[start, start+len)`.
    Leaf { start: u32, len: u32 },
    /// Child node ids in quadrant order (SW, SE, NW, NE).
    Internal { children: [u32; 4] },
}

#[derive(Debug, Clone)]
struct Node {
    rect: Rect,
    kind: NodeKind,
}

/// Contents of a node, as seen through the traversal API.
#[derive(Debug, Clone, Copy)]
pub enum NodeView<'t> {
    /// A leaf block and the ids of the items inside it.
    Leaf(&'t [u32]),
    /// An internal block and its four children.
    Internal([NodeId; 4]),
}

/// A bucket PR quadtree over points with payloads of type `T`.
#[derive(Debug, Clone)]
pub struct PrQuadtree<T> {
    nodes: Vec<Node>,
    /// Item ids (indices into `positions`/`payloads`), grouped by leaf.
    leaf_items: Vec<u32>,
    positions: Vec<Point>,
    payloads: Vec<T>,
    bucket: usize,
}

impl<T> PrQuadtree<T> {
    /// Builds a quadtree over `items`, splitting leaves larger than
    /// `bucket`.
    ///
    /// # Panics
    /// Panics if `bucket == 0` or any position is non-finite.
    pub fn build(items: Vec<(Point, T)>, bucket: usize) -> Self {
        assert!(bucket > 0, "bucket capacity must be positive");
        let (positions, payloads): (Vec<Point>, Vec<T>) = items.into_iter().unzip();
        assert!(positions.iter().all(Point::is_finite), "item positions must be finite");
        let bounds = Rect::bounding(&positions).unwrap_or_else(|| Rect::new(0.0, 0.0, 1.0, 1.0));
        // Make the root square so quadrants stay square (regular decomposition).
        let side = bounds.width().max(bounds.height()).max(f64::MIN_POSITIVE);
        let root_rect =
            Rect::new(bounds.min_x, bounds.min_y, bounds.min_x + side, bounds.min_y + side);

        let mut tree =
            PrQuadtree { nodes: Vec::new(), leaf_items: Vec::new(), positions, payloads, bucket };
        let mut all: Vec<u32> = (0..tree.positions.len() as u32).collect();
        tree.build_node(root_rect, &mut all, 0);
        tree
    }

    /// Recursively builds the subtree for `items` inside `rect`; returns the
    /// node id.
    fn build_node(&mut self, rect: Rect, items: &mut [u32], depth: u32) -> u32 {
        if items.len() <= self.bucket || depth >= MAX_DEPTH {
            let start = self.leaf_items.len() as u32;
            self.leaf_items.extend_from_slice(items);
            let id = self.nodes.len() as u32;
            self.nodes.push(Node { rect, kind: NodeKind::Leaf { start, len: items.len() as u32 } });
            return id;
        }
        let c = rect.center();
        // Partition items into quadrants: (x < cx, y < cy) = SW, etc.
        let quadrant = |p: &Point| -> usize {
            let east = p.x >= c.x;
            let north = p.y >= c.y;
            (north as usize) * 2 + east as usize
        };
        let mut buckets: [Vec<u32>; 4] = Default::default();
        for &i in items.iter() {
            buckets[quadrant(&self.positions[i as usize])].push(i);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { rect, kind: NodeKind::Internal { children: [u32::MAX; 4] } });
        let rects = [
            Rect::new(rect.min_x, rect.min_y, c.x, c.y),
            Rect::new(c.x, rect.min_y, rect.max_x, c.y),
            Rect::new(rect.min_x, c.y, c.x, rect.max_y),
            Rect::new(c.x, c.y, rect.max_x, rect.max_y),
        ];
        let mut children = [u32::MAX; 4];
        for q in 0..4 {
            children[q] = self.build_node(rects[q], &mut buckets[q], depth + 1);
        }
        if let NodeKind::Internal { children: slot } = &mut self.nodes[id as usize].kind {
            *slot = children;
        }
        id
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Bucket capacity the tree was built with.
    pub fn bucket(&self) -> usize {
        self.bucket
    }

    /// Root node handle.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The rectangle a node covers.
    pub fn rect(&self, n: NodeId) -> Rect {
        self.nodes[n.0 as usize].rect
    }

    /// Structural view of a node.
    pub fn node(&self, n: NodeId) -> NodeView<'_> {
        match &self.nodes[n.0 as usize].kind {
            NodeKind::Leaf { start, len } => {
                NodeView::Leaf(&self.leaf_items[*start as usize..(*start + *len) as usize])
            }
            NodeKind::Internal { children } => NodeView::Internal([
                NodeId(children[0]),
                NodeId(children[1]),
                NodeId(children[2]),
                NodeId(children[3]),
            ]),
        }
    }

    /// Position of an item.
    pub fn position(&self, item: u32) -> Point {
        self.positions[item as usize]
    }

    /// Payload of an item.
    pub fn payload(&self, item: u32) -> &T {
        &self.payloads[item as usize]
    }

    /// All item ids whose position falls inside `query` (inclusive bounds).
    pub fn range_query(&self, query: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(n) = stack.pop() {
            if !self.rect(n).intersects(query) {
                continue;
            }
            match self.node(n) {
                NodeView::Leaf(items) => {
                    out.extend(
                        items
                            .iter()
                            .copied()
                            .filter(|&i| query.contains(&self.positions[i as usize])),
                    );
                }
                NodeView::Internal(children) => stack.extend(children),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<(Point, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| (Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)), i))
            .collect()
    }

    #[test]
    fn leaves_respect_bucket_capacity() {
        let t = PrQuadtree::build(random_points(200, 1), 8);
        let mut stack = vec![t.root()];
        let mut total = 0usize;
        while let Some(n) = stack.pop() {
            match t.node(n) {
                NodeView::Leaf(items) => {
                    assert!(items.len() <= 8);
                    total += items.len();
                    // Every item lies inside its leaf rectangle.
                    for &i in items {
                        assert!(t.rect(n).contains(&t.position(i)));
                    }
                }
                NodeView::Internal(children) => stack.extend(children),
            }
        }
        assert_eq!(total, 200, "every item appears in exactly one leaf");
    }

    #[test]
    fn range_query_matches_filter() {
        let t = PrQuadtree::build(random_points(250, 4), 5);
        let r = Rect::new(20.0, 20.0, 60.0, 50.0);
        let mut got = t.range_query(&r);
        got.sort_unstable();
        let mut want: Vec<u32> = (0..250u32).filter(|&i| r.contains(&t.position(i))).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_points_survive_via_depth_cap() {
        let items: Vec<(Point, usize)> = (0..20).map(|i| (Point::new(1.0, 1.0), i)).collect();
        let t = PrQuadtree::build(items, 2);
        assert_eq!(t.len(), 20);
    }

    #[test]
    #[should_panic(expected = "bucket capacity")]
    fn zero_bucket_rejected() {
        let _ = PrQuadtree::<()>::build(vec![], 0);
    }
}
