//! A bucket PR quadtree over point data.
//!
//! The paper indexes the object set `S` (the restaurants, gas stations, …
//! that neighbors are drawn from) in a PMR quadtree; for point data the
//! bucket PR quadtree here behaves identically: space is split into four
//! congruent quadrants whenever a leaf overflows its bucket, so the
//! decomposition is disjoint and regular — exactly the block structure the
//! kNN algorithm of the paper descends.
//!
//! Two access paths are provided:
//! * a structural API ([`PrQuadtree::root`], [`PrQuadtree::node`]) exposing
//!   blocks and their rectangles, which the network-distance kNN algorithms
//!   in `silc-query` drive with *network* distance intervals, and
//! * an incremental best-first *Euclidean* neighbor iterator
//!   ([`PrQuadtree::nearest_iter`], Hjaltason & Samet 1995), which the IER
//!   baseline uses as its filter step.

use silc_geom::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a quadtree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

/// Maximum tree depth; with the default bucket size this is never reached
/// except by pathological duplicate-heavy inputs.
const MAX_DEPTH: u32 = 32;

#[derive(Debug, Clone)]
enum NodeKind {
    /// Indices into the item arrays, contiguous slice `[start, start+len)`.
    Leaf { start: u32, len: u32 },
    /// Child node ids in quadrant order (SW, SE, NW, NE).
    Internal { children: [u32; 4] },
}

#[derive(Debug, Clone)]
struct Node {
    rect: Rect,
    kind: NodeKind,
}

/// Contents of a node, as seen through the traversal API.
#[derive(Debug, Clone, Copy)]
pub enum NodeView<'t> {
    /// A leaf block and the ids of the items inside it.
    Leaf(&'t [u32]),
    /// An internal block and its four children.
    Internal([NodeId; 4]),
}

/// A bucket PR quadtree over points with payloads of type `T`.
#[derive(Debug, Clone)]
pub struct PrQuadtree<T> {
    nodes: Vec<Node>,
    /// Item ids (indices into `positions`/`payloads`), grouped by leaf.
    leaf_items: Vec<u32>,
    positions: Vec<Point>,
    payloads: Vec<T>,
    bucket: usize,
}

impl<T> PrQuadtree<T> {
    /// Builds a quadtree over `items`, splitting leaves larger than
    /// `bucket`.
    ///
    /// # Panics
    /// Panics if `bucket == 0` or any position is non-finite.
    pub fn build(items: Vec<(Point, T)>, bucket: usize) -> Self {
        assert!(bucket > 0, "bucket capacity must be positive");
        let (positions, payloads): (Vec<Point>, Vec<T>) = items.into_iter().unzip();
        assert!(positions.iter().all(Point::is_finite), "item positions must be finite");
        let bounds = Rect::bounding(&positions).unwrap_or_else(|| Rect::new(0.0, 0.0, 1.0, 1.0));
        // Make the root square so quadrants stay square (regular decomposition).
        let side = bounds.width().max(bounds.height()).max(f64::MIN_POSITIVE);
        let root_rect =
            Rect::new(bounds.min_x, bounds.min_y, bounds.min_x + side, bounds.min_y + side);

        let mut tree =
            PrQuadtree { nodes: Vec::new(), leaf_items: Vec::new(), positions, payloads, bucket };
        let mut all: Vec<u32> = (0..tree.positions.len() as u32).collect();
        tree.build_node(root_rect, &mut all, 0);
        tree
    }

    /// Recursively builds the subtree for `items` inside `rect`; returns the
    /// node id.
    fn build_node(&mut self, rect: Rect, items: &mut [u32], depth: u32) -> u32 {
        if items.len() <= self.bucket || depth >= MAX_DEPTH {
            let start = self.leaf_items.len() as u32;
            self.leaf_items.extend_from_slice(items);
            let id = self.nodes.len() as u32;
            self.nodes.push(Node { rect, kind: NodeKind::Leaf { start, len: items.len() as u32 } });
            return id;
        }
        let c = rect.center();
        // Partition items into quadrants: (x < cx, y < cy) = SW, etc.
        let quadrant = |p: &Point| -> usize {
            let east = p.x >= c.x;
            let north = p.y >= c.y;
            (north as usize) * 2 + east as usize
        };
        let mut buckets: [Vec<u32>; 4] = Default::default();
        for &i in items.iter() {
            buckets[quadrant(&self.positions[i as usize])].push(i);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { rect, kind: NodeKind::Internal { children: [u32::MAX; 4] } });
        let rects = [
            Rect::new(rect.min_x, rect.min_y, c.x, c.y),
            Rect::new(c.x, rect.min_y, rect.max_x, c.y),
            Rect::new(rect.min_x, c.y, c.x, rect.max_y),
            Rect::new(c.x, c.y, rect.max_x, rect.max_y),
        ];
        let mut children = [u32::MAX; 4];
        for q in 0..4 {
            children[q] = self.build_node(rects[q], &mut buckets[q], depth + 1);
        }
        if let NodeKind::Internal { children: slot } = &mut self.nodes[id as usize].kind {
            *slot = children;
        }
        id
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Bucket capacity the tree was built with.
    pub fn bucket(&self) -> usize {
        self.bucket
    }

    /// Root node handle.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The rectangle a node covers.
    pub fn rect(&self, n: NodeId) -> Rect {
        self.nodes[n.0 as usize].rect
    }

    /// Structural view of a node.
    pub fn node(&self, n: NodeId) -> NodeView<'_> {
        match &self.nodes[n.0 as usize].kind {
            NodeKind::Leaf { start, len } => {
                NodeView::Leaf(&self.leaf_items[*start as usize..(*start + *len) as usize])
            }
            NodeKind::Internal { children } => NodeView::Internal([
                NodeId(children[0]),
                NodeId(children[1]),
                NodeId(children[2]),
                NodeId(children[3]),
            ]),
        }
    }

    /// Position of an item.
    pub fn position(&self, item: u32) -> Point {
        self.positions[item as usize]
    }

    /// Payload of an item.
    pub fn payload(&self, item: u32) -> &T {
        &self.payloads[item as usize]
    }

    /// All item ids whose position falls inside `query` (inclusive bounds).
    pub fn range_query(&self, query: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(n) = stack.pop() {
            if !self.rect(n).intersects(query) {
                continue;
            }
            match self.node(n) {
                NodeView::Leaf(items) => {
                    out.extend(
                        items
                            .iter()
                            .copied()
                            .filter(|&i| query.contains(&self.positions[i as usize])),
                    );
                }
                NodeView::Internal(children) => stack.extend(children),
            }
        }
        out
    }

    /// Incremental best-first nearest-neighbor iterator by Euclidean
    /// distance from `q`: yields `(item, distance)` in non-decreasing
    /// distance order, lazily.
    pub fn nearest_iter(&self, q: Point) -> NearestIter<'_, T> {
        let mut heap = BinaryHeap::new();
        if !self.is_empty() || !self.nodes.is_empty() {
            heap.push(QueueEntry {
                dist: self.rect(self.root()).min_distance(&q),
                kind: EntryKind::Node(0),
            });
        }
        NearestIter { tree: self, q, heap }
    }

    /// The `k` Euclidean-nearest items to `q`.
    pub fn k_nearest(&self, q: Point, k: usize) -> Vec<(u32, f64)> {
        self.nearest_iter(q).take(k).collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EntryKind {
    Node(u32),
    Item(u32),
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct QueueEntry {
    dist: f64,
    kind: EntryKind,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; items before nodes at equal distance so ties
        // resolve without unnecessary expansion; then a stable id order.
        other.dist.total_cmp(&self.dist).then_with(|| {
            let rank = |k: &EntryKind| match k {
                EntryKind::Item(i) => (0u8, *i),
                EntryKind::Node(n) => (1u8, *n),
            };
            rank(&other.kind).cmp(&rank(&self.kind))
        })
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Iterator created by [`PrQuadtree::nearest_iter`].
pub struct NearestIter<'t, T> {
    tree: &'t PrQuadtree<T>,
    q: Point,
    heap: BinaryHeap<QueueEntry>,
}

impl<T> Iterator for NearestIter<'_, T> {
    type Item = (u32, f64);

    fn next(&mut self) -> Option<(u32, f64)> {
        while let Some(QueueEntry { dist, kind }) = self.heap.pop() {
            match kind {
                EntryKind::Item(i) => return Some((i, dist)),
                EntryKind::Node(n) => match self.tree.node(NodeId(n)) {
                    NodeView::Leaf(items) => {
                        for &i in items {
                            let d = self.tree.positions[i as usize].distance(&self.q);
                            self.heap.push(QueueEntry { dist: d, kind: EntryKind::Item(i) });
                        }
                    }
                    NodeView::Internal(children) => {
                        for c in children {
                            let d = self.tree.rect(c).min_distance(&self.q);
                            self.heap.push(QueueEntry { dist: d, kind: EntryKind::Node(c.0) });
                        }
                    }
                },
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<(Point, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| (Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)), i))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t: PrQuadtree<()> = PrQuadtree::build(vec![], 4);
        assert!(t.is_empty());
        assert_eq!(t.nearest_iter(Point::new(0.0, 0.0)).count(), 0);
        assert!(t.range_query(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn single_item() {
        let t = PrQuadtree::build(vec![(Point::new(5.0, 5.0), "a")], 4);
        let hits: Vec<_> = t.nearest_iter(Point::new(0.0, 0.0)).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(t.payload(hits[0].0), &"a");
        assert!((hits[0].1 - 50f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn leaves_respect_bucket_capacity() {
        let t = PrQuadtree::build(random_points(200, 1), 8);
        let mut stack = vec![t.root()];
        let mut total = 0usize;
        while let Some(n) = stack.pop() {
            match t.node(n) {
                NodeView::Leaf(items) => {
                    assert!(items.len() <= 8);
                    total += items.len();
                    // Every item lies inside its leaf rectangle.
                    for &i in items {
                        assert!(t.rect(n).contains(&t.position(i)));
                    }
                }
                NodeView::Internal(children) => stack.extend(children),
            }
        }
        assert_eq!(total, 200, "every item appears in exactly one leaf");
    }

    #[test]
    fn nearest_iter_is_sorted_and_complete() {
        let t = PrQuadtree::build(random_points(300, 2), 6);
        let q = Point::new(33.0, 67.0);
        let got: Vec<(u32, f64)> = t.nearest_iter(q).collect();
        assert_eq!(got.len(), 300);
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12, "distances not sorted");
        }
        // Matches brute force.
        let mut brute: Vec<(u32, f64)> =
            (0..300u32).map(|i| (i, t.position(i).distance(&q))).collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (g, b) in got.iter().zip(&brute) {
            assert!((g.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn k_nearest_prefix_of_full_ranking() {
        let t = PrQuadtree::build(random_points(100, 3), 4);
        let q = Point::new(10.0, 10.0);
        let k5 = t.k_nearest(q, 5);
        let all: Vec<_> = t.nearest_iter(q).collect();
        assert_eq!(k5, all[..5].to_vec());
        // Asking for more than exist returns all.
        assert_eq!(t.k_nearest(q, 1000).len(), 100);
    }

    #[test]
    fn range_query_matches_filter() {
        let t = PrQuadtree::build(random_points(250, 4), 5);
        let r = Rect::new(20.0, 20.0, 60.0, 50.0);
        let mut got = t.range_query(&r);
        got.sort_unstable();
        let mut want: Vec<u32> = (0..250u32).filter(|&i| r.contains(&t.position(i))).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_points_survive_via_depth_cap() {
        let items: Vec<(Point, usize)> = (0..20).map(|i| (Point::new(1.0, 1.0), i)).collect();
        let t = PrQuadtree::build(items, 2);
        assert_eq!(t.len(), 20);
        let all: Vec<_> = t.nearest_iter(Point::new(0.0, 0.0)).collect();
        assert_eq!(all.len(), 20);
    }

    #[test]
    #[should_panic(expected = "bucket capacity")]
    fn zero_bucket_rejected() {
        let _ = PrQuadtree::<()>::build(vec![], 0);
    }

    proptest! {
        #[test]
        fn incremental_nn_agrees_with_brute_force(
            pts in proptest::collection::vec((0f64..50.0, 0f64..50.0), 1..80),
            qx in -10f64..60.0, qy in -10f64..60.0,
        ) {
            let items: Vec<(Point, usize)> =
                pts.iter().enumerate().map(|(i, &(x, y))| (Point::new(x, y), i)).collect();
            let t = PrQuadtree::build(items, 3);
            let q = Point::new(qx, qy);
            let got: Vec<f64> = t.nearest_iter(q).map(|(_, d)| d).collect();
            let mut want: Vec<f64> = pts.iter().map(|&(x, y)| Point::new(x, y).distance(&q)).collect();
            want.sort_by(|a, b| a.total_cmp(b));
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-9);
            }
        }
    }
}
