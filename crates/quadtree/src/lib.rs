//! A bucket PR quadtree over point data.
//!
//! The paper indexes the object set `S` (the restaurants, gas stations, …
//! that neighbors are drawn from) in a PMR quadtree; for point data the
//! bucket PR quadtree here behaves identically: space is split into four
//! congruent quadrants whenever a leaf overflows its bucket, so the
//! decomposition is disjoint and regular — exactly the block structure the
//! kNN algorithm of the paper descends.
//!
//! Two access paths, one module each:
//! * [`tree`] — the structural API ([`PrQuadtree::root`],
//!   [`PrQuadtree::node`]) exposing blocks and their rectangles, which the
//!   network-distance kNN algorithms in `silc-query` drive with *network*
//!   distance intervals, and
//! * [`euclidean`] — the incremental best-first *Euclidean* neighbor
//!   iterator ([`PrQuadtree::nearest_iter`], Hjaltason & Samet 1995), which
//!   the IER baseline uses as its filter step.

pub mod euclidean;
pub mod tree;

pub use euclidean::{NearestIter, NearestScratch, NearestWith};
pub use tree::{NodeId, NodeView, PrQuadtree};
