//! LEB128 varints and zigzag, shared by the compressed on-disk formats.
//!
//! The compressed SILC index (`SILCIDX3`) and PCP pair format (v4) both
//! store sorted id sequences as deltas; a delta is almost always tiny, so
//! unsigned LEB128 turns an 8-byte field into (usually) one byte. This
//! module is the single implementation both formats decode through.
//!
//! Decoding is **canonical**: every value has exactly one accepted
//! encoding. A varint whose last byte is zero (except the single-byte
//! encoding of 0 itself), one longer than [`MAX_VARINT_BYTES`], or whose
//! tenth byte carries bits beyond the 64th is rejected with
//! `InvalidData`; a slice that ends mid-varint is rejected with
//! `UnexpectedEof`. On-disk corruption therefore surfaces as a typed
//! error, never as a silently different value that re-encodes to
//! different bytes.

use std::io;

/// Longest canonical LEB128 encoding of a `u64` (10 × 7 bits ≥ 64 bits).
pub const MAX_VARINT_BYTES: usize = 10;

/// Appends the LEB128 encoding of `v` to `out`.
pub fn encode_u64(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`encode_u64`] emits for `v`.
pub fn encoded_len(v: u64) -> usize {
    // 1 + floor(bits/7) for bits = position of highest set bit (0 for v=0).
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7).max(1)
}

/// Decodes one canonical LEB128 `u64` from the front of `bytes`.
///
/// Returns the value and the number of bytes consumed. Truncated input is
/// `UnexpectedEof`; a non-canonical or overlong encoding is `InvalidData`.
#[inline]
pub fn decode_u64(bytes: &[u8]) -> io::Result<(u64, usize)> {
    // Single-byte fast path: levels, colors, and small deltas — the bulk
    // of what the compressed formats store — fit in 7 bits.
    match bytes.first() {
        Some(&b) if b & 0x80 == 0 => Ok((u64::from(b), 1)),
        _ => decode_u64_multibyte(bytes),
    }
}

/// The continuation-byte tail of [`decode_u64`], kept out of the inlined
/// fast path.
fn decode_u64_multibyte(bytes: &[u8]) -> io::Result<(u64, usize)> {
    let mut value: u64 = 0;
    for (i, &byte) in bytes.iter().enumerate() {
        if i >= MAX_VARINT_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint longer than 10 bytes"));
        }
        if i == MAX_VARINT_BYTES - 1 && byte > 1 {
            // The 10th byte holds the single remaining bit of a u64.
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflows u64"));
        }
        value |= u64::from(byte & 0x7f) << (7 * i);
        if byte & 0x80 == 0 {
            if i > 0 && byte == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "non-canonical varint (trailing zero byte)",
                ));
            }
            return Ok((value, i + 1));
        }
    }
    Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated varint"))
}

/// Maps a signed value to an unsigned one with small absolute values
/// staying small (0→0, -1→1, 1→2, -2→3, …).
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends the zigzag LEB128 encoding of `v` to `out`.
pub fn encode_i64(v: i64, out: &mut Vec<u8>) {
    encode_u64(zigzag_encode(v), out);
}

/// Decodes one zigzag LEB128 `i64` from the front of `bytes`.
pub fn decode_i64(bytes: &[u8]) -> io::Result<(i64, usize)> {
    let (raw, used) = decode_u64(bytes)?;
    Ok((zigzag_decode(raw), used))
}

/// A cursor over a byte slice mixing varints with fixed-width fields, the
/// way the compressed record decoders walk a directory span.
pub struct VarintReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> VarintReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        VarintReader { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads one canonical LEB128 `u64`.
    #[inline]
    pub fn u64(&mut self) -> io::Result<u64> {
        let (v, used) = decode_u64(&self.bytes[self.pos..])?;
        self.pos += used;
        Ok(v)
    }

    /// Reads one zigzag LEB128 `i64`.
    #[inline]
    pub fn i64(&mut self) -> io::Result<i64> {
        let (v, used) = decode_i64(&self.bytes[self.pos..])?;
        self.pos += used;
        Ok(v)
    }

    /// Reads `n` raw bytes.
    #[inline]
    pub fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated fixed-width field",
            ));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a little-endian `f32`, bits verbatim.
    #[inline]
    pub fn f32_le(&mut self) -> io::Result<f32> {
        let b = self.bytes(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `f64`, bits verbatim.
    #[inline]
    pub fn f64_le(&mut self) -> io::Result<f64> {
        let b = self.bytes(8)?;
        Ok(f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(v: u64) -> Vec<u8> {
        let mut out = Vec::new();
        encode_u64(v, &mut out);
        out
    }

    #[test]
    fn round_trips_representative_values() {
        for v in [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let bytes = enc(v);
            assert_eq!(bytes.len(), encoded_len(v), "encoded_len mismatch for {v}");
            assert!(bytes.len() <= MAX_VARINT_BYTES);
            let (back, used) = decode_u64(&bytes).unwrap();
            assert_eq!((back, used), (v, bytes.len()), "round trip of {v}");
            // Trailing garbage after a terminated varint is not consumed.
            let mut padded = bytes.clone();
            padded.push(0xaa);
            assert_eq!(decode_u64(&padded).unwrap(), (v, bytes.len()));
        }
    }

    #[test]
    fn boundary_lengths_are_exact() {
        // Each 7-bit boundary adds one byte.
        for (v, len) in [
            (0x7fu64, 1),
            (0x80, 2),
            (0x3fff, 2),
            (0x4000, 3),
            (u64::MAX >> 1, 9),
            ((u64::MAX >> 1) + 1, 10),
            (u64::MAX, 10),
        ] {
            assert_eq!(enc(v).len(), len, "length of {v:#x}");
            assert_eq!(encoded_len(v), len);
        }
    }

    #[test]
    fn max_length_encoding_is_ten_bytes_and_decodes() {
        let bytes = enc(u64::MAX);
        assert_eq!(bytes.len(), MAX_VARINT_BYTES);
        assert_eq!(bytes[9], 0x01, "10th byte holds exactly the 64th bit");
        assert_eq!(decode_u64(&bytes).unwrap(), (u64::MAX, 10));
    }

    #[test]
    fn truncated_input_is_unexpected_eof() {
        for v in [0x80u64, 0x4000, u64::MAX] {
            let bytes = enc(v);
            for cut in 0..bytes.len() {
                let err = decode_u64(&bytes[..cut]).unwrap_err();
                assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut} of {v:#x}");
            }
        }
        assert_eq!(decode_u64(&[]).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn overlong_and_noncanonical_inputs_are_invalid_data() {
        // 11 continuation-marked bytes: longer than any u64 varint.
        let overlong = [0x80u8; 11];
        assert_eq!(decode_u64(&overlong).unwrap_err().kind(), io::ErrorKind::InvalidData);
        // 10th byte with bits beyond the 64th (0x02 would be bit 65).
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x02;
        assert_eq!(decode_u64(&overflow).unwrap_err().kind(), io::ErrorKind::InvalidData);
        // Non-canonical: 0 encoded as two bytes (0x80 0x00).
        assert_eq!(decode_u64(&[0x80, 0x00]).unwrap_err().kind(), io::ErrorKind::InvalidData);
        // Non-canonical: 1 encoded as (0x81 0x00).
        assert_eq!(decode_u64(&[0x81, 0x00]).unwrap_err().kind(), io::ErrorKind::InvalidData);
        // But plain 0 is fine.
        assert_eq!(decode_u64(&[0x00]).unwrap(), (0, 1));
    }

    #[test]
    fn zigzag_round_trips_and_keeps_small_values_small() {
        for (v, z) in [(0i64, 0u64), (-1, 1), (1, 2), (-2, 3), (2, 4)] {
            assert_eq!(zigzag_encode(v), z);
            assert_eq!(zigzag_decode(z), v);
        }
        for v in [i64::MIN, i64::MIN + 1, -12345, 12345, i64::MAX - 1, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
            let mut out = Vec::new();
            encode_i64(v, &mut out);
            assert_eq!(decode_i64(&out).unwrap(), (v, out.len()));
        }
    }

    #[test]
    fn reader_walks_mixed_records() {
        let mut buf = Vec::new();
        encode_u64(300, &mut buf);
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        encode_i64(-7, &mut buf);
        buf.extend_from_slice(&2.25f64.to_le_bytes());
        let mut r = VarintReader::new(&buf);
        assert_eq!(r.u64().unwrap(), 300);
        assert_eq!(r.f32_le().unwrap(), 1.5);
        assert_eq!(r.i64().unwrap(), -7);
        assert_eq!(r.f64_le().unwrap(), 2.25);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.position(), buf.len());
        assert_eq!(r.u64().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(r.bytes(1).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }
}
