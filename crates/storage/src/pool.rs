//! An LRU buffer pool over a [`PageStore`].

use crate::store::{PageId, PageStore};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// Counters describing the pool's I/O behaviour since creation (or the last
/// [`BufferPool::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that went to the underlying store.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Bytes read from the underlying store.
    pub bytes_read: u64,
    /// Wall-clock nanoseconds spent reading from the underlying store.
    pub read_nanos: u64,
}

impl IoStats {
    /// Total page requests.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of requests served from cache (1.0 for an idle pool).
    pub fn hit_rate(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Time spent in the store, as seconds.
    pub fn read_seconds(&self) -> f64 {
        self.read_nanos as f64 / 1e9
    }
}

const NIL: usize = usize::MAX;

struct Slot {
    page: u64,
    data: Arc<[u8]>,
    prev: usize,
    next: usize,
}

/// Intrusive doubly-linked LRU list over a slab of slots.
struct LruState {
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: IoStats,
}

impl LruState {
    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// A fixed-capacity LRU cache of pages in front of a [`PageStore`].
///
/// Thread-safe; the store read itself happens outside the lock would be
/// ideal, but SILC queries are single-threaded per query and benchmark
/// workloads run one pool per thread, so the simple design — read under the
/// lock, which also dedups concurrent misses — is the right trade-off here.
pub struct BufferPool<S: PageStore> {
    store: S,
    capacity: usize,
    state: Mutex<LruState>,
}

impl<S: PageStore> BufferPool<S> {
    /// Creates a pool holding at most `capacity` pages (minimum 1).
    pub fn new(store: S, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BufferPool {
            store,
            capacity,
            state: Mutex::new(LruState {
                map: HashMap::with_capacity(capacity * 2),
                slots: Vec::with_capacity(capacity),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                stats: IoStats::default(),
            }),
        }
    }

    /// Creates a pool sized to `fraction` of the store's pages — the paper
    /// uses 5 % (`fraction = 0.05`).
    pub fn with_fraction(store: S, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        let cap = ((store.page_count() as f64 * fraction).ceil() as usize).max(1);
        Self::new(store, cap)
    }

    /// Maximum number of cached pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Fetches a page, from cache when possible.
    pub fn get(&self, page: PageId) -> io::Result<Arc<[u8]>> {
        let mut st = self.state.lock();
        if let Some(&idx) = st.map.get(&page.0) {
            st.stats.hits += 1;
            st.detach(idx);
            st.push_front(idx);
            return Ok(Arc::clone(&st.slots[idx].data));
        }
        // Miss: read from the store (timed), then insert with LRU eviction.
        let start = Instant::now();
        let data = self.store.read_page(page)?;
        let nanos = start.elapsed().as_nanos() as u64;
        st.stats.misses += 1;
        st.stats.bytes_read += data.len() as u64;
        st.stats.read_nanos += nanos;

        let idx = if st.map.len() >= self.capacity {
            // Evict the least recently used page.
            let victim = st.tail;
            debug_assert_ne!(victim, NIL);
            st.detach(victim);
            let old = st.slots[victim].page;
            st.map.remove(&old);
            st.stats.evictions += 1;
            st.slots[victim].page = page.0;
            st.slots[victim].data = Arc::clone(&data);
            victim
        } else if let Some(free) = st.free.pop() {
            st.slots[free].page = page.0;
            st.slots[free].data = Arc::clone(&data);
            free
        } else {
            st.slots.push(Slot { page: page.0, data: Arc::clone(&data), prev: NIL, next: NIL });
            st.slots.len() - 1
        };
        st.push_front(idx);
        st.map.insert(page.0, idx);
        Ok(data)
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStats {
        self.state.lock().stats
    }

    /// Zeroes the I/O counters (the cache contents are kept).
    pub fn reset_stats(&self) {
        self.state.lock().stats = IoStats::default();
    }

    /// Drops every cached page (counters are kept). Used to cold-start
    /// experiment repetitions.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.map.clear();
        st.free.clear();
        for i in 0..st.slots.len() {
            st.free.push(i);
        }
        st.head = NIL;
        st.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{MemPageStore, PAGE_SIZE};

    fn store_with(pages: usize) -> MemPageStore {
        let mut data = Vec::with_capacity(pages * PAGE_SIZE);
        for p in 0..pages {
            data.extend(std::iter::repeat_n(p as u8, PAGE_SIZE));
        }
        MemPageStore::new(&data)
    }

    #[test]
    fn hit_after_miss() {
        let pool = BufferPool::new(store_with(4), 2);
        let a = pool.get(PageId(1)).unwrap();
        assert_eq!(a[0], 1);
        let _b = pool.get(PageId(1)).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.bytes_read, PAGE_SIZE as u64);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let pool = BufferPool::new(store_with(4), 2);
        pool.get(PageId(0)).unwrap(); // cache: [0]
        pool.get(PageId(1)).unwrap(); // cache: [1, 0]
        pool.get(PageId(0)).unwrap(); // touch 0 -> [0, 1]
        pool.get(PageId(2)).unwrap(); // evicts 1 -> [2, 0]
        let before = pool.stats();
        assert_eq!(before.evictions, 1);
        pool.get(PageId(0)).unwrap(); // still cached
        assert_eq!(pool.stats().hits, before.hits + 1);
        pool.get(PageId(1)).unwrap(); // evicted: miss
        assert_eq!(pool.stats().misses, before.misses + 1);
    }

    #[test]
    fn capacity_one_thrashes() {
        let pool = BufferPool::new(store_with(3), 1);
        for _ in 0..3 {
            pool.get(PageId(0)).unwrap();
            pool.get(PageId(1)).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 6);
        assert_eq!(s.evictions, 5);
    }

    #[test]
    fn fraction_sizing() {
        let pool = BufferPool::with_fraction(store_with(100), 0.05);
        assert_eq!(pool.capacity(), 5);
        let tiny = BufferPool::with_fraction(store_with(3), 0.05);
        assert_eq!(tiny.capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_rejected() {
        let _ = BufferPool::with_fraction(store_with(1), 0.0);
    }

    #[test]
    fn clear_then_reuse() {
        let pool = BufferPool::new(store_with(4), 4);
        pool.get(PageId(0)).unwrap();
        pool.get(PageId(1)).unwrap();
        pool.clear();
        pool.get(PageId(0)).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 3, "all requests after clear() are cold");
        pool.reset_stats();
        assert_eq!(pool.stats(), IoStats::default());
    }

    #[test]
    fn error_propagates_without_poisoning() {
        let pool = BufferPool::new(store_with(2), 2);
        assert!(pool.get(PageId(10)).is_err());
        // The pool still works afterwards.
        assert!(pool.get(PageId(0)).is_ok());
    }

    #[test]
    fn hit_rate_math() {
        let s = IoStats { hits: 3, misses: 1, ..Default::default() };
        assert_eq!(s.requests(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(IoStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn shared_across_threads() {
        let pool = std::sync::Arc::new(BufferPool::new(store_with(8), 4));
        let mut handles = Vec::new();
        for t in 0..4 {
            let p = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let page = PageId((i + t) % 8);
                    let data = p.get(page).unwrap();
                    assert_eq!(data[0] as u64, page.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.stats().requests(), 200);
    }
}
