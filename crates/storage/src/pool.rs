//! A sharded LRU buffer pool over a [`PageStore`].
//!
//! The pool is the one shared structure every concurrent query thread goes
//! through, so it is built for parallel readers: pages are partitioned
//! across N independent shards (by page id), each with its own mutex, LRU
//! list and I/O counters. Store reads happen **outside** the shard lock —
//! a miss publishes the page id in the shard's inflight set, releases the
//! lock, reads, then re-locks to insert; concurrent requests for the same
//! page wait on the shard's condvar instead of issuing a duplicate read.

use crate::checksum::ChecksumTable;
use crate::lru::LruList;
use crate::store::{PageId, PageStore, PAGE_SIZE};
use std::collections::HashSet;
use std::io;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Counters describing the pool's I/O behaviour since creation (or the last
/// [`BufferPool::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests served from the cache (including requests that waited
    /// for a concurrent loader of the same page).
    pub hits: u64,
    /// Page requests that went to the underlying store.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Bytes read from the underlying store.
    pub bytes_read: u64,
    /// Wall-clock nanoseconds spent reading from the underlying store.
    pub read_nanos: u64,
    /// Store read attempts re-issued after a transient fault (per the
    /// pool's [`RetryPolicy`]).
    pub retries: u64,
    /// Store faults observed: transient errors, permanent errors, torn
    /// (short) reads, and checksum mismatches — whether or not a retry
    /// later succeeded.
    pub faults_seen: u64,
    /// Pages fetched beyond a requested range by the pool's
    /// [`PrefetchPolicy`]. Not requests: `hits + misses` stays the number
    /// of pages callers asked for, while `misses + prefetched` is the
    /// number of pages physically read from the store.
    pub prefetched: u64,
    /// Requests served from a page that entered the cache as a prefetch —
    /// the subset of `hits` the readahead hint paid for. A prefetched page
    /// is counted here at most once (its first hit); later hits on it are
    /// ordinary hits.
    pub prefetch_hits: u64,
}

impl IoStats {
    /// Total page requests.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of requests served from cache (1.0 for an idle pool).
    pub fn hit_rate(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Time spent in the store, as seconds.
    pub fn read_seconds(&self) -> f64 {
        self.read_nanos as f64 / 1e9
    }

    /// Element-wise sum — aggregation across shards.
    fn add(&mut self, other: &IoStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.bytes_read += other.bytes_read;
        self.read_nanos += other.read_nanos;
        self.retries += other.retries;
        self.faults_seen += other.faults_seen;
        self.prefetched += other.prefetched;
        self.prefetch_hits += other.prefetch_hits;
    }
}

/// Readahead hint for [`BufferPool::read_range`].
///
/// When a cold run reaches the end of a requested range, the pool may
/// extend the same single [`PageStore::read_pages`] call by up to `window`
/// further sequential pages — betting that a scan continues where it left
/// off (entry regions and pair groups are laid out in scan order). The
/// extension never exceeds [`MAX_COALESCED_PAGES`] in total, never reads
/// past the store, and only covers pages that are neither cached nor
/// already being read.
///
/// Accounting is exact (see [`IoStats::prefetched`] /
/// [`IoStats::prefetch_hits`]), so a benchmark can prove whether the hint
/// pays. Note that with checksums enabled a corrupt *prefetched* page
/// fails the whole `read_range`, exactly like a corrupt requested page —
/// readahead does not widen the set of errors that go unreported.
///
/// The default window is 0: readahead off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchPolicy {
    /// Maximum number of pages to read ahead past a requested range.
    pub window: usize,
}

/// How a [`BufferPool`] retries transient store faults.
///
/// *Transient* means `io::ErrorKind::Interrupted`, `TimedOut` or
/// `WouldBlock`, plus torn (short) reads — the faults a healthy disk can
/// recover from on the next attempt. Permanent errors and checksum
/// mismatches are never retried. Backoff doubles per attempt up to
/// `backoff_max` with no jitter, so a given fault schedule always produces
/// the same retry sequence (deterministic tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per store call, the first one included (minimum 1).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per further retry.
    pub backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_max: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 1 ms initial backoff, 20 ms cap.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
            backoff_max: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A single attempt: every fault propagates immediately.
    pub fn no_retry() -> Self {
        RetryPolicy { max_attempts: 1, backoff: Duration::ZERO, backoff_max: Duration::ZERO }
    }

    /// Default attempts with zero backoff — what deterministic tests use.
    pub fn fast() -> Self {
        RetryPolicy { max_attempts: 3, backoff: Duration::ZERO, backoff_max: Duration::ZERO }
    }

    /// Sleep before retry number `retry` (1-based), doubling and capped.
    fn delay(&self, retry: u32) -> Duration {
        self.backoff.saturating_mul(1u32 << (retry - 1).min(16)).min(self.backoff_max)
    }
}

/// Is this the kind of store error a retry can plausibly clear?
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Faults seen and retries issued during one store call sequence; merged
/// into the shard's [`IoStats`] under its lock afterwards.
#[derive(Default, Clone, Copy)]
struct FaultAcct {
    faults: u64,
    retries: u64,
}

/// Default shard count; clamped so every shard caches at least one page.
const DEFAULT_SHARDS: usize = 8;

/// Longest run of pages [`BufferPool::read_range`] reads with one store
/// call, readahead included — bounds the transient allocation (256 KiB)
/// while still collapsing any realistic entry-region scan into a single
/// syscall. A [`PrefetchPolicy`] window is clamped so that the claimed run
/// plus its extension never exceeds this many pages.
pub const MAX_COALESCED_PAGES: usize = 64;

/// Outcome of probing a single page under its shard lock.
enum Probe {
    /// Cached; the hit has been counted.
    Hit(Arc<[u8]>),
    /// Another thread is loading it.
    Busy,
    /// Neither cached nor inflight; the caller now owns the inflight claim.
    Claimed,
}

/// Releases a run of inflight claims if the owning read never completed
/// (store error or panic) — without it, waiters on any claimed page would
/// sleep in the condvar forever.
struct RunGuard<'a, S: PageStore> {
    pool: &'a BufferPool<S>,
    first: u64,
    count: usize,
    armed: bool,
}

impl<S: PageStore> Drop for RunGuard<'_, S> {
    fn drop(&mut self) {
        if self.armed {
            for i in 0..self.count as u64 {
                let page = self.first + i;
                let shard = self.pool.shard(page);
                shard.lock().inflight.remove(&page);
                shard.loaded.notify_all();
            }
        }
    }
}

/// Per-shard state: the LRU list of cached pages, the shard's inflight
/// reads, and its I/O counters. All behind the shard mutex.
struct LruState {
    list: LruList<Arc<[u8]>>,
    /// Pages currently being read from the store by some thread. A page is
    /// never cached and inflight at the same time.
    inflight: HashSet<u64>,
    /// Cached pages that entered as readahead and have not been requested
    /// yet — the first request of such a page counts a `prefetch_hit`.
    /// Eviction removes a page from here too, so a later ordinary re-read
    /// is never miscounted as a prefetch payoff.
    prefetched: HashSet<u64>,
    stats: IoStats,
}

impl LruState {
    fn new(capacity: usize) -> Self {
        LruState {
            list: LruList::new(capacity),
            inflight: HashSet::new(),
            prefetched: HashSet::new(),
            stats: IoStats::default(),
        }
    }

    /// Counts a cache hit of `page`, classifying the first hit of a
    /// prefetched page.
    fn count_hit(&mut self, page: u64) {
        self.stats.hits += 1;
        if self.prefetched.remove(&page) {
            self.stats.prefetch_hits += 1;
        }
    }

    /// Inserts `page`, counting an eviction and dropping evicted-page
    /// metadata.
    fn insert_page(&mut self, page: u64, data: Arc<[u8]>) {
        if let Some(victim) = self.list.insert(page, data) {
            self.stats.evictions += 1;
            self.prefetched.remove(&victim);
        }
    }
}

struct Shard {
    state: Mutex<LruState>,
    /// Signalled whenever an inflight read completes (or fails).
    loaded: Condvar,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, LruState> {
        // A poisoned shard (a panic under the lock) keeps serving: the LRU
        // structure is only mutated through small, non-panicking steps.
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A fixed-capacity sharded LRU cache of pages in front of a [`PageStore`].
///
/// Thread-safe and built for concurrent readers: page ids are partitioned
/// across shards, each with its own lock, so readers touching different
/// pages rarely contend. Store reads run outside the shard lock; concurrent
/// misses on the same page are deduplicated (one read, everyone else waits
/// and is then served from memory — counted as a hit).
///
/// [`Self::read_range`] coalesces cold contiguous spans into single store
/// calls of at most [`MAX_COALESCED_PAGES`] pages, and an optional
/// [`PrefetchPolicy`] extends such a run past the requested range (within
/// the same cap) when a sequential scan is expected to continue.
pub struct BufferPool<S: PageStore> {
    store: S,
    capacity: usize,
    shards: Box<[Shard]>,
    retry: RetryPolicy,
    prefetch: PrefetchPolicy,
    checks: Option<Arc<ChecksumTable>>,
}

impl<S: PageStore> BufferPool<S> {
    /// Creates a pool holding at most `capacity` pages (minimum 1) across
    /// the default shard count.
    pub fn new(store: S, capacity: usize) -> Self {
        Self::with_shards(store, capacity, DEFAULT_SHARDS)
    }

    /// Creates a pool with an explicit shard count (minimum 1; clamped so
    /// every shard caches at least one page). `shards = 1` gives a single
    /// globally ordered LRU — useful when exact eviction order matters more
    /// than concurrency.
    pub fn with_shards(store: S, capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        // Distribute capacity as evenly as possible; totals stay exact.
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards: Box<[Shard]> = (0..shards)
            .map(|i| Shard {
                state: Mutex::new(LruState::new(base + usize::from(i < extra))),
                loaded: Condvar::new(),
            })
            .collect();
        BufferPool {
            store,
            capacity,
            shards,
            retry: RetryPolicy::default(),
            prefetch: PrefetchPolicy::default(),
            checks: None,
        }
    }

    /// Creates a pool sized to `fraction` of the store's pages — the paper
    /// uses 5 % (`fraction = 0.05`).
    pub fn with_fraction(store: S, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        let cap = ((store.page_count() as f64 * fraction).ceil() as usize).max(1);
        Self::new(store, cap)
    }

    /// Maximum number of cached pages (summed over all shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards the cache is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Sets how transient store faults are retried (see [`RetryPolicy`]).
    /// Configure before sharing the pool across threads.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = RetryPolicy { max_attempts: retry.max_attempts.max(1), ..retry };
    }

    /// The pool's current retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Sets the readahead hint for [`Self::read_range`] (see
    /// [`PrefetchPolicy`]). Configure before sharing the pool across
    /// threads.
    pub fn set_prefetch_policy(&mut self, prefetch: PrefetchPolicy) {
        self.prefetch = prefetch;
    }

    /// The pool's current prefetch policy.
    pub fn prefetch_policy(&self) -> PrefetchPolicy {
        self.prefetch
    }

    /// Verifies every page fetched from the store against `checks` —
    /// cache hits pay nothing. A mismatch surfaces as the typed error of
    /// [`corrupt_page`](crate::checksum::corrupt_page), naming the page.
    /// Configure before sharing the pool across threads.
    pub fn set_checksums(&mut self, checks: Arc<ChecksumTable>) {
        self.checks = Some(checks);
    }

    /// Drops checksum verification for this pool — the per-open opt-out
    /// for trusted media and overhead measurements (`bench_tradeoff`
    /// records verified and unverified QPS side by side). Configure before
    /// sharing the pool across threads.
    pub fn clear_checksums(&mut self) {
        self.checks = None;
    }

    /// One store call for a single page, with retries on transient faults
    /// and checksum verification, accounting into `acct`. Runs with no
    /// shard lock held.
    fn fetch_page(&self, page: PageId, acct: &mut FaultAcct) -> io::Result<Arc<[u8]>> {
        let mut attempt = 1u32;
        loop {
            let result = self.store.read_page(page).and_then(|data| {
                if data.len() != PAGE_SIZE {
                    // A torn read: the store delivered fewer bytes than a
                    // page. Modeled as transient — re-reading a healthy
                    // store yields the full page.
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!("torn read: page {} returned {} bytes", page.0, data.len()),
                    ));
                }
                Ok(data)
            });
            match result {
                Ok(data) => {
                    if let Some(checks) = &self.checks {
                        if let Err(e) = checks.verify(page.0, &data) {
                            acct.faults += 1; // corruption is never retried
                            return Err(e);
                        }
                    }
                    return Ok(data);
                }
                Err(e) => {
                    acct.faults += 1;
                    if is_transient(&e) && attempt < self.retry.max_attempts {
                        acct.retries += 1;
                        let d = self.retry.delay(attempt);
                        if !d.is_zero() {
                            std::thread::sleep(d);
                        }
                        attempt += 1;
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// One store call for a run of pages, with the same retry, torn-read
    /// and checksum semantics as [`Self::fetch_page`].
    fn fetch_run(
        &self,
        first: PageId,
        count: usize,
        acct: &mut FaultAcct,
    ) -> io::Result<Vec<Arc<[u8]>>> {
        let mut attempt = 1u32;
        loop {
            let result = self.store.read_pages(first, count).and_then(|pages| {
                if pages.len() != count {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!("torn run: {} pages returned for a run of {count}", pages.len()),
                    ));
                }
                if let Some(i) = pages.iter().position(|p| p.len() != PAGE_SIZE) {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!(
                            "torn read: page {} returned {} bytes",
                            first.0 + i as u64,
                            pages[i].len()
                        ),
                    ));
                }
                Ok(pages)
            });
            match result {
                Ok(pages) => {
                    if let Some(checks) = &self.checks {
                        for (i, data) in pages.iter().enumerate() {
                            if let Err(e) = checks.verify(first.0 + i as u64, data) {
                                acct.faults += 1;
                                return Err(e);
                            }
                        }
                    }
                    return Ok(pages);
                }
                Err(e) => {
                    acct.faults += 1;
                    if is_transient(&e) && attempt < self.retry.max_attempts {
                        acct.retries += 1;
                        let d = self.retry.delay(attempt);
                        if !d.is_zero() {
                            std::thread::sleep(d);
                        }
                        attempt += 1;
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    #[inline]
    fn shard(&self, page: u64) -> &Shard {
        // Modulo keeps consecutive pages on different shards, so the
        // sequential scans of entry lists spread across all locks.
        &self.shards[(page % self.shards.len() as u64) as usize]
    }

    /// Fetches a page, from cache when possible.
    pub fn get(&self, page: PageId) -> io::Result<Arc<[u8]>> {
        let shard = self.shard(page.0);
        let mut st = shard.lock();
        loop {
            if let Some(data) = st.list.get(page.0) {
                st.count_hit(page.0);
                return Ok(data);
            }
            if st.inflight.contains(&page.0) {
                // Another thread is reading this page: wait for it rather
                // than duplicating the store read, then re-check the map.
                st = shard.loaded.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            st.inflight.insert(page.0);
            break;
        }
        drop(st);

        // The store read happens with no lock held. The guard covers a
        // *panicking* store implementation: without it, an unwind here would
        // leave the page id in the inflight set forever, deadlocking every
        // future `get` of this page in its condvar wait.
        struct InflightGuard<'a> {
            shard: &'a Shard,
            page: u64,
            armed: bool,
        }
        impl Drop for InflightGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.shard.lock().inflight.remove(&self.page);
                    self.shard.loaded.notify_all();
                }
            }
        }
        let mut guard = InflightGuard { shard, page: page.0, armed: true };
        let mut acct = FaultAcct::default();
        let start = Instant::now();
        let result = self.fetch_page(page, &mut acct);
        let nanos = start.elapsed().as_nanos() as u64;

        let mut st = shard.lock();
        guard.armed = false; // cleanup happens right here, under the lock
        st.inflight.remove(&page.0);
        shard.loaded.notify_all();
        st.stats.faults_seen += acct.faults;
        st.stats.retries += acct.retries;
        let data = match result {
            Ok(data) => data,
            Err(e) => {
                // Waiters re-check, find neither a cached page nor an
                // inflight read, and retry the store themselves.
                return Err(e);
            }
        };
        st.stats.misses += 1;
        st.stats.bytes_read += data.len() as u64;
        st.stats.read_nanos += nanos;
        st.insert_page(page.0, Arc::clone(&data));
        Ok(data)
    }

    /// Probes one page under its shard lock without triggering a store
    /// read: a cache hit is counted and returned, a page someone else is
    /// loading reports [`Probe::Busy`], and anything else is claimed as
    /// inflight by the caller ([`Probe::Claimed`]) — who then owns the read
    /// and the cleanup.
    fn probe(&self, page: u64) -> Probe {
        let shard = self.shard(page);
        let mut st = shard.lock();
        if let Some(data) = st.list.get(page) {
            st.count_hit(page);
            return Probe::Hit(data);
        }
        if st.inflight.contains(&page) {
            return Probe::Busy;
        }
        st.inflight.insert(page);
        Probe::Claimed
    }

    /// Claims `page` as inflight if it is neither cached nor already being
    /// loaded. Unlike [`BufferPool::probe`] this counts nothing: a `false`
    /// just ends the run, and the page is probed properly later.
    fn try_claim(&self, page: u64) -> bool {
        let mut st = self.shard(page).lock();
        if st.list.contains(page) || st.inflight.contains(&page) {
            return false;
        }
        st.inflight.insert(page);
        true
    }

    /// Appends the bytes in `[byte_lo, byte_hi)` to `out`, fetching each
    /// covered page through the cache — the access pattern of decoding a
    /// variable-length record region that ignores page boundaries.
    ///
    /// Runs of consecutive uncached pages are claimed together (at most
    /// [`MAX_COALESCED_PAGES`] per run) and read with a single
    /// [`PageStore::read_pages`] call (one syscall instead of one per page
    /// on a file store), which is what makes cold sequential scans of
    /// entry regions cheap. When a [`PrefetchPolicy`] is set, a run that
    /// reaches the end of the range is extended past it by up to `window`
    /// readahead pages in the same store call. The I/O counters stay
    /// exact: every covered page still counts exactly one hit or one miss,
    /// and `misses + prefetched` equals the pages fetched from the store.
    pub fn read_range(&self, byte_lo: u64, byte_hi: u64, out: &mut Vec<u8>) -> io::Result<()> {
        if byte_hi <= byte_lo {
            return Ok(());
        }
        let slice_of = |data: &Arc<[u8]>, page: u64, out: &mut Vec<u8>| {
            let lo = byte_lo.max(page * PAGE_SIZE as u64) - page * PAGE_SIZE as u64;
            let hi = byte_hi.min((page + 1) * PAGE_SIZE as u64) - page * PAGE_SIZE as u64;
            out.extend_from_slice(&data[lo as usize..hi as usize]);
        };
        let page_lo = byte_lo / PAGE_SIZE as u64;
        let page_hi = (byte_hi - 1) / PAGE_SIZE as u64;
        let mut page = page_lo;
        while page <= page_hi {
            match self.probe(page) {
                Probe::Hit(data) => {
                    slice_of(&data, page, out);
                    page += 1;
                }
                Probe::Busy => {
                    // Someone else is loading it: `get` waits on the condvar
                    // and counts the request once resolved.
                    let data = self.get(PageId(page))?;
                    slice_of(&data, page, out);
                    page += 1;
                }
                Probe::Claimed => {
                    // Extend the claim over the longest run of consecutive
                    // pages that are neither cached nor inflight, then read
                    // the whole run with one store call.
                    let cap = MAX_COALESCED_PAGES.min((page_hi - page + 1) as usize);
                    let mut count = 1usize;
                    while count < cap && self.try_claim(page + count as u64) {
                        count += 1;
                    }
                    // Readahead: a cold run that reaches the end of the
                    // requested range keeps claiming up to `window` further
                    // sequential pages — same store call, same cap, never
                    // past the store's end.
                    if self.prefetch.window > 0 && page + count as u64 == page_hi + 1 {
                        let store_pages = self.store.page_count();
                        let limit = (count + self.prefetch.window)
                            .min(MAX_COALESCED_PAGES)
                            .min(store_pages.saturating_sub(page) as usize);
                        while count < limit && self.try_claim(page + count as u64) {
                            count += 1;
                        }
                    }
                    // The guard covers a panicking or failing store: the
                    // claimed inflight entries must be released either way,
                    // or future readers of these pages deadlock.
                    let mut guard = RunGuard { pool: self, first: page, count, armed: true };
                    let mut acct = FaultAcct::default();
                    let start = Instant::now();
                    let pages = self.fetch_run(PageId(page), count, &mut acct);
                    let nanos = start.elapsed().as_nanos() as u64;
                    if acct.faults != 0 {
                        // Like read_nanos, the run's fault counters are
                        // attributed once, to the first page's shard.
                        let mut st = self.shard(page).lock();
                        st.stats.faults_seen += acct.faults;
                        st.stats.retries += acct.retries;
                    }
                    let pages = pages?; // guard releases the claims on error
                    for (i, data) in pages.iter().enumerate() {
                        let p = page + i as u64;
                        let shard = self.shard(p);
                        let mut st = shard.lock();
                        st.inflight.remove(&p);
                        if p <= page_hi {
                            st.stats.misses += 1;
                        } else {
                            // A readahead page: physically read, but not a
                            // request — its first hit proves the bet paid.
                            st.stats.prefetched += 1;
                            st.prefetched.insert(p);
                        }
                        st.stats.bytes_read += data.len() as u64;
                        if i == 0 {
                            // The run's wall-clock is one store call; it is
                            // attributed once, to the first page's shard, so
                            // the aggregate stays exact.
                            st.stats.read_nanos += nanos;
                        }
                        st.insert_page(p, Arc::clone(data));
                        drop(st);
                        shard.loaded.notify_all();
                        if p <= page_hi {
                            slice_of(data, p, out);
                        }
                    }
                    guard.armed = false;
                    page += count as u64;
                }
            }
        }
        Ok(())
    }

    /// Snapshot of the I/O counters, aggregated across shards.
    ///
    /// Each shard's counters are internally consistent (`hits + misses`
    /// equals the successful requests routed to it); the aggregate is a sum
    /// of per-shard snapshots, so totals are exact once concurrent `get`s
    /// have returned.
    pub fn stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for shard in self.shards.iter() {
            total.add(&shard.lock().stats);
        }
        total
    }

    /// Zeroes the I/O counters (the cache contents are kept).
    pub fn reset_stats(&self) {
        for shard in self.shards.iter() {
            shard.lock().stats = IoStats::default();
        }
    }

    /// Drops every cached page (counters are kept). Used to cold-start
    /// experiment repetitions.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut st = shard.lock();
            st.list.clear();
            st.prefetched.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{MemPageStore, PAGE_SIZE};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn store_with(pages: usize) -> MemPageStore {
        let mut data = Vec::with_capacity(pages * PAGE_SIZE);
        for p in 0..pages {
            data.extend(std::iter::repeat_n(p as u8, PAGE_SIZE));
        }
        MemPageStore::new(&data)
    }

    /// A store that counts (and can stall) physical reads — for dedup and
    /// coalescing tests. `reads` counts pages fetched, `calls` counts store
    /// operations; a coalesced run is one call fetching many pages.
    struct CountingStore {
        inner: MemPageStore,
        reads: AtomicU64,
        calls: AtomicU64,
        delay: std::time::Duration,
    }

    impl PageStore for CountingStore {
        fn read_page(&self, page: PageId) -> io::Result<Arc<[u8]>> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.calls.fetch_add(1, Ordering::Relaxed);
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            self.inner.read_page(page)
        }

        fn page_count(&self) -> u64 {
            self.inner.page_count()
        }

        fn read_pages(&self, first: PageId, count: usize) -> io::Result<Vec<Arc<[u8]>>> {
            self.reads.fetch_add(count as u64, Ordering::Relaxed);
            self.calls.fetch_add(1, Ordering::Relaxed);
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            self.inner.read_pages(first, count)
        }
    }

    #[test]
    fn hit_after_miss() {
        let pool = BufferPool::new(store_with(4), 2);
        let a = pool.get(PageId(1)).unwrap();
        assert_eq!(a[0], 1);
        let _b = pool.get(PageId(1)).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.bytes_read, PAGE_SIZE as u64);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Single shard: exact global LRU order is observable.
        let pool = BufferPool::with_shards(store_with(4), 2, 1);
        pool.get(PageId(0)).unwrap(); // cache: [0]
        pool.get(PageId(1)).unwrap(); // cache: [1, 0]
        pool.get(PageId(0)).unwrap(); // touch 0 -> [0, 1]
        pool.get(PageId(2)).unwrap(); // evicts 1 -> [2, 0]
        let before = pool.stats();
        assert_eq!(before.evictions, 1);
        pool.get(PageId(0)).unwrap(); // still cached
        assert_eq!(pool.stats().hits, before.hits + 1);
        pool.get(PageId(1)).unwrap(); // evicted: miss
        assert_eq!(pool.stats().misses, before.misses + 1);
    }

    #[test]
    fn capacity_one_thrashes() {
        let pool = BufferPool::new(store_with(3), 1);
        assert_eq!(pool.shard_count(), 1, "capacity bounds the shard count");
        for _ in 0..3 {
            pool.get(PageId(0)).unwrap();
            pool.get(PageId(1)).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 6);
        assert_eq!(s.evictions, 5);
    }

    #[test]
    fn fraction_sizing() {
        let pool = BufferPool::with_fraction(store_with(100), 0.05);
        assert_eq!(pool.capacity(), 5);
        let tiny = BufferPool::with_fraction(store_with(3), 0.05);
        assert_eq!(tiny.capacity(), 1);
    }

    #[test]
    fn shard_capacities_sum_to_total() {
        for cap in [1usize, 2, 5, 7, 8, 9, 64] {
            let pool = BufferPool::new(store_with(4), cap);
            assert_eq!(pool.capacity(), cap);
            assert!(pool.shard_count() <= cap);
            let shard_total: usize = pool.shards.iter().map(|s| s.lock().list.capacity()).sum();
            assert_eq!(shard_total, cap, "per-shard capacities must sum to the total");
            assert!(pool.shards.iter().all(|s| s.lock().list.capacity() >= 1));
        }
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_rejected() {
        let _ = BufferPool::with_fraction(store_with(1), 0.0);
    }

    #[test]
    fn clear_then_reuse() {
        let pool = BufferPool::new(store_with(4), 4);
        pool.get(PageId(0)).unwrap();
        pool.get(PageId(1)).unwrap();
        pool.clear();
        pool.get(PageId(0)).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 3, "all requests after clear() are cold");
        pool.reset_stats();
        assert_eq!(pool.stats(), IoStats::default());
    }

    #[test]
    fn error_propagates_without_poisoning() {
        let pool = BufferPool::new(store_with(2), 2);
        assert!(pool.get(PageId(10)).is_err());
        // The pool still works afterwards, including for the failed page id
        // (no stuck inflight entry).
        assert!(pool.get(PageId(0)).is_ok());
        assert!(pool.get(PageId(10)).is_err());
    }

    #[test]
    fn hit_rate_math() {
        let s = IoStats { hits: 3, misses: 1, ..Default::default() };
        assert_eq!(s.requests(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(IoStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn shared_across_threads() {
        let pool = std::sync::Arc::new(BufferPool::new(store_with(8), 4));
        let mut handles = Vec::new();
        for t in 0..4 {
            let p = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let page = PageId((i + t) % 8);
                    let data = p.get(page).unwrap();
                    assert_eq!(data[0] as u64, page.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.stats().requests(), 200);
    }

    #[test]
    fn concurrent_misses_on_one_page_read_store_once() {
        let store = CountingStore {
            inner: store_with(2),
            reads: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            delay: std::time::Duration::from_millis(20),
        };
        let pool = std::sync::Arc::new(BufferPool::new(store, 2));
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let p = std::sync::Arc::clone(&pool);
                let b = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    b.wait();
                    let data = p.get(PageId(1)).unwrap();
                    assert_eq!(data[0], 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            pool.store().reads.load(Ordering::Relaxed),
            1,
            "concurrent misses must be deduplicated into one store read"
        );
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7, "waiters are served from memory and count as hits");
    }

    #[test]
    fn panicking_store_does_not_strand_the_inflight_entry() {
        // A store that panics (not Errs) on its first read of page 1: the
        // unwinding thread must clean up its inflight entry, or every later
        // get(1) deadlocks in the condvar wait.
        struct PanicOnceStore {
            inner: MemPageStore,
            armed: std::sync::atomic::AtomicBool,
        }
        impl PageStore for PanicOnceStore {
            fn read_page(&self, page: PageId) -> io::Result<Arc<[u8]>> {
                if page.0 == 1 && self.armed.swap(false, Ordering::SeqCst) {
                    panic!("injected store panic");
                }
                self.inner.read_page(page)
            }
            fn page_count(&self) -> u64 {
                self.inner.page_count()
            }
        }
        let store = PanicOnceStore {
            inner: store_with(4),
            armed: std::sync::atomic::AtomicBool::new(true),
        };
        let pool = std::sync::Arc::new(BufferPool::new(store, 2));
        let p = std::sync::Arc::clone(&pool);
        let crashed = std::thread::spawn(move || p.get(PageId(1))).join();
        assert!(crashed.is_err(), "the injected panic must propagate");
        // The next read of the same page must neither hang nor fail.
        let data = pool.get(PageId(1)).unwrap();
        assert_eq!(data[0], 1);
        assert_eq!(pool.stats().misses, 1, "only the successful read is counted");
    }

    #[test]
    fn stress_accounting_stays_consistent() {
        // Many threads hammer a pool much smaller than the page set; at the
        // end every counter identity must hold exactly — no lost updates.
        const THREADS: u64 = 8;
        const ITERS: u64 = 400;
        const PAGES: u64 = 32;
        let store = CountingStore {
            inner: store_with(PAGES as usize),
            reads: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            delay: std::time::Duration::ZERO,
        };
        let pool = std::sync::Arc::new(BufferPool::new(store, 8));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let p = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    // Each thread walks a different stride so the access
                    // pattern mixes heavy sharing with private pages.
                    let mut x = t;
                    for i in 0..ITERS {
                        x = (x.wrapping_mul(6364136223846793005).wrapping_add(t + i)) % PAGES;
                        let data = p.get(PageId(x)).unwrap();
                        assert_eq!(data[0] as u64, x, "wrong page content under contention");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.requests(), THREADS * ITERS, "hits + misses must equal total requests");
        assert_eq!(
            s.misses,
            pool.store().reads.load(Ordering::Relaxed),
            "every miss is exactly one store read"
        );
        assert_eq!(s.bytes_read, s.misses * PAGE_SIZE as u64);
        assert!(s.evictions <= s.misses, "cannot evict more than was inserted");
        // The cache never exceeds its capacity.
        let cached: usize = pool.shards.iter().map(|sh| sh.lock().list.len()).sum();
        assert!(cached <= pool.capacity());
    }

    #[test]
    fn transient_faults_are_retried_with_exact_counters() {
        use crate::fault::{FaultInjectingPageStore, FaultKind};
        let store = FaultInjectingPageStore::scripted(
            store_with(2),
            [Some(FaultKind::Transient), None, Some(FaultKind::Torn), None],
        );
        let mut pool = BufferPool::new(store, 2);
        pool.set_retry_policy(RetryPolicy::fast());
        // One transient error, then one torn read — each absorbed by one
        // retry, invisible to the caller.
        assert_eq!(pool.get(PageId(0)).unwrap()[0], 0);
        assert_eq!(pool.get(PageId(1)).unwrap()[0], 1);
        let s = pool.stats();
        assert_eq!((s.faults_seen, s.retries), (2, 2));
        assert_eq!((s.misses, s.hits), (2, 0));
        assert_eq!(s.bytes_read, 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        use crate::fault::{FaultInjectingPageStore, FaultKind};
        let store =
            FaultInjectingPageStore::scripted(store_with(2), vec![Some(FaultKind::Transient); 5]);
        let mut pool = BufferPool::new(store, 2);
        pool.set_retry_policy(RetryPolicy::fast()); // 3 attempts
        let err = pool.get(PageId(0)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let s = pool.stats();
        assert_eq!((s.faults_seen, s.retries), (3, 2), "3 attempts = 2 retries");
        assert_eq!(s.misses, 0, "a failed read is not a miss");
        // Two script entries remain; the next get consumes them and then
        // succeeds on the third attempt.
        assert_eq!(pool.get(PageId(0)).unwrap()[0], 0);
        let s = pool.stats();
        assert_eq!((s.faults_seen, s.retries, s.misses), (5, 4, 1));
    }

    #[test]
    fn permanent_faults_propagate_without_retry() {
        use crate::fault::{FaultInjectingPageStore, FaultKind};
        let store = FaultInjectingPageStore::scripted(store_with(2), [Some(FaultKind::Permanent)]);
        let mut pool = BufferPool::new(store, 2);
        pool.set_retry_policy(RetryPolicy::fast());
        assert!(pool.get(PageId(1)).is_err());
        let s = pool.stats();
        assert_eq!((s.faults_seen, s.retries), (1, 0), "permanent faults are not retried");
        assert_eq!(pool.store().injected().permanent, 1, "exactly one store attempt");
        // The page is dead in the store; the pool keeps failing it while
        // other pages still work.
        assert!(pool.get(PageId(1)).is_err());
        assert!(pool.get(PageId(0)).is_ok());
    }

    #[test]
    fn checksum_mismatch_is_typed_and_not_retried() {
        use crate::checksum::{as_page_corrupt, ChecksumTable};
        let mut payload = Vec::new();
        for p in 0..2usize {
            payload.extend(std::iter::repeat_n(p as u8, PAGE_SIZE));
        }
        let table = Arc::new(ChecksumTable::compute(&payload));
        payload[PAGE_SIZE + 5] ^= 0x10; // flip one bit in page 1
        let mut pool = BufferPool::new(MemPageStore::new(&payload), 2);
        pool.set_checksums(Arc::clone(&table));
        assert!(pool.get(PageId(0)).is_ok(), "intact page verifies");
        let err = pool.get(PageId(1)).unwrap_err();
        let pc = as_page_corrupt(&err).expect("typed corruption payload");
        assert_eq!(pc.page, 1, "the error names the corrupt page");
        let s = pool.stats();
        assert_eq!((s.faults_seen, s.retries), (1, 0), "corruption is never retried");
        assert_eq!(s.misses, 1, "only the verified read is a miss");
    }

    #[test]
    fn read_range_retries_faulty_coalesced_runs() {
        use crate::fault::{FaultInjectingPageStore, FaultKind};
        const PAGES: usize = 4;
        // Attempt 1 of the run dies on its second page; attempt 2 sees an
        // exhausted script and succeeds.
        let store = FaultInjectingPageStore::scripted(
            store_with(PAGES),
            [None, Some(FaultKind::Transient)],
        );
        let mut pool = BufferPool::new(store, PAGES);
        pool.set_retry_policy(RetryPolicy::fast());
        let mut out = Vec::new();
        pool.read_range(0, (PAGES * PAGE_SIZE) as u64, &mut out).unwrap();
        assert_eq!(out.len(), PAGES * PAGE_SIZE);
        for (i, &b) in out.iter().enumerate() {
            assert_eq!(b as usize, i / PAGE_SIZE);
        }
        let s = pool.stats();
        assert_eq!((s.faults_seen, s.retries), (1, 1));
        assert_eq!((s.misses, s.hits), (PAGES as u64, 0));
    }

    #[test]
    fn read_range_coalesces_cold_contiguous_spans() {
        const PAGES: usize = 8;
        let store = CountingStore {
            inner: store_with(PAGES),
            reads: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            delay: std::time::Duration::ZERO,
        };
        let pool = BufferPool::new(store, PAGES);
        let lo = 100u64;
        let hi = (PAGES * PAGE_SIZE - 50) as u64;
        let mut out = Vec::new();
        pool.read_range(lo, hi, &mut out).unwrap();
        assert_eq!(out.len(), (hi - lo) as usize);
        for (i, &b) in out.iter().enumerate() {
            assert_eq!(b as usize, (lo as usize + i) / PAGE_SIZE, "wrong byte at offset {i}");
        }
        assert_eq!(
            pool.store().calls.load(Ordering::Relaxed),
            1,
            "a cold contiguous span must be one physical store call"
        );
        assert_eq!(pool.store().reads.load(Ordering::Relaxed), PAGES as u64);
        let s = pool.stats();
        assert_eq!((s.misses, s.hits), (PAGES as u64, 0));
        assert_eq!(s.bytes_read, (PAGES * PAGE_SIZE) as u64);
        // Warm pass: all hits, zero further store traffic.
        out.clear();
        pool.read_range(lo, hi, &mut out).unwrap();
        assert_eq!(pool.store().calls.load(Ordering::Relaxed), 1);
        let s = pool.stats();
        assert_eq!((s.misses, s.hits), (PAGES as u64, PAGES as u64));
    }

    #[test]
    fn read_range_coalesces_around_cached_pages() {
        const PAGES: usize = 8;
        let store = CountingStore {
            inner: store_with(PAGES),
            reads: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            delay: std::time::Duration::ZERO,
        };
        let pool = BufferPool::new(store, PAGES);
        pool.get(PageId(3)).unwrap(); // pre-warm one page mid-span
        let mut out = Vec::new();
        pool.read_range(0, (PAGES * PAGE_SIZE) as u64, &mut out).unwrap();
        assert_eq!(out.len(), PAGES * PAGE_SIZE);
        // Two runs around the cached page: [0..=2] and [4..=7].
        assert_eq!(pool.store().calls.load(Ordering::Relaxed), 3, "get + two coalesced runs");
        assert_eq!(pool.store().reads.load(Ordering::Relaxed), PAGES as u64);
        let s = pool.stats();
        assert_eq!(s.misses, PAGES as u64);
        assert_eq!(s.hits, 1, "the pre-warmed page is served from cache");
        assert_eq!(s.misses, pool.store().reads.load(Ordering::Relaxed));
    }

    #[test]
    fn read_range_run_error_releases_claims() {
        let pool = BufferPool::new(store_with(2), 4);
        let mut out = Vec::new();
        // Spans pages 0..=3 of a 2-page store: the coalesced run fails.
        assert!(pool.read_range(0, 4 * PAGE_SIZE as u64, &mut out).is_err());
        // No inflight entry may be stranded: every page in the failed run
        // must still be fetchable (or fail fast) instead of deadlocking.
        assert!(pool.get(PageId(0)).is_ok());
        assert!(pool.get(PageId(1)).is_ok());
        assert!(pool.get(PageId(2)).is_err());
        out.clear();
        pool.read_range(0, 2 * PAGE_SIZE as u64, &mut out).unwrap();
        assert_eq!(out.len(), 2 * PAGE_SIZE);
    }

    fn counting_pool(pages: usize, capacity: usize) -> BufferPool<CountingStore> {
        let store = CountingStore {
            inner: store_with(pages),
            reads: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            delay: std::time::Duration::ZERO,
        };
        BufferPool::new(store, capacity)
    }

    #[test]
    fn prefetch_extends_cold_runs_with_exact_accounting() {
        const PAGES: usize = 16;
        let mut pool = counting_pool(PAGES, PAGES);
        pool.set_prefetch_policy(PrefetchPolicy { window: 4 });
        assert_eq!(pool.prefetch_policy(), PrefetchPolicy { window: 4 });
        // Cold read of pages 0..=3 prefetches 4..=7 in the same store call.
        let mut out = Vec::new();
        pool.read_range(0, 4 * PAGE_SIZE as u64, &mut out).unwrap();
        assert_eq!(out.len(), 4 * PAGE_SIZE, "readahead bytes never leak into the result");
        assert_eq!(pool.store().calls.load(Ordering::Relaxed), 1, "run + readahead is one call");
        assert_eq!(pool.store().reads.load(Ordering::Relaxed), 8);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.prefetched, s.prefetch_hits), (0, 4, 4, 0));
        assert_eq!(s.requests(), 4, "prefetched pages are not requests");
        assert_eq!(s.misses + s.prefetched, pool.store().reads.load(Ordering::Relaxed));
        assert_eq!(s.bytes_read, 8 * PAGE_SIZE as u64);
        // The continuation scan is served entirely from readahead pages.
        out.clear();
        pool.read_range(4 * PAGE_SIZE as u64, 8 * PAGE_SIZE as u64, &mut out).unwrap();
        assert_eq!(out.len(), 4 * PAGE_SIZE);
        assert_eq!(pool.store().calls.load(Ordering::Relaxed), 1, "no further store traffic");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.prefetched, s.prefetch_hits), (4, 4, 4, 4));
        // A second touch of a prefetched page is an ordinary hit.
        pool.get(PageId(5)).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.prefetch_hits), (5, 4), "prefetch payoff is counted once per page");
    }

    #[test]
    fn prefetch_stops_at_store_end_and_coalescing_cap() {
        // A huge window is clamped by the store's size...
        let mut pool = counting_pool(4, 4);
        pool.set_prefetch_policy(PrefetchPolicy { window: 100 });
        let mut out = Vec::new();
        pool.read_range(0, 2 * PAGE_SIZE as u64, &mut out).unwrap();
        let s = pool.stats();
        assert_eq!((s.misses, s.prefetched), (2, 2), "readahead never reads past the store");
        assert_eq!(pool.store().calls.load(Ordering::Relaxed), 1);
        // ...and by MAX_COALESCED_PAGES for a larger store.
        let mut pool = counting_pool(MAX_COALESCED_PAGES + 16, MAX_COALESCED_PAGES + 16);
        pool.set_prefetch_policy(PrefetchPolicy { window: 100 });
        out.clear();
        pool.read_range(0, PAGE_SIZE as u64, &mut out).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.prefetched, (MAX_COALESCED_PAGES - 1) as u64, "run + readahead ≤ cap");
        assert_eq!(pool.store().calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn prefetch_hint_cuts_store_calls_on_sequential_scans() {
        // The acceptance experiment in miniature: the same chunked
        // sequential scan, with and without the hint.
        const PAGES: usize = 8;
        let plain = counting_pool(PAGES, PAGES);
        let mut hinted = counting_pool(PAGES, PAGES);
        hinted.set_prefetch_policy(PrefetchPolicy { window: PAGES });
        for pool in [&plain, &hinted] {
            let mut out = Vec::new();
            for chunk in 0..PAGES / 2 {
                out.clear();
                let lo = (chunk * 2 * PAGE_SIZE) as u64;
                pool.read_range(lo, lo + 2 * PAGE_SIZE as u64, &mut out).unwrap();
                assert_eq!(out.len(), 2 * PAGE_SIZE);
            }
        }
        assert_eq!(plain.store().calls.load(Ordering::Relaxed), (PAGES / 2) as u64);
        assert_eq!(hinted.store().calls.load(Ordering::Relaxed), 1, "the hint collapses the scan");
        let s = hinted.stats();
        assert_eq!((s.hits, s.misses, s.prefetched), (6, 2, 6));
        assert_eq!(s.prefetch_hits, 6, "every later chunk is served from readahead");
    }

    #[test]
    fn evicted_prefetch_pages_lose_their_payoff_marker() {
        // Capacity 1: the readahead page evicts nothing at insert, then is
        // itself evicted by an ordinary miss. Re-reading it later must not
        // count a prefetch hit.
        let mut pool = counting_pool(4, 1);
        pool.set_prefetch_policy(PrefetchPolicy { window: 1 });
        let mut out = Vec::new();
        pool.read_range(0, PAGE_SIZE as u64, &mut out).unwrap(); // reads 0, prefetches 1
        assert_eq!(pool.stats().prefetched, 1);
        pool.get(PageId(2)).unwrap(); // evicts page 1
        pool.get(PageId(1)).unwrap(); // ordinary miss
        pool.get(PageId(1)).unwrap(); // ordinary hit
        let s = pool.stats();
        assert_eq!(s.prefetch_hits, 0, "an evicted readahead page is no longer a payoff");
        assert_eq!((s.hits, s.misses), (1, 3));
    }

    #[test]
    fn clear_drops_prefetch_markers() {
        let mut pool = counting_pool(4, 4);
        pool.set_prefetch_policy(PrefetchPolicy { window: 2 });
        let mut out = Vec::new();
        pool.read_range(0, PAGE_SIZE as u64, &mut out).unwrap();
        assert_eq!(pool.stats().prefetched, 2);
        pool.clear();
        pool.get(PageId(1)).unwrap(); // cold again: a miss, not a stale payoff
        let s = pool.stats();
        assert_eq!((s.prefetch_hits, s.misses), (0, 2));
    }

    #[test]
    fn concurrent_read_ranges_stay_deduplicated() {
        const PAGES: usize = 16;
        let store = CountingStore {
            inner: store_with(PAGES),
            reads: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            delay: std::time::Duration::from_millis(5),
        };
        let pool = std::sync::Arc::new(BufferPool::new(store, PAGES));
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = std::sync::Arc::clone(&pool);
                let b = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    b.wait();
                    let mut out = Vec::new();
                    p.read_range(0, (PAGES * PAGE_SIZE) as u64, &mut out).unwrap();
                    assert_eq!(out.len(), PAGES * PAGE_SIZE);
                    for (i, &byte) in out.iter().enumerate() {
                        assert_eq!(byte as usize, i / PAGE_SIZE);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.requests(), (4 * PAGES) as u64, "each thread touches every page once");
        assert_eq!(
            s.misses,
            pool.store().reads.load(Ordering::Relaxed),
            "every miss is exactly one page fetched from the store"
        );
        assert_eq!(s.bytes_read, s.misses * PAGE_SIZE as u64);
    }
}
