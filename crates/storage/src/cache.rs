//! A sharded LRU cache for decoded objects.
//!
//! [`crate::BufferPool`] caches raw pages; anything built *from* those pages
//! (decoded entry lists, parsed adjacency blocks, …) is re-materialized on
//! every lookup unless it is cached too. [`ShardedCache`] is that second
//! level: a concurrent, fixed-capacity LRU map from `u64` keys to clonable
//! values, sharded like the pool so parallel readers rarely contend.
//!
//! Unlike the pool there is no miss dedup: values are produced from already
//! cached pages (cheap, no I/O), so two threads occasionally decoding the
//! same entry concurrently is cheaper than a condvar handshake.

use crate::lru::LruList;
use std::sync::{Mutex, MutexGuard};

/// Default shard count; clamped so every shard holds at least one entry.
const DEFAULT_SHARDS: usize = 8;

/// Hit/miss/eviction counters of a [`ShardedCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from cache (1.0 for an idle cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheShard<V> {
    list: LruList<V>,
    stats: CacheStats,
}

/// A concurrent fixed-capacity LRU map from `u64` keys to clonable values.
pub struct ShardedCache<V> {
    shards: Box<[Mutex<CacheShard<V>>]>,
    capacity: usize,
}

impl<V: Clone> ShardedCache<V> {
    /// A cache holding at most `capacity` values (minimum 1) across the
    /// default shard count.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (clamped so every shard holds
    /// at least one value).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards: Box<[Mutex<CacheShard<V>>]> = (0..shards)
            .map(|i| {
                Mutex::new(CacheShard {
                    list: LruList::new(base + usize::from(i < extra)),
                    stats: CacheStats::default(),
                })
            })
            .collect();
        ShardedCache { shards, capacity }
    }

    /// Maximum number of cached values (summed over all shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn shard(&self, key: u64) -> MutexGuard<'_, CacheShard<V>> {
        self.shards[(key % self.shards.len() as u64) as usize]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut shard = self.shard(key);
        match shard.list.get(key) {
            Some(v) => {
                shard.stats.hits += 1;
                Some(v)
            }
            None => {
                shard.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least recently
    /// used value when full.
    pub fn insert(&self, key: u64, value: V) {
        let mut shard = self.shard(key);
        if shard.list.insert(key, value).is_some() {
            shard.stats.evictions += 1;
        }
    }

    /// Snapshot of the counters, aggregated across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            let st = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            total.hits += st.stats.hits;
            total.misses += st.stats.misses;
            total.evictions += st.stats.evictions;
        }
        total
    }

    /// Zeroes the counters (cached values are kept).
    pub fn reset_stats(&self) {
        for shard in self.shards.iter() {
            shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats =
                CacheStats::default();
        }
    }

    /// Drops every cached value (counters are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner).list.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip() {
        let c: ShardedCache<u32> = ShardedCache::new(4);
        assert_eq!(c.get(1), None);
        c.insert(1, 11);
        assert_eq!(c.get(1), Some(11));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_bounds_shards() {
        let c: ShardedCache<u8> = ShardedCache::new(2);
        assert!(c.shards.len() <= 2);
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn eviction_counted() {
        let c: ShardedCache<u64> = ShardedCache::with_shards(1, 1);
        c.insert(0, 0);
        c.insert(1, 1);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.get(0), None);
        assert_eq!(c.get(1), Some(1));
    }

    #[test]
    fn clear_and_reset() {
        let c: ShardedCache<u64> = ShardedCache::new(8);
        c.insert(3, 3);
        c.clear();
        assert_eq!(c.get(3), None, "cleared values are gone");
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let c = std::sync::Arc::new(ShardedCache::<u64>::new(16));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = (i + t) % 32;
                        match c.get(k) {
                            Some(v) => assert_eq!(v, k * 10),
                            None => c.insert(k, k * 10),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.requests(), 800);
    }
}
