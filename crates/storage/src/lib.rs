//! Disk pages and buffering for disk-resident SILC indexes.
//!
//! The paper's experiments run the shortest-path quadtrees from disk through
//! an LRU cache holding 5 % of the pages, and show that I/O dominates query
//! time because every refinement may touch a different vertex's quadtree.
//! This crate provides that substrate for real:
//!
//! * [`PageStore`] — random access to fixed-size pages,
//! * [`FilePageStore`] — a real file on disk, read with `pread`,
//! * [`MemPageStore`] — an in-memory store for tests and baselines,
//! * [`BufferPool`] — a sharded LRU page cache with per-shard locks, store
//!   reads outside the lock, concurrent-miss dedup, and hit/miss/eviction
//!   counters with wall-clock accounting of time spent in the store;
//!   range reads coalesce cold spans into single store calls (at most
//!   [`MAX_COALESCED_PAGES`] pages) and an opt-in [`PrefetchPolicy`]
//!   extends them with sequential readahead, accounted exactly
//!   ([`IoStats::prefetched`] / [`IoStats::prefetch_hits`]),
//! * [`varint`] — canonical LEB128 varints and zigzag, the shared encoding
//!   layer of the compressed on-disk formats (`SILCIDX3`, PCP v4),
//! * [`ShardedCache`] — a generic concurrent LRU for objects *decoded* from
//!   pages (entry lists, adjacency blocks), sharing the pool's LRU core,
//! * [`TieredPool`] — a pool paired with a decoded-object cache, the
//!   stats/reset/clear plumbing every disk-resident index shares,
//! * [`ChecksumTable`] — per-page digests (8-lane FNV-1a) the pool verifies on
//!   every physical read, so bit rot surfaces as a typed error naming the
//!   page ([`PageCorrupt`]) instead of a silently wrong answer,
//! * [`RetryPolicy`] — deterministic bounded-backoff retries of transient
//!   store faults inside the pool, with exact `retries`/`faults_seen`
//!   counters in [`IoStats`],
//! * [`FaultInjectingPageStore`] — seeded, reproducible fault injection
//!   (transient, permanent, bit-flip, torn reads) for chaos tests.

pub mod cache;
pub mod checksum;
pub mod fault;
pub(crate) mod lru;
pub mod pool;
pub mod store;
pub mod tiered;
pub mod varint;

pub use cache::{CacheStats, ShardedCache};
pub use checksum::{
    as_page_corrupt, corrupt_page, fnv1a64, fnv1a64x8, read_span_verified, ChecksumTable,
    PageCorrupt,
};
pub use fault::{FaultCounts, FaultInjectingPageStore, FaultKind, FaultRates};
pub use pool::{BufferPool, IoStats, PrefetchPolicy, RetryPolicy, MAX_COALESCED_PAGES};
pub use store::{FilePageStore, MemPageStore, PageId, PageStore, PAGE_SIZE};
pub use tiered::{default_decoded_capacity, read_span, TieredPool};
