//! Disk pages and buffering for disk-resident SILC indexes.
//!
//! The paper's experiments run the shortest-path quadtrees from disk through
//! an LRU cache holding 5 % of the pages, and show that I/O dominates query
//! time because every refinement may touch a different vertex's quadtree.
//! This crate provides that substrate for real:
//!
//! * [`PageStore`] — random access to fixed-size pages,
//! * [`FilePageStore`] — a real file on disk, read with `pread`,
//! * [`MemPageStore`] — an in-memory store for tests and baselines,
//! * [`BufferPool`] — a sharded LRU page cache with per-shard locks, store
//!   reads outside the lock, concurrent-miss dedup, and hit/miss/eviction
//!   counters with wall-clock accounting of time spent in the store,
//! * [`ShardedCache`] — a generic concurrent LRU for objects *decoded* from
//!   pages (entry lists, adjacency blocks), sharing the pool's LRU core,
//! * [`TieredPool`] — a pool paired with a decoded-object cache, the
//!   stats/reset/clear plumbing every disk-resident index shares.

pub mod cache;
pub(crate) mod lru;
pub mod pool;
pub mod store;
pub mod tiered;

pub use cache::{CacheStats, ShardedCache};
pub use pool::{BufferPool, IoStats};
pub use store::{FilePageStore, MemPageStore, PageId, PageStore, PAGE_SIZE};
pub use tiered::{default_decoded_capacity, read_span, TieredPool};
