//! Page-level checksums and the typed corruption error they raise.
//!
//! Disk formats in this workspace append a [`ChecksumTable`] after their
//! page-padded payload: one 64-bit FNV-1a digest per payload page. The
//! [`BufferPool`](crate::BufferPool) verifies a page against the table on
//! every *physical* store read (cache hits pay nothing), so a flipped bit
//! on disk surfaces as a typed error naming the page — never as a silently
//! wrong answer decoded from garbage bytes.
//!
//! The digest is hand-rolled (no external crates): an **8-lane** FNV-1a
//! variant over 64-bit words. Classic byte-serial FNV-1a is one dependent
//! xor–multiply chain per byte — ~20k dependent multiplies for a 4 KiB
//! page, which measurably taxed the disk-serving hot path. Running eight
//! independent FNV lanes over interleaved words keeps the multiplies off
//! each other's critical path (the CPU overlaps them) and digests a page
//! an order of magnitude faster, with the same sensitivity to random
//! corruption. It is an integrity check, not a cryptographic MAC.

use crate::store::{PageId, PageStore, PAGE_SIZE};
use std::io;

const FNV_BASIS: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Classic byte-serial 64-bit FNV-1a (offset basis `0xcbf29ce484222325`,
/// prime `0x100000001b3`). Fine for short keys; for page-sized inputs use
/// [`fnv1a64x8`], which the [`ChecksumTable`] digests with.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = FNV_BASIS;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// 8-lane FNV-1a over 64-bit little-endian words: lane `j` absorbs words
/// `j, j+8, j+16, …`, a trailing partial word is zero-padded, and the
/// lanes (seeded `basis + j` so they are distinct) are folded together
/// with the input length byte-serially at the end. Not byte-compatible
/// with [`fnv1a64`] — it is this crate's page-digest function.
pub fn fnv1a64x8(bytes: &[u8]) -> u64 {
    let mut lanes = [0u64; 8];
    for (j, lane) in lanes.iter_mut().enumerate() {
        *lane = FNV_BASIS.wrapping_add(j as u64);
    }
    // Whole 64-byte blocks: eight independent xor–multiplies per block,
    // nothing on a shared dependency chain inside the block.
    let mut blocks = bytes.chunks_exact(64);
    for block in &mut blocks {
        for (j, word) in block.chunks_exact(8).enumerate() {
            let w = u64::from_le_bytes(word.try_into().unwrap());
            lanes[j] = (lanes[j] ^ w).wrapping_mul(FNV_PRIME);
        }
    }
    // Ragged end: whole words round-robin through the lanes, a trailing
    // partial word is zero-padded.
    let mut chunks = blocks.remainder().chunks_exact(8);
    let mut j = 0usize;
    for word in &mut chunks {
        let w = u64::from_le_bytes(word.try_into().unwrap());
        lanes[j] = (lanes[j] ^ w).wrapping_mul(FNV_PRIME);
        j = (j + 1) % 8;
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        let w = u64::from_le_bytes(word);
        lanes[j] = (lanes[j] ^ w).wrapping_mul(FNV_PRIME);
    }
    let mut hash = FNV_BASIS ^ bytes.len() as u64;
    for lane in lanes {
        for byte in lane.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// The payload of the typed corruption error: which page failed
/// verification and why.
///
/// It travels inside an [`io::Error`] of kind [`io::ErrorKind::InvalidData`]
/// so the existing `io::Result` plumbing carries it unchanged; callers that
/// want the page number downcast with [`as_page_corrupt`].
#[derive(Debug)]
pub struct PageCorrupt {
    /// The page that failed verification.
    pub page: u64,
    /// What went wrong (e.g. expected vs observed checksum).
    pub detail: String,
}

impl std::fmt::Display for PageCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page {} is corrupt: {}", self.page, self.detail)
    }
}

impl std::error::Error for PageCorrupt {}

/// Wraps a page-corruption report into an [`io::Error`] (kind
/// `InvalidData`) that [`as_page_corrupt`] can recover.
pub fn corrupt_page(page: u64, detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, PageCorrupt { page, detail: detail.into() })
}

/// Recovers the [`PageCorrupt`] payload from an [`io::Error`] produced by
/// [`corrupt_page`], if that is what `e` is.
pub fn as_page_corrupt(e: &io::Error) -> Option<&PageCorrupt> {
    e.get_ref().and_then(|inner| inner.downcast_ref::<PageCorrupt>())
}

/// One 64-bit [`fnv1a64x8`] digest per payload page of a disk format.
///
/// Built from the full page-padded byte image at write time; each entry
/// covers exactly [`PAGE_SIZE`] bytes. Pages past the table's length (the
/// region holding the table itself) are not covered — corruption there
/// shows up as a mismatch on the payload pages it claims to describe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChecksumTable {
    sums: Vec<u64>,
}

impl ChecksumTable {
    /// Digests `payload` per [`PAGE_SIZE`] chunk, treating a short final
    /// chunk as zero-padded to a full page (matching how page files pad).
    pub fn compute(payload: &[u8]) -> Self {
        let mut sums = Vec::with_capacity(payload.len().div_ceil(PAGE_SIZE));
        for chunk in payload.chunks(PAGE_SIZE) {
            if chunk.len() == PAGE_SIZE {
                sums.push(fnv1a64x8(chunk));
            } else {
                let mut page = [0u8; PAGE_SIZE];
                page[..chunk.len()].copy_from_slice(chunk);
                sums.push(fnv1a64x8(&page));
            }
        }
        ChecksumTable { sums }
    }

    /// Number of pages covered.
    pub fn pages(&self) -> usize {
        self.sums.len()
    }

    /// Verifies one full page image against the table. Pages beyond the
    /// covered range verify vacuously (they hold the table itself).
    pub fn verify(&self, page: u64, data: &[u8]) -> io::Result<()> {
        let Some(&want) = self.sums.get(page as usize) else {
            return Ok(());
        };
        let got = fnv1a64x8(data);
        if got != want {
            return Err(corrupt_page(
                page,
                format!("checksum mismatch (stored {want:#018x}, computed {got:#018x})"),
            ));
        }
        Ok(())
    }

    /// Serializes the table as little-endian `u64`s.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.sums.len() * 8);
        for &s in &self.sums {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Deserializes a table of `pages` digests from `bytes`.
    pub fn from_bytes(bytes: &[u8], pages: usize) -> io::Result<Self> {
        if bytes.len() < pages * 8 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checksum table holds {} bytes, need {}", bytes.len(), pages * 8),
            ));
        }
        let sums = (0..pages)
            .map(|i| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap()))
            .collect();
        Ok(ChecksumTable { sums })
    }
}

/// Like [`read_span`](crate::read_span), but verifies every covered page
/// against `table` before slicing — the way indexes load their pinned
/// metadata regions once the checksum table is known.
pub fn read_span_verified<S: PageStore>(
    store: &S,
    from: usize,
    len: usize,
    table: &ChecksumTable,
) -> io::Result<Vec<u8>> {
    if len == 0 {
        return Ok(Vec::new());
    }
    let page_lo = from / PAGE_SIZE;
    let page_hi = (from + len - 1) / PAGE_SIZE;
    let pages = store.read_pages(PageId(page_lo as u64), page_hi - page_lo + 1)?;
    let mut out = Vec::with_capacity(len);
    let mut off = from % PAGE_SIZE;
    for (i, data) in pages.iter().enumerate() {
        table.verify((page_lo + i) as u64, data)?;
        let take = (len - out.len()).min(PAGE_SIZE - off);
        out.extend_from_slice(&data[off..off + take]);
        off = 0;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemPageStore;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn laned_digest_detects_every_single_bit_flip() {
        let mut page: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 253) as u8).collect();
        let clean = fnv1a64x8(&page);
        assert_eq!(clean, fnv1a64x8(&page), "digest must be deterministic");
        // Sample bit positions across all eight lanes and the tail path.
        for byte in (0..PAGE_SIZE).step_by(97).chain([0, 7, 8, PAGE_SIZE - 1]) {
            for bit in [0, 3, 7] {
                page[byte] ^= 1 << bit;
                assert_ne!(clean, fnv1a64x8(&page), "missed flip at byte {byte} bit {bit}");
                page[byte] ^= 1 << bit;
            }
        }
        assert_eq!(clean, fnv1a64x8(&page));
    }

    #[test]
    fn laned_digest_separates_lengths_and_tails() {
        // A short tail (zero-padded into a partial word) must not collide
        // with the explicit zero-padded forms of the same prefix.
        assert_ne!(fnv1a64x8(b""), fnv1a64x8(&[0u8]));
        assert_ne!(fnv1a64x8(&[5u8; 3]), fnv1a64x8(&[5u8, 5, 5, 0]));
        assert_ne!(fnv1a64x8(&[9u8; 8]), fnv1a64x8(&[9u8; 16][..8].repeat(2)));
        // Swapping two words lands them in different lanes: must differ.
        let mut a = [0u8; 128];
        a[0] = 1;
        let mut b = [0u8; 128];
        b[8] = 1;
        assert_ne!(fnv1a64x8(&a), fnv1a64x8(&b));
    }

    #[test]
    fn table_round_trips_and_verifies() {
        let mut payload = vec![0u8; 2 * PAGE_SIZE + 100];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let table = ChecksumTable::compute(&payload);
        assert_eq!(table.pages(), 3);
        let again = ChecksumTable::from_bytes(&table.to_bytes(), 3).unwrap();
        assert_eq!(table, again);

        // Each full (padded) page verifies; a flipped bit does not.
        let mut page0 = payload[..PAGE_SIZE].to_vec();
        table.verify(0, &page0).unwrap();
        page0[17] ^= 0x40;
        let err = table.verify(0, &page0).unwrap_err();
        let pc = as_page_corrupt(&err).expect("typed payload");
        assert_eq!(pc.page, 0);
        assert!(pc.detail.contains("checksum mismatch"));
        // The short final chunk is digested zero-padded, like page files pad.
        let mut last = [0u8; PAGE_SIZE];
        last[..100].copy_from_slice(&payload[2 * PAGE_SIZE..]);
        table.verify(2, &last).unwrap();
        // Pages past the table verify vacuously.
        table.verify(99, &last).unwrap();
    }

    #[test]
    fn truncated_table_rejected() {
        assert!(ChecksumTable::from_bytes(&[0u8; 15], 2).is_err());
    }

    #[test]
    fn read_span_verified_catches_flips() {
        let mut payload = vec![3u8; 2 * PAGE_SIZE];
        let table = ChecksumTable::compute(&payload);
        let good = MemPageStore::new(&payload);
        let bytes = read_span_verified(&good, PAGE_SIZE - 4, 8, &table).unwrap();
        assert_eq!(bytes, vec![3u8; 8]);
        payload[PAGE_SIZE + 9] ^= 1;
        let bad = MemPageStore::new(&payload);
        let err = read_span_verified(&bad, PAGE_SIZE - 4, 8, &table).unwrap_err();
        assert_eq!(as_page_corrupt(&err).unwrap().page, 1);
    }
}
