//! Fixed-size page stores.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

/// Size of a disk page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a store (page index, not byte offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Random access to fixed-size pages.
pub trait PageStore: Send + Sync {
    /// Reads one page. The returned buffer is exactly [`PAGE_SIZE`] bytes.
    fn read_page(&self, page: PageId) -> io::Result<Arc<[u8]>>;

    /// Number of pages in the store.
    fn page_count(&self) -> u64;

    /// Reads `count` consecutive pages starting at `first`.
    ///
    /// The default implementation loops [`PageStore::read_page`]; stores
    /// that can serve a contiguous run cheaper — one syscall instead of
    /// `count` — should override it. On success the result holds exactly
    /// `count` buffers of [`PAGE_SIZE`] bytes each; a failure anywhere in
    /// the run fails the whole call.
    fn read_pages(&self, first: PageId, count: usize) -> io::Result<Vec<Arc<[u8]>>> {
        (0..count as u64).map(|i| self.read_page(PageId(first.0 + i))).collect()
    }
}

/// Boxed stores are stores: lets an index hold a `Box<dyn PageStore>` so a
/// fault-injecting wrapper (or any other decorator) can be slotted in at
/// open time without making the index generic.
impl PageStore for Box<dyn PageStore> {
    fn read_page(&self, page: PageId) -> io::Result<Arc<[u8]>> {
        (**self).read_page(page)
    }

    fn page_count(&self) -> u64 {
        (**self).page_count()
    }

    fn read_pages(&self, first: PageId, count: usize) -> io::Result<Vec<Arc<[u8]>>> {
        (**self).read_pages(first, count)
    }
}

/// Shared stores are stores: an `Arc`-wrapped store can be handed to an
/// index while the caller keeps a second handle — how chaos tests keep
/// control of a `FaultInjectingPageStore` (to `kill()` it or read its
/// counters) after the index has swallowed it.
impl<S: PageStore + ?Sized> PageStore for Arc<S> {
    fn read_page(&self, page: PageId) -> io::Result<Arc<[u8]>> {
        (**self).read_page(page)
    }

    fn page_count(&self) -> u64 {
        (**self).page_count()
    }

    fn read_pages(&self, first: PageId, count: usize) -> io::Result<Vec<Arc<[u8]>>> {
        (**self).read_pages(first, count)
    }
}

/// A page store backed by a real file, read with positioned reads so
/// concurrent readers never contend on a seek cursor.
pub struct FilePageStore {
    file: File,
    pages: u64,
}

impl FilePageStore {
    /// Creates (replacing) a page file at `path` from `data`, padding the
    /// final page with zeros. Returns the opened store.
    ///
    /// The write is crash-safe: data goes to a sibling temp file in the
    /// same directory, is fsynced, and is then atomically renamed over
    /// `path` (with the directory fsynced where the platform allows). A
    /// crash mid-write leaves at worst a stale `.tmp` file — never a
    /// truncated index at the final path.
    pub fn create<P: AsRef<Path>>(path: P, data: &[u8]) -> io::Result<Self> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let mut file = File::create(&tmp)?;
        file.write_all(data)?;
        let rem = data.len() % PAGE_SIZE;
        if rem != 0 {
            file.write_all(&vec![0u8; PAGE_SIZE - rem])?;
        }
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself: fsync the containing directory.
        #[cfg(unix)]
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            File::open(dir)?.sync_all()?;
        }
        Self::open(path)
    }

    /// Opens an existing page file.
    ///
    /// Fails with `InvalidData` if the file length is not a multiple of
    /// [`PAGE_SIZE`].
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("page file length {len} is not a multiple of {PAGE_SIZE}"),
            ));
        }
        Ok(FilePageStore { file, pages: len / PAGE_SIZE as u64 })
    }
}

impl PageStore for FilePageStore {
    fn read_page(&self, page: PageId) -> io::Result<Arc<[u8]>> {
        if page.0 >= self.pages {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("page {} out of range ({} pages)", page.0, self.pages),
            ));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(&mut buf, page.0 * PAGE_SIZE as u64)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(page.0 * PAGE_SIZE as u64))?;
            f.read_exact(&mut buf)?;
        }
        Ok(buf.into())
    }

    fn page_count(&self) -> u64 {
        self.pages
    }

    fn read_pages(&self, first: PageId, count: usize) -> io::Result<Vec<Arc<[u8]>>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let last = first.0 + count as u64 - 1;
        if last >= self.pages {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("pages {}..={} out of range ({} pages)", first.0, last, self.pages),
            ));
        }
        let mut buf = vec![0u8; count * PAGE_SIZE];
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(&mut buf, first.0 * PAGE_SIZE as u64)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(first.0 * PAGE_SIZE as u64))?;
            f.read_exact(&mut buf)?;
        }
        Ok(buf.chunks(PAGE_SIZE).map(|c| -> Arc<[u8]> { c.to_vec().into() }).collect())
    }
}

/// An in-memory page store (tests; also the "infinitely fast disk" baseline).
pub struct MemPageStore {
    pages: Vec<Arc<[u8]>>,
}

impl MemPageStore {
    /// Builds a store from raw data, padding the final page with zeros.
    pub fn new(data: &[u8]) -> Self {
        let mut pages = Vec::with_capacity(data.len().div_ceil(PAGE_SIZE));
        for chunk in data.chunks(PAGE_SIZE) {
            let mut page = vec![0u8; PAGE_SIZE];
            page[..chunk.len()].copy_from_slice(chunk);
            pages.push(page.into());
        }
        MemPageStore { pages }
    }
}

impl PageStore for MemPageStore {
    fn read_page(&self, page: PageId) -> io::Result<Arc<[u8]>> {
        self.pages
            .get(page.0 as usize)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "page out of range"))
    }

    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("silc-storage-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn mem_store_pads_last_page() {
        let data = vec![7u8; PAGE_SIZE + 10];
        let s = MemPageStore::new(&data);
        assert_eq!(s.page_count(), 2);
        let p1 = s.read_page(PageId(1)).unwrap();
        assert_eq!(&p1[..10], &[7u8; 10]);
        assert!(p1[10..].iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_store_out_of_range() {
        let s = MemPageStore::new(&[1, 2, 3]);
        assert!(s.read_page(PageId(1)).is_err());
    }

    #[test]
    fn file_store_roundtrip() {
        let path = tmp("roundtrip.pages");
        let mut data = Vec::new();
        for i in 0..3 * PAGE_SIZE {
            data.push((i % 251) as u8);
        }
        data.truncate(2 * PAGE_SIZE + 100);
        let store = FilePageStore::create(&path, &data).unwrap();
        assert_eq!(store.page_count(), 3);
        let p0 = store.read_page(PageId(0)).unwrap();
        assert_eq!(&p0[..], &data[..PAGE_SIZE]);
        let p2 = store.read_page(PageId(2)).unwrap();
        assert_eq!(&p2[..100], &data[2 * PAGE_SIZE..]);
        assert!(p2[100..].iter().all(|&b| b == 0));
        assert!(store.read_page(PageId(3)).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_pages_matches_single_page_reads() {
        let path = tmp("batch.pages");
        let mut data = Vec::new();
        for i in 0..4 * PAGE_SIZE {
            data.push((i % 253) as u8);
        }
        let store = FilePageStore::create(&path, &data).unwrap();
        // The overridden batch read must agree with page-by-page reads.
        let batch = store.read_pages(PageId(1), 3).unwrap();
        assert_eq!(batch.len(), 3);
        for (i, page) in batch.iter().enumerate() {
            let single = store.read_page(PageId(1 + i as u64)).unwrap();
            assert_eq!(&page[..], &single[..]);
        }
        assert!(store.read_pages(PageId(2), 3).is_err(), "run past EOF must fail");
        assert!(store.read_pages(PageId(0), 0).unwrap().is_empty());

        // The default (loop) implementation on MemPageStore agrees too.
        let mem = MemPageStore::new(&data);
        let mem_batch = mem.read_pages(PageId(1), 3).unwrap();
        for (a, b) in batch.iter().zip(&mem_batch) {
            assert_eq!(&a[..], &b[..]);
        }
        assert!(mem.read_pages(PageId(3), 2).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_is_atomic_and_leaves_no_temp_file() {
        let path = tmp("atomic.pages");
        let old = vec![1u8; PAGE_SIZE];
        FilePageStore::create(&path, &old).unwrap();
        // A stale temp file from a crashed writer must not break a fresh
        // create; the final file is replaced wholesale.
        let tmp_path = tmp("atomic.pages.tmp");
        std::fs::write(&tmp_path, b"stale garbage from a crashed writer").unwrap();
        let new = vec![2u8; 2 * PAGE_SIZE];
        let store = FilePageStore::create(&path, &new).unwrap();
        assert_eq!(store.page_count(), 2);
        assert_eq!(store.read_page(PageId(0)).unwrap()[0], 2);
        assert!(!tmp_path.exists(), "the temp file must be renamed away");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_rejects_ragged_files() {
        let path = tmp("ragged.pages");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(FilePageStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_store() {
        let path = tmp("empty.pages");
        let store = FilePageStore::create(&path, &[]).unwrap();
        assert_eq!(store.page_count(), 0);
        assert!(store.read_page(PageId(0)).is_err());
        std::fs::remove_file(&path).ok();
    }
}
