//! The intrusive LRU list shared by the page pool and the object caches.
//!
//! A fixed-capacity map from `u64` keys to clonable values with
//! least-recently-used eviction, implemented as a slab of slots threaded
//! onto an intrusive doubly-linked list (no per-entry allocation after the
//! slab fills). Not synchronized — [`crate::BufferPool`] and
//! [`crate::ShardedCache`] wrap one instance per shard behind a mutex.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

struct Slot<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map from `u64` keys to values.
pub(crate) struct LruList<V> {
    capacity: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl<V: Clone> LruList<V> {
    /// An empty list holding at most `capacity` entries (minimum 1).
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruList {
            capacity,
            map: HashMap::with_capacity(capacity * 2),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of entries. (Sizing invariants are asserted in unit
    /// tests; production callers track capacity themselves.)
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Whether `key` is cached, without touching recency.
    pub(crate) fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub(crate) fn get(&mut self, key: u64) -> Option<V> {
        let &idx = self.map.get(&key)?;
        self.detach(idx);
        self.push_front(idx);
        Some(self.slots[idx].value.clone())
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used entry
    /// when full. Returns the evicted entry's key, if an eviction happened —
    /// callers tracking per-key metadata (the pool's prefetched set) clean
    /// it up from the return value.
    pub(crate) fn insert(&mut self, key: u64, value: V) -> Option<u64> {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.detach(idx);
            self.push_front(idx);
            return None;
        }
        let mut evicted = None;
        let idx = if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let old = self.slots[victim].key;
            self.map.remove(&old);
            evicted = Some(old);
            self.slots[victim].key = key;
            self.slots[victim].value = value;
            victim
        } else if let Some(free) = self.free.pop() {
            self.slots[free].key = key;
            self.slots[free].value = value;
            free
        } else {
            self.slots.push(Slot { key, value, prev: NIL, next: NIL });
            self.slots.len() - 1
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }

    /// Drops every entry, keeping the slot slab for reuse.
    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.free.clear();
        for i in 0..self.slots.len() {
            self.free.push(i);
        }
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_order_and_eviction() {
        let mut l = LruList::new(2);
        assert_eq!(l.insert(1, "a"), None);
        assert_eq!(l.insert(2, "b"), None);
        assert_eq!(l.get(1), Some("a")); // touch 1 -> [1, 2]
        assert_eq!(l.insert(3, "c"), Some(2), "inserting into a full list evicts the LRU key");
        assert_eq!(l.get(2), None, "LRU entry evicted");
        assert_eq!(l.get(1), Some("a"));
        assert_eq!(l.get(3), Some("c"));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_without_eviction() {
        let mut l = LruList::new(2);
        l.insert(1, 10);
        l.insert(2, 20);
        assert_eq!(l.insert(1, 11), None, "refreshing a present key never evicts");
        assert_eq!(l.get(1), Some(11));
        assert_eq!(l.get(2), Some(20));
    }

    #[test]
    fn clear_retains_capacity() {
        let mut l = LruList::new(3);
        for k in 0..3 {
            l.insert(k, k);
        }
        l.clear();
        assert_eq!(l.len(), 0);
        assert_eq!(l.get(0), None);
        for k in 10..13 {
            assert_eq!(l.insert(k, k), None, "slab reuse after clear must not evict");
        }
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut l = LruList::new(0);
        assert_eq!(l.capacity(), 1);
        l.insert(1, 1);
        assert_eq!(l.insert(2, 2), Some(1));
        assert_eq!(l.get(2), Some(2));
    }
}
