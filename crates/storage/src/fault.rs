//! Deterministic fault injection for [`PageStore`]s.
//!
//! [`FaultInjectingPageStore`] wraps any store and perturbs its page reads
//! according to a reproducible schedule — either a fixed script (one entry
//! consumed per page-read event) or a seeded pseudo-random schedule with
//! per-kind rates. Both are fully deterministic: the same schedule against
//! the same access sequence injects the same faults, which is what lets the
//! fault-injection suites assert *exact* retry counters and bit-identical
//! recovered answers.
//!
//! ## Example
//!
//! ```
//! use silc_storage::{
//!     BufferPool, FaultInjectingPageStore, FaultKind, MemPageStore, PageId, RetryPolicy,
//!     PAGE_SIZE,
//! };
//!
//! let inner = MemPageStore::new(&vec![7u8; 2 * PAGE_SIZE]);
//! // First read event hits a transient fault, everything after succeeds.
//! let store = FaultInjectingPageStore::scripted(inner, [Some(FaultKind::Transient), None]);
//! let mut pool = BufferPool::new(store, 2);
//! pool.set_retry_policy(RetryPolicy::fast());
//! let page = pool.get(PageId(0)).unwrap(); // retried transparently
//! assert_eq!(page[0], 7);
//! let stats = pool.stats();
//! assert_eq!((stats.faults_seen, stats.retries), (1, 1));
//! ```

use crate::store::{PageId, PageStore, PAGE_SIZE};
use std::collections::{HashSet, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The kinds of fault the injector can produce on a page read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient error (`io::ErrorKind::Interrupted`): succeeds when
    /// retried. What a [`RetryPolicy`](crate::RetryPolicy) absorbs.
    Transient,
    /// A permanent error (`io::ErrorKind::Other`): the page joins a dead
    /// set, so retries keep failing. What must propagate as a typed error.
    Permanent,
    /// One bit of the returned page flipped (one-shot): the read itself
    /// succeeds, so only a checksum can catch it.
    BitFlip,
    /// A short read: the returned buffer is truncated below [`PAGE_SIZE`]
    /// (one-shot). Retryable, like a transient error.
    Torn,
}

/// Per-kind injection rates for the seeded schedule, each in `[0, 1]`.
/// Rates are applied cumulatively per read event (their sum should stay
/// at or below 1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultRates {
    /// Probability of a [`FaultKind::Transient`] fault per read event.
    pub transient: f64,
    /// Probability of a [`FaultKind::Permanent`] fault per read event.
    pub permanent: f64,
    /// Probability of a [`FaultKind::BitFlip`] per read event.
    pub bit_flip: f64,
    /// Probability of a [`FaultKind::Torn`] read per read event.
    pub torn: f64,
}

/// How many faults of each kind the injector has produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Transient errors injected.
    pub transient: u64,
    /// Permanent errors injected (first occurrences; dead-page re-failures
    /// count here too).
    pub permanent: u64,
    /// Bits flipped.
    pub bit_flips: u64,
    /// Torn (short) reads injected.
    pub torn: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.transient + self.permanent + self.bit_flips + self.torn
    }
}

enum Schedule {
    /// One optional fault per page-read event, consumed front to back;
    /// an exhausted script injects nothing.
    Script(VecDeque<Option<FaultKind>>),
    /// SplitMix64-driven draws against cumulative [`FaultRates`].
    Seeded { state: u64, rates: FaultRates },
}

impl Schedule {
    fn next_fault(&mut self) -> Option<FaultKind> {
        match self {
            Schedule::Script(q) => q.pop_front().flatten(),
            Schedule::Seeded { state, rates } => {
                // SplitMix64: deterministic, no external crates.
                *state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = *state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                let u = (z >> 11) as f64 / (1u64 << 53) as f64;
                let mut edge = rates.transient;
                if u < edge {
                    return Some(FaultKind::Transient);
                }
                edge += rates.permanent;
                if u < edge {
                    return Some(FaultKind::Permanent);
                }
                edge += rates.bit_flip;
                if u < edge {
                    return Some(FaultKind::BitFlip);
                }
                edge += rates.torn;
                if u < edge {
                    return Some(FaultKind::Torn);
                }
                None
            }
        }
    }
}

struct FaultState {
    schedule: Schedule,
    /// Pages a permanent fault has claimed: every later read fails too.
    dead_pages: HashSet<u64>,
    /// The whole store failed (a dead shard): every read fails.
    killed: bool,
}

/// A [`PageStore`] wrapper that injects faults from a deterministic
/// schedule; see the [module docs](self) for an example.
///
/// `read_pages` deliberately loops `read_page`, so every page of a
/// coalesced run consults the schedule individually.
pub struct FaultInjectingPageStore<S: PageStore> {
    inner: S,
    state: Mutex<FaultState>,
    transient: AtomicU64,
    permanent: AtomicU64,
    bit_flips: AtomicU64,
    torn: AtomicU64,
}

impl<S: PageStore> FaultInjectingPageStore<S> {
    /// Wraps `inner` with an empty script: injects nothing until
    /// [`Self::kill`] is called.
    pub fn passthrough(inner: S) -> Self {
        Self::scripted(inner, std::iter::empty::<Option<FaultKind>>())
    }

    /// Wraps `inner` with a fixed script: the i-th page-read event suffers
    /// the i-th entry (`None` = no fault); events past the script succeed.
    pub fn scripted(inner: S, script: impl IntoIterator<Item = Option<FaultKind>>) -> Self {
        Self::with_schedule(inner, Schedule::Script(script.into_iter().collect()))
    }

    /// Wraps `inner` with a seeded pseudo-random schedule: each page-read
    /// event independently draws a fault kind per `rates`.
    pub fn seeded(inner: S, seed: u64, rates: FaultRates) -> Self {
        Self::with_schedule(inner, Schedule::Seeded { state: seed, rates })
    }

    fn with_schedule(inner: S, schedule: Schedule) -> Self {
        FaultInjectingPageStore {
            inner,
            state: Mutex::new(FaultState { schedule, dead_pages: HashSet::new(), killed: false }),
            transient: AtomicU64::new(0),
            permanent: AtomicU64::new(0),
            bit_flips: AtomicU64::new(0),
            torn: AtomicU64::new(0),
        }
    }

    /// Marks the whole store dead: every subsequent read fails permanently.
    /// Models a vanished shard file or a dead disk.
    pub fn kill(&self) {
        self.lock().killed = true;
    }

    /// How many faults of each kind have been injected so far.
    pub fn injected(&self) -> FaultCounts {
        FaultCounts {
            transient: self.transient.load(Ordering::Relaxed),
            permanent: self.permanent.load(Ordering::Relaxed),
            bit_flips: self.bit_flips.load(Ordering::Relaxed),
            torn: self.torn.load(Ordering::Relaxed),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn permanent_error(page: PageId) -> io::Error {
        io::Error::other(format!("injected permanent fault on page {}", page.0))
    }
}

impl<S: PageStore> PageStore for FaultInjectingPageStore<S> {
    fn read_page(&self, page: PageId) -> io::Result<Arc<[u8]>> {
        let fault = {
            let mut st = self.lock();
            if st.killed {
                self.permanent.fetch_add(1, Ordering::Relaxed);
                return Err(io::Error::other("injected store failure: store is dead"));
            }
            if st.dead_pages.contains(&page.0) {
                self.permanent.fetch_add(1, Ordering::Relaxed);
                return Err(Self::permanent_error(page));
            }
            let fault = st.schedule.next_fault();
            if fault == Some(FaultKind::Permanent) {
                st.dead_pages.insert(page.0);
            }
            fault
        };
        match fault {
            None => self.inner.read_page(page),
            Some(FaultKind::Transient) => {
                self.transient.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected transient fault on page {}", page.0),
                ))
            }
            Some(FaultKind::Permanent) => {
                self.permanent.fetch_add(1, Ordering::Relaxed);
                Err(Self::permanent_error(page))
            }
            Some(FaultKind::BitFlip) => {
                self.bit_flips.fetch_add(1, Ordering::Relaxed);
                let data = self.inner.read_page(page)?;
                let mut flipped = data.to_vec();
                // Deterministic position derived from the page id.
                let bit = (page.0 as usize).wrapping_mul(131) % (PAGE_SIZE * 8);
                flipped[bit / 8] ^= 1 << (bit % 8);
                Ok(flipped.into())
            }
            Some(FaultKind::Torn) => {
                self.torn.fetch_add(1, Ordering::Relaxed);
                let data = self.inner.read_page(page)?;
                Ok(data[..PAGE_SIZE / 2].to_vec().into())
            }
        }
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemPageStore;

    fn store_with(pages: usize) -> MemPageStore {
        let mut data = Vec::with_capacity(pages * PAGE_SIZE);
        for p in 0..pages {
            data.extend(std::iter::repeat_n(p as u8, PAGE_SIZE));
        }
        MemPageStore::new(&data)
    }

    #[test]
    fn script_injects_in_order_then_passes_through() {
        let s = FaultInjectingPageStore::scripted(
            store_with(2),
            [Some(FaultKind::Transient), None, Some(FaultKind::Torn)],
        );
        let e = s.read_page(PageId(0)).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::Interrupted);
        assert_eq!(s.read_page(PageId(0)).unwrap()[0], 0);
        assert_eq!(s.read_page(PageId(1)).unwrap().len(), PAGE_SIZE / 2, "torn read is short");
        // Script exhausted: clean reads from here on.
        assert_eq!(s.read_page(PageId(1)).unwrap().len(), PAGE_SIZE);
        let c = s.injected();
        assert_eq!((c.transient, c.torn, c.total()), (1, 1, 2));
    }

    #[test]
    fn permanent_faults_stick_to_their_page() {
        let s = FaultInjectingPageStore::scripted(store_with(2), [Some(FaultKind::Permanent)]);
        assert!(s.read_page(PageId(1)).is_err());
        // Retrying the dead page keeps failing even though the script is
        // exhausted; other pages are fine.
        assert!(s.read_page(PageId(1)).is_err());
        assert!(s.read_page(PageId(0)).is_ok());
        assert_eq!(s.injected().permanent, 2);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let s = FaultInjectingPageStore::scripted(store_with(2), [Some(FaultKind::BitFlip)]);
        let flipped = s.read_page(PageId(1)).unwrap();
        let clean = s.read_page(PageId(1)).unwrap();
        let differing: u32 =
            flipped.iter().zip(clean.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(differing, 1, "exactly one bit must differ");
    }

    #[test]
    fn kill_fails_everything() {
        let s = FaultInjectingPageStore::passthrough(store_with(2));
        assert!(s.read_page(PageId(0)).is_ok());
        s.kill();
        assert!(s.read_page(PageId(0)).is_err());
        assert!(s.read_pages(PageId(0), 2).is_err());
    }

    #[test]
    fn seeded_schedule_is_reproducible() {
        let rates = FaultRates { transient: 0.3, torn: 0.2, ..Default::default() };
        let run = |seed: u64| {
            let s = FaultInjectingPageStore::seeded(store_with(4), seed, rates);
            let outcomes: Vec<bool> = (0..64).map(|i| s.read_page(PageId(i % 4)).is_ok()).collect();
            (outcomes, s.injected())
        };
        let (a, ca) = run(42);
        let (b, cb) = run(42);
        assert_eq!(a, b, "same seed, same fault sequence");
        assert_eq!(ca, cb);
        assert!(ca.total() > 0, "rates this high must inject something in 64 reads");
        let (c, _) = run(43);
        assert_ne!(a, c, "different seed, different sequence");
    }

    #[test]
    fn read_pages_consults_the_schedule_per_page() {
        let s =
            FaultInjectingPageStore::scripted(store_with(4), [None, Some(FaultKind::Transient)]);
        // The default read_pages loops read_page, so the second page of the
        // run hits the scripted fault.
        assert!(s.read_pages(PageId(0), 4).is_err());
        assert_eq!(s.injected().transient, 1);
    }
}
