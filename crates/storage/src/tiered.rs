//! The two-tier read path every disk-resident index shares.
//!
//! A disk index serves a lookup in three tiers: a cache of objects already
//! *decoded* from page bytes (no page access, no decode), then the page
//! [`BufferPool`] (decode from cached bytes), then the store itself. The
//! first disk index (`DiskSilcIndex`) hand-rolled the pairing of pool and
//! decoded-object cache — the hit/miss accounting, the combined
//! reset/clear plumbing, the sized-cache constructors; [`TieredPool`] is
//! that plumbing extracted once, so every further disk structure (the PCP
//! oracle, paged adjacency, …) gets identical semantics for free.

use crate::cache::{CacheStats, ShardedCache};
use crate::checksum::ChecksumTable;
use crate::pool::{BufferPool, IoStats, PrefetchPolicy, RetryPolicy};
use crate::store::{PageId, PageStore, PAGE_SIZE};
use std::io;
use std::sync::Arc;

/// Default decoded-cache capacity for an index serving `n` distinct keys:
/// small relative to the index (it holds decoded structs, not pages) but
/// big enough that a query's working set stays decoded.
pub fn default_decoded_capacity(n: usize) -> usize {
    (n / 8).clamp(32, 4096)
}

/// Reads `len` bytes starting at byte offset `from` directly from a store
/// (no pool, no cache) — the way disk indexes load their pinned metadata
/// regions (headers, directories) exactly once at open time. The whole
/// span is fetched with one [`PageStore::read_pages`] call.
pub fn read_span<S: PageStore>(store: &S, from: usize, len: usize) -> io::Result<Vec<u8>> {
    if len == 0 {
        return Ok(Vec::new());
    }
    let page_lo = from / PAGE_SIZE;
    let page_hi = (from + len - 1) / PAGE_SIZE;
    let pages = store.read_pages(PageId(page_lo as u64), page_hi - page_lo + 1)?;
    let mut out = Vec::with_capacity(len);
    let mut off = from % PAGE_SIZE;
    for data in &pages {
        let take = (len - out.len()).min(PAGE_SIZE - off);
        out.extend_from_slice(&data[off..off + take]);
        off = 0;
    }
    Ok(out)
}

/// A [`BufferPool`] paired with a [`ShardedCache`] of values decoded from
/// its pages, with the combined stats/reset/clear plumbing.
///
/// Thread-safe like its two layers; share it behind an `Arc` (or as a field
/// of an `Arc`-shared index).
pub struct TieredPool<S: PageStore, V> {
    pool: BufferPool<S>,
    cache: ShardedCache<V>,
}

impl<S: PageStore, V: Clone> TieredPool<S, V> {
    /// Pairs a pool sized to `cache_fraction` of the store's pages (the
    /// paper uses 0.05) with a decoded cache of `decoded_capacity` values
    /// (minimum 1; see [`default_decoded_capacity`]).
    pub fn new(store: S, cache_fraction: f64, decoded_capacity: usize) -> Self {
        TieredPool {
            pool: BufferPool::with_fraction(store, cache_fraction),
            cache: ShardedCache::new(decoded_capacity),
        }
    }

    /// The page-level buffer pool.
    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    /// Sets the pool's [`RetryPolicy`]. Configure before sharing.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.pool.set_retry_policy(retry);
    }

    /// Enables per-page checksum verification in the pool. Configure
    /// before sharing.
    pub fn set_checksums(&mut self, checks: Arc<ChecksumTable>) {
        self.pool.set_checksums(checks);
    }

    /// Drops checksum verification (see [`BufferPool::clear_checksums`]).
    pub fn clear_checksums(&mut self) {
        self.pool.clear_checksums();
    }

    /// Sets the pool's readahead hint (see [`PrefetchPolicy`]). Configure
    /// before sharing.
    pub fn set_prefetch_policy(&mut self, prefetch: PrefetchPolicy) {
        self.pool.set_prefetch_policy(prefetch);
    }

    /// Reads `len` bytes starting at byte offset `from` *through the pool*
    /// — cached pages are served from memory, cold runs are coalesced, and
    /// the pool's [`PrefetchPolicy`] applies. The pooled counterpart of the
    /// free [`read_span`] used for one-shot metadata loads.
    pub fn read_span(&self, from: usize, len: usize) -> io::Result<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        self.pool.read_range(from as u64, (from + len) as u64, &mut out)?;
        Ok(out)
    }

    /// The underlying page store.
    pub fn store(&self) -> &S {
        self.pool.store()
    }

    /// The decoded-object cache.
    pub fn cache(&self) -> &ShardedCache<V> {
        &self.cache
    }

    /// I/O counters of the page pool.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Hit/miss counters of the decoded-object cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Zeroes the counters of both tiers (cached contents are kept).
    pub fn reset_stats(&self) {
        self.pool.reset_stats();
        self.cache.reset_stats();
    }

    /// Drops all cached pages *and* decoded values (cold start).
    pub fn clear(&self) {
        self.pool.clear();
        self.cache.clear();
    }

    /// Tiered lookup: the decoded cache first; on a miss, `decode` produces
    /// the value by reading through the pool, and the result is cached.
    ///
    /// Like [`ShardedCache`], concurrent misses on the same key may decode
    /// twice (values come from already-buffered pages, so duplicating the
    /// cheap decode beats a condvar handshake); the pool below still
    /// deduplicates the actual store reads.
    pub fn get_or_decode(&self, key: u64, decode: impl FnOnce(&BufferPool<S>) -> V) -> V {
        if let Some(v) = self.cache.get(key) {
            return v;
        }
        let v = decode(&self.pool);
        self.cache.insert(key, v.clone());
        v
    }

    /// Fallible [`Self::get_or_decode`]: a decode error propagates and
    /// nothing is cached, so a later retry re-attempts the read instead of
    /// serving a poisoned value.
    pub fn try_get_or_decode(
        &self,
        key: u64,
        decode: impl FnOnce(&BufferPool<S>) -> io::Result<V>,
    ) -> io::Result<V> {
        if let Some(v) = self.cache.get(key) {
            return Ok(v);
        }
        let v = decode(&self.pool)?;
        self.cache.insert(key, v.clone());
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemPageStore;
    use std::sync::Arc;

    fn store_with(pages: usize) -> MemPageStore {
        let mut data = Vec::with_capacity(pages * PAGE_SIZE);
        for p in 0..pages {
            data.extend(std::iter::repeat_n(p as u8, PAGE_SIZE));
        }
        MemPageStore::new(&data)
    }

    #[test]
    fn default_capacity_is_clamped() {
        assert_eq!(default_decoded_capacity(0), 32);
        assert_eq!(default_decoded_capacity(100), 32);
        assert_eq!(default_decoded_capacity(800), 100);
        assert_eq!(default_decoded_capacity(1_000_000), 4096);
    }

    #[test]
    fn read_span_crosses_page_boundaries() {
        let store = store_with(3);
        let bytes = read_span(&store, PAGE_SIZE - 4, 8).unwrap();
        assert_eq!(&bytes[..4], &[0u8; 4]);
        assert_eq!(&bytes[4..], &[1u8; 4]);
        assert!(read_span(&store, 3 * PAGE_SIZE - 1, 2).is_err(), "past EOF must fail");
    }

    #[test]
    fn pooled_read_span_is_cached_and_prefetch_aware() {
        let mut tiered: TieredPool<MemPageStore, u8> = TieredPool::new(store_with(4), 1.0, 4);
        tiered.set_prefetch_policy(PrefetchPolicy { window: 2 });
        let bytes = tiered.read_span(PAGE_SIZE - 2, 4).unwrap();
        assert_eq!(bytes, &[0, 0, 1, 1]);
        let s = tiered.io_stats();
        assert_eq!((s.misses, s.prefetched), (2, 2), "readahead past the requested span");
        // The same span again is all pool hits — no further store reads.
        let again = tiered.read_span(PAGE_SIZE - 2, 4).unwrap();
        assert_eq!(again, bytes);
        let s = tiered.io_stats();
        assert_eq!((s.hits, s.misses, s.prefetched), (2, 2, 2));
        assert_eq!(tiered.read_span(0, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn get_or_decode_hits_cache_then_pool() {
        let tiered: TieredPool<MemPageStore, Arc<[u8]>> = TieredPool::new(store_with(4), 1.0, 8);
        let decode = |pool: &BufferPool<MemPageStore>| -> Arc<[u8]> {
            let page = pool.get(PageId(2)).unwrap();
            page[..4].to_vec().into()
        };
        let a = tiered.get_or_decode(7, decode);
        assert_eq!(&a[..], &[2u8; 4]);
        // Second lookup: served from the decoded cache, no pool traffic.
        let io_before = tiered.io_stats();
        let b = tiered.get_or_decode(7, |_| unreachable!("must be cached"));
        assert_eq!(&b[..], &[2u8; 4]);
        assert_eq!(tiered.io_stats(), io_before);
        let cs = tiered.cache_stats();
        assert_eq!((cs.hits, cs.misses), (1, 1));
    }

    #[test]
    fn try_get_or_decode_caches_success_not_failure() {
        let tiered: TieredPool<MemPageStore, u8> = TieredPool::new(store_with(2), 1.0, 4);
        let err =
            tiered.try_get_or_decode(9, |pool| pool.get(PageId(55)).map(|p| p[0])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // The failure was not cached: the next attempt decodes for real.
        let v = tiered.try_get_or_decode(9, |pool| pool.get(PageId(1)).map(|p| p[0])).unwrap();
        assert_eq!(v, 1);
        // And the success *was* cached.
        let v = tiered.try_get_or_decode(9, |_| unreachable!("must be cached")).unwrap();
        assert_eq!(v, 1);
    }

    #[test]
    fn reset_and_clear_cover_both_tiers() {
        let tiered: TieredPool<MemPageStore, u8> = TieredPool::new(store_with(2), 1.0, 4);
        let _ = tiered.get_or_decode(0, |pool| pool.get(PageId(0)).unwrap()[0]);
        assert!(tiered.io_stats().misses > 0);
        assert_eq!(tiered.cache_stats().misses, 1);
        tiered.reset_stats();
        assert_eq!(tiered.io_stats(), IoStats::default());
        assert_eq!(tiered.cache_stats(), CacheStats::default());
        // clear drops both the decoded value and the cached page.
        tiered.clear();
        let _ = tiered.get_or_decode(0, |pool| pool.get(PageId(0)).unwrap()[0]);
        assert_eq!(tiered.cache_stats().misses, 1, "cleared value must re-decode");
        assert_eq!(tiered.io_stats().misses, 1, "cleared page must re-read");
    }
}
