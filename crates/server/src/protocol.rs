//! Wire codec for the SILC protocol, version 1.
//!
//! The normative specification lives in `docs/PROTOCOL.md` (embedded in the
//! [crate docs](crate)); this module is its executable counterpart. Every
//! frame type the spec names has a `frame_<name>_…` test below — CI greps
//! for the pairing, so a frame added to one side without the other fails
//! the build.
//!
//! Design notes:
//!
//! * Everything is little-endian; `f64`s travel as [`f64::to_bits`]
//!   patterns so a remote answer is *bit-identical* to the local one.
//! * [`read_frame`] distinguishes a clean close (EOF **at** a frame
//!   boundary → `Ok(None)`) from truncation (EOF **inside** a frame →
//!   [`DecodeError::Io`] with `UnexpectedEof`), because the server owes a
//!   reply only in the second case — and then only if the header survived.
//! * Payload parsing is strict: short payloads **and** trailing bytes are
//!   both [`DecodeError::Malformed`]. The frame boundary is still intact
//!   (the header's `length` was honored), so malformed payloads are
//!   recoverable and the connection stays open.

use std::fmt;
use std::io::{self, Read, Write};

/// `"SILC"` as a little-endian `u32` (bytes `53 49 4C 43` on the wire).
pub const MAGIC: u32 = 0x434C_4953;
/// The protocol version this build speaks.
pub const VERSION: u16 = 1;
/// Hard cap on payload length; a header asking for more is hostile.
pub const MAX_FRAME_LEN: u32 = 1 << 20;
/// Fixed frame-header size: magic + version + kind + flags + length.
pub const HEADER_LEN: usize = 12;

/// Frame kinds (the `kind` header byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    Hello = 0x01,
    ServerHello = 0x02,
    Query = 0x03,
    Batch = 0x04,
    Response = 0x05,
    Error = 0x06,
    ServerBusy = 0x07,
    Status = 0x08,
    StatusReply = 0x09,
    Goodbye = 0x0A,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::Hello,
            0x02 => FrameKind::ServerHello,
            0x03 => FrameKind::Query,
            0x04 => FrameKind::Batch,
            0x05 => FrameKind::Response,
            0x06 => FrameKind::Error,
            0x07 => FrameKind::ServerBusy,
            0x08 => FrameKind::Status,
            0x09 => FrameKind::StatusReply,
            0x0A => FrameKind::Goodbye,
            _ => return None,
        })
    }
}

/// Typed error codes carried by `ERROR` frames. The numeric values are
/// wire-stable; see the spec's table for the kept/closed semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    BadMagic = 1,
    UnsupportedVersion = 2,
    FrameTooLarge = 3,
    Malformed = 4,
    UnknownKind = 5,
    UnknownAlgorithm = 6,
    BadVertex = 7,
    BadK = 8,
    Unavailable = 9,
    QueryIo = 10,
    QueryCorrupt = 11,
}

impl ErrorCode {
    /// Decodes a wire code; unknown codes (a newer server) map to `None`.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadMagic,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::FrameTooLarge,
            4 => ErrorCode::Malformed,
            5 => ErrorCode::UnknownKind,
            6 => ErrorCode::UnknownAlgorithm,
            7 => ErrorCode::BadVertex,
            8 => ErrorCode::BadK,
            9 => ErrorCode::Unavailable,
            10 => ErrorCode::QueryIo,
            11 => ErrorCode::QueryCorrupt,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::BadMagic => "BAD_MAGIC",
            ErrorCode::UnsupportedVersion => "UNSUPPORTED_VERSION",
            ErrorCode::FrameTooLarge => "FRAME_TOO_LARGE",
            ErrorCode::Malformed => "MALFORMED",
            ErrorCode::UnknownKind => "UNKNOWN_KIND",
            ErrorCode::UnknownAlgorithm => "UNKNOWN_ALGORITHM",
            ErrorCode::BadVertex => "BAD_VERTEX",
            ErrorCode::BadK => "BAD_K",
            ErrorCode::Unavailable => "UNAVAILABLE",
            ErrorCode::QueryIo => "QUERY_IO",
            ErrorCode::QueryCorrupt => "QUERY_CORRUPT",
        };
        f.write_str(name)
    }
}

/// Query algorithms (the query body's `algorithm` byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Algorithm {
    Knn = 0,
    KnnI = 1,
    KnnM = 2,
    Inn = 3,
    Ine = 4,
    Ier = 5,
    Routed = 6,
    Approx = 7,
}

impl Algorithm {
    /// All algorithms, in wire order — handy for exhaustive test sweeps.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Knn,
        Algorithm::KnnI,
        Algorithm::KnnM,
        Algorithm::Inn,
        Algorithm::Ine,
        Algorithm::Ier,
        Algorithm::Routed,
        Algorithm::Approx,
    ];

    fn from_u8(b: u8) -> Option<Algorithm> {
        Self::ALL.get(b as usize).copied()
    }
}

/// One query: 9 bytes on the wire (`algorithm`, `vertex`, `k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryBody {
    pub algorithm: Algorithm,
    pub vertex: u32,
    pub k: u32,
}

/// One neighbor: 24 bytes on the wire. Distances are `f64` bit patterns —
/// decode with [`f64::from_bits`] for the numeric value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireNeighbor {
    pub object: u32,
    pub vertex: u32,
    pub lo_bits: u64,
    pub hi_bits: u64,
}

/// A query answer as it travels in a `RESPONSE` frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnswerBody {
    /// Echo of the request's algorithm byte.
    pub algorithm: u8,
    /// Provably-exact flag (always `true` for non-routed algorithms).
    pub complete: bool,
    /// Shards whose probes failed (routed only; sorted).
    pub degraded: Vec<u32>,
    /// Neighbors in the algorithm's confirmation order.
    pub neighbors: Vec<WireNeighbor>,
}

/// `STATUS_REPLY` payload: a point-in-time server health snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatusReply {
    pub queue_depth: u32,
    pub queue_capacity: u32,
    pub queries_answered: u64,
    pub busy_rejections: u64,
    pub batches_drained: u64,
    pub bodies_executed: u64,
    /// Open-time degradations ([`silc::OpenWarning`] display forms).
    pub warnings: Vec<String>,
}

/// A decoded frame — the protocol's message vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Hello { version: u16 },
    ServerHello { version: u16, capabilities: u8, vertex_count: u32, object_count: u32 },
    Query { request_id: u64, body: QueryBody },
    Batch { request_id: u64, bodies: Vec<QueryBody> },
    Response { request_id: u64, sequence: u32, answer: AnswerBody },
    Error { request_id: u64, sequence: u32, code: u16, detail: String },
    ServerBusy { request_id: u64, sequence: u32 },
    Status,
    StatusReply(StatusReply),
    Goodbye,
}

/// `SERVER_HELLO` capability bit: routed (cross-shard) kNN is served.
pub const CAP_ROUTED: u8 = 1 << 0;
/// `SERVER_HELLO` capability bit: approximate-oracle kNN is served.
pub const CAP_APPROX: u8 = 1 << 1;

/// Why a frame could not be decoded. The variants that poison the stream
/// (desynchronized framing) are exactly the ones the spec closes the
/// connection for; [`DecodeError::Malformed`] alone is recoverable.
#[derive(Debug)]
pub enum DecodeError {
    /// Transport failure — including EOF *inside* a frame (truncation).
    Io(io::Error),
    /// Header magic was not `"SILC"`.
    BadMagic,
    /// Header version is not speakable.
    UnsupportedVersion(u16),
    /// Header length exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
    /// Unknown `kind` byte.
    UnknownKind(u8),
    /// Well-framed but unparseable payload (short, trailing bytes, nonzero
    /// flags, bad inner field). Recoverable: the stream is still in sync.
    Malformed(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "i/o: {e}"),
            DecodeError::BadMagic => write!(f, "bad frame magic"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::FrameTooLarge(n) => {
                write!(f, "frame length {n} exceeds maximum {MAX_FRAME_LEN}")
            }
            DecodeError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02X}"),
            DecodeError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

impl DecodeError {
    /// The `ERROR` frame a server owes for this decode failure, when any:
    /// `(code, keep_connection)`. `Io` gets no reply (the transport is
    /// gone); everything else maps per the spec's table.
    pub fn wire_reply(&self) -> Option<(ErrorCode, bool)> {
        match self {
            DecodeError::Io(_) => None,
            DecodeError::BadMagic => Some((ErrorCode::BadMagic, false)),
            DecodeError::UnsupportedVersion(_) => Some((ErrorCode::UnsupportedVersion, false)),
            DecodeError::FrameTooLarge(_) => Some((ErrorCode::FrameTooLarge, false)),
            DecodeError::UnknownKind(_) => Some((ErrorCode::UnknownKind, false)),
            DecodeError::Malformed(_) => Some((ErrorCode::Malformed, true)),
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_query_body(buf: &mut Vec<u8>, b: &QueryBody) {
    buf.push(b.algorithm as u8);
    put_u32(buf, b.vertex);
    put_u32(buf, b.k);
}

fn put_answer_body(buf: &mut Vec<u8>, a: &AnswerBody) {
    buf.push(a.algorithm);
    buf.push(a.complete as u8);
    put_u16(buf, a.degraded.len() as u16);
    put_u32(buf, a.neighbors.len() as u32);
    for &s in &a.degraded {
        put_u32(buf, s);
    }
    for n in &a.neighbors {
        put_u32(buf, n.object);
        put_u32(buf, n.vertex);
        put_u64(buf, n.lo_bits);
        put_u64(buf, n.hi_bits);
    }
}

/// Serializes a frame (header + payload) into a fresh byte vector.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    let kind = match frame {
        Frame::Hello { version } => {
            put_u16(&mut payload, *version);
            FrameKind::Hello
        }
        Frame::ServerHello { version, capabilities, vertex_count, object_count } => {
            put_u16(&mut payload, *version);
            payload.push(*capabilities);
            put_u32(&mut payload, *vertex_count);
            put_u32(&mut payload, *object_count);
            FrameKind::ServerHello
        }
        Frame::Query { request_id, body } => {
            put_u64(&mut payload, *request_id);
            put_query_body(&mut payload, body);
            FrameKind::Query
        }
        Frame::Batch { request_id, bodies } => {
            put_u64(&mut payload, *request_id);
            put_u32(&mut payload, bodies.len() as u32);
            for b in bodies {
                put_query_body(&mut payload, b);
            }
            FrameKind::Batch
        }
        Frame::Response { request_id, sequence, answer } => {
            put_u64(&mut payload, *request_id);
            put_u32(&mut payload, *sequence);
            put_answer_body(&mut payload, answer);
            FrameKind::Response
        }
        Frame::Error { request_id, sequence, code, detail } => {
            put_u64(&mut payload, *request_id);
            put_u32(&mut payload, *sequence);
            put_u16(&mut payload, *code);
            let detail = detail.as_bytes();
            let n = detail.len().min(u16::MAX as usize);
            put_u16(&mut payload, n as u16);
            payload.extend_from_slice(&detail[..n]);
            FrameKind::Error
        }
        Frame::ServerBusy { request_id, sequence } => {
            put_u64(&mut payload, *request_id);
            put_u32(&mut payload, *sequence);
            FrameKind::ServerBusy
        }
        Frame::Status => FrameKind::Status,
        Frame::StatusReply(s) => {
            put_u32(&mut payload, s.queue_depth);
            put_u32(&mut payload, s.queue_capacity);
            put_u64(&mut payload, s.queries_answered);
            put_u64(&mut payload, s.busy_rejections);
            put_u64(&mut payload, s.batches_drained);
            put_u64(&mut payload, s.bodies_executed);
            put_u16(&mut payload, s.warnings.len() as u16);
            for w in &s.warnings {
                let bytes = w.as_bytes();
                let n = bytes.len().min(u16::MAX as usize);
                put_u16(&mut payload, n as u16);
                payload.extend_from_slice(&bytes[..n]);
            }
            FrameKind::StatusReply
        }
        Frame::Goodbye => FrameKind::Goodbye,
    };
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut out, MAGIC);
    put_u16(&mut out, VERSION);
    out.push(kind as u8);
    out.push(0); // flags
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Encodes and writes one frame. One `write_all` per frame, so concurrent
/// writers serialized by a lock never interleave partial frames.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Strict little-endian payload reader: every getter fails on underrun, and
/// [`Cursor::finish`] fails on trailing bytes.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError::Malformed(format!(
                "payload underrun: wanted {n} more bytes, {} left",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn query_body(&mut self) -> Result<QueryBody, DecodeError> {
        let algo = self.u8()?;
        let algorithm = Algorithm::from_u8(algo)
            .ok_or_else(|| DecodeError::Malformed(format!("unknown algorithm byte {algo}")))?;
        Ok(QueryBody { algorithm, vertex: self.u32()?, k: self.u32()? })
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError::Malformed(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Decodes one payload given its frame kind.
fn decode_payload(kind: FrameKind, payload: &[u8]) -> Result<Frame, DecodeError> {
    let mut c = Cursor::new(payload);
    let frame = match kind {
        FrameKind::Hello => Frame::Hello { version: c.u16()? },
        FrameKind::ServerHello => Frame::ServerHello {
            version: c.u16()?,
            capabilities: c.u8()?,
            vertex_count: c.u32()?,
            object_count: c.u32()?,
        },
        FrameKind::Query => Frame::Query { request_id: c.u64()?, body: c.query_body()? },
        FrameKind::Batch => {
            let request_id = c.u64()?;
            let count = c.u32()? as usize;
            // 9 bytes per body — a count the payload cannot possibly hold
            // is rejected before allocating for it.
            if count > payload.len() / 9 {
                return Err(DecodeError::Malformed(format!(
                    "batch count {count} exceeds payload capacity"
                )));
            }
            let mut bodies = Vec::with_capacity(count);
            for _ in 0..count {
                bodies.push(c.query_body()?);
            }
            Frame::Batch { request_id, bodies }
        }
        FrameKind::Response => {
            let request_id = c.u64()?;
            let sequence = c.u32()?;
            let algorithm = c.u8()?;
            let complete = match c.u8()? {
                0 => false,
                1 => true,
                b => return Err(DecodeError::Malformed(format!("complete byte {b}"))),
            };
            let degraded_n = c.u16()? as usize;
            let neighbor_n = c.u32()? as usize;
            if neighbor_n > payload.len() / 24 {
                return Err(DecodeError::Malformed(format!(
                    "neighbor count {neighbor_n} exceeds payload capacity"
                )));
            }
            let mut degraded = Vec::with_capacity(degraded_n);
            for _ in 0..degraded_n {
                degraded.push(c.u32()?);
            }
            let mut neighbors = Vec::with_capacity(neighbor_n);
            for _ in 0..neighbor_n {
                neighbors.push(WireNeighbor {
                    object: c.u32()?,
                    vertex: c.u32()?,
                    lo_bits: c.u64()?,
                    hi_bits: c.u64()?,
                });
            }
            Frame::Response {
                request_id,
                sequence,
                answer: AnswerBody { algorithm, complete, degraded, neighbors },
            }
        }
        FrameKind::Error => {
            let request_id = c.u64()?;
            let sequence = c.u32()?;
            let code = c.u16()?;
            let len = c.u16()? as usize;
            let detail = String::from_utf8(c.take(len)?.to_vec())
                .map_err(|_| DecodeError::Malformed("error detail is not UTF-8".into()))?;
            Frame::Error { request_id, sequence, code, detail }
        }
        FrameKind::ServerBusy => Frame::ServerBusy { request_id: c.u64()?, sequence: c.u32()? },
        FrameKind::Status => Frame::Status,
        FrameKind::StatusReply => {
            let mut s = StatusReply {
                queue_depth: c.u32()?,
                queue_capacity: c.u32()?,
                queries_answered: c.u64()?,
                busy_rejections: c.u64()?,
                batches_drained: c.u64()?,
                bodies_executed: c.u64()?,
                warnings: Vec::new(),
            };
            let n = c.u16()? as usize;
            for _ in 0..n {
                let len = c.u16()? as usize;
                let text = String::from_utf8(c.take(len)?.to_vec())
                    .map_err(|_| DecodeError::Malformed("warning is not UTF-8".into()))?;
                s.warnings.push(text);
            }
            Frame::StatusReply(s)
        }
        FrameKind::Goodbye => Frame::Goodbye,
    };
    c.finish()?;
    Ok(frame)
}

/// Reads one frame from the stream.
///
/// * `Ok(Some(frame))` — a complete, well-formed frame.
/// * `Ok(None)` — the peer closed the stream cleanly at a frame boundary.
/// * `Err(_)` — transport failure (including mid-frame truncation) or a
///   protocol violation; see [`DecodeError::wire_reply`] for what, if
///   anything, to answer.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, DecodeError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte by hand: zero bytes here is a clean close, not an error.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(DecodeError::Io(e)),
        }
    }
    header[0] = first[0];
    r.read_exact(&mut header[1..])?;

    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let kind_byte = header[6];
    let flags = header[7];
    let length = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if length > MAX_FRAME_LEN {
        return Err(DecodeError::FrameTooLarge(length));
    }
    let kind = FrameKind::from_u8(kind_byte).ok_or(DecodeError::UnknownKind(kind_byte))?;

    let mut payload = vec![0u8; length as usize];
    r.read_exact(&mut payload)?;
    if flags != 0 {
        return Err(DecodeError::Malformed(format!("nonzero flags byte 0x{flags:02X}")));
    }
    decode_payload(kind, &payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) -> Frame {
        let bytes = encode_frame(&frame);
        let decoded = read_frame(&mut &bytes[..]).unwrap().unwrap();
        assert_eq!(decoded, frame, "round trip must be lossless");
        // And the stream must be fully consumed: a second read sees EOF.
        let mut rest = &bytes[bytes.len()..];
        assert!(read_frame(&mut rest).unwrap().is_none());
        decoded
    }

    #[test]
    fn frame_hello_round_trips() {
        round_trip(Frame::Hello { version: 1 });
    }

    #[test]
    fn frame_server_hello_round_trips() {
        round_trip(Frame::ServerHello {
            version: 1,
            capabilities: CAP_ROUTED | CAP_APPROX,
            vertex_count: 100_000,
            object_count: 5_000,
        });
    }

    #[test]
    fn frame_query_round_trips_for_every_algorithm() {
        for (i, algorithm) in Algorithm::ALL.into_iter().enumerate() {
            let f = round_trip(Frame::Query {
                request_id: 77 + i as u64,
                body: QueryBody { algorithm, vertex: 42, k: 5 },
            });
            match f {
                Frame::Query { body, .. } => assert_eq!(body.algorithm as usize, i),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn frame_batch_round_trips() {
        round_trip(Frame::Batch {
            request_id: 9,
            bodies: vec![
                QueryBody { algorithm: Algorithm::Knn, vertex: 1, k: 3 },
                QueryBody { algorithm: Algorithm::Routed, vertex: 99, k: 1 },
                QueryBody { algorithm: Algorithm::Approx, vertex: 0, k: 10 },
            ],
        });
        round_trip(Frame::Batch { request_id: 10, bodies: vec![] });
    }

    #[test]
    fn frame_response_round_trips_with_exact_f64_bits() {
        let lo = 1234.5678901234_f64;
        let hi = f64::INFINITY;
        let f = round_trip(Frame::Response {
            request_id: 3,
            sequence: 7,
            answer: AnswerBody {
                algorithm: Algorithm::Routed as u8,
                complete: false,
                degraded: vec![1, 3],
                neighbors: vec![WireNeighbor {
                    object: 12,
                    vertex: 55,
                    lo_bits: lo.to_bits(),
                    hi_bits: hi.to_bits(),
                }],
            },
        });
        match f {
            Frame::Response { answer, .. } => {
                assert_eq!(f64::from_bits(answer.neighbors[0].lo_bits).to_bits(), lo.to_bits());
                assert_eq!(f64::from_bits(answer.neighbors[0].hi_bits), f64::INFINITY);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn frame_error_round_trips() {
        round_trip(Frame::Error {
            request_id: 1,
            sequence: 0,
            code: ErrorCode::BadVertex as u16,
            detail: "vertex 10⁶ out of range".into(),
        });
        assert_eq!(ErrorCode::from_u16(7), Some(ErrorCode::BadVertex));
        assert_eq!(ErrorCode::from_u16(999), None);
        assert_eq!(ErrorCode::QueryCorrupt.to_string(), "QUERY_CORRUPT");
    }

    #[test]
    fn frame_server_busy_round_trips() {
        round_trip(Frame::ServerBusy { request_id: u64::MAX, sequence: 41 });
    }

    #[test]
    fn frame_status_round_trips() {
        round_trip(Frame::Status);
    }

    #[test]
    fn frame_status_reply_round_trips() {
        round_trip(Frame::StatusReply(StatusReply {
            queue_depth: 12,
            queue_capacity: 256,
            queries_answered: 1 << 40,
            busy_rejections: 17,
            batches_drained: 900,
            bodies_executed: 12_345,
            warnings: vec!["degraded open: frontier tier dropped: bad checksum".into()],
        }));
        round_trip(Frame::StatusReply(StatusReply::default()));
    }

    #[test]
    fn frame_goodbye_round_trips() {
        round_trip(Frame::Goodbye);
    }

    // -- decode failure paths ------------------------------------------------

    #[test]
    fn bad_magic_is_fatal() {
        let mut bytes = encode_frame(&Frame::Status);
        bytes[0] ^= 0xFF;
        match read_frame(&mut &bytes[..]) {
            Err(DecodeError::BadMagic) => {}
            other => panic!("want BadMagic, got {other:?}"),
        }
        assert_eq!(DecodeError::BadMagic.wire_reply(), Some((ErrorCode::BadMagic, false)));
    }

    #[test]
    fn unsupported_version_is_fatal() {
        let mut bytes = encode_frame(&Frame::Status);
        bytes[4] = 0xFF;
        assert!(matches!(read_frame(&mut &bytes[..]), Err(DecodeError::UnsupportedVersion(_))));
    }

    #[test]
    fn oversized_length_is_rejected_without_reading_payload() {
        let mut bytes = encode_frame(&Frame::Status);
        bytes[8..12].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        // No payload follows at all — the length check must fire first.
        match read_frame(&mut &bytes[..HEADER_LEN]) {
            Err(DecodeError::FrameTooLarge(n)) => assert_eq!(n, MAX_FRAME_LEN + 1),
            other => panic!("want FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_is_fatal() {
        let mut bytes = encode_frame(&Frame::Status);
        bytes[6] = 0x7F;
        assert!(matches!(read_frame(&mut &bytes[..]), Err(DecodeError::UnknownKind(0x7F))));
    }

    #[test]
    fn nonzero_flags_are_malformed() {
        let mut bytes = encode_frame(&Frame::Status);
        bytes[7] = 1;
        match read_frame(&mut &bytes[..]) {
            Err(e @ DecodeError::Malformed(_)) => {
                assert_eq!(e.wire_reply(), Some((ErrorCode::Malformed, true)));
            }
            other => panic!("want Malformed, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_io_truncation() {
        let bytes = encode_frame(&Frame::Hello { version: 1 });
        // Cut the stream mid-payload: the reader must see UnexpectedEof,
        // not a clean close and not a panic.
        match read_frame(&mut &bytes[..bytes.len() - 1]) {
            Err(DecodeError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("want Io(UnexpectedEof), got {other:?}"),
        }
        // Cut mid-header too.
        match read_frame(&mut &bytes[..5]) {
            Err(DecodeError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("want Io(UnexpectedEof), got {other:?}"),
        }
    }

    #[test]
    fn short_and_trailing_payloads_are_malformed_but_recoverable() {
        // Short: a QUERY frame whose payload claims fewer bytes than the
        // body needs.
        let mut bytes = encode_frame(&Frame::Query {
            request_id: 5,
            body: QueryBody { algorithm: Algorithm::Knn, vertex: 1, k: 1 },
        });
        let short = (bytes.len() - HEADER_LEN - 4) as u32;
        bytes[8..12].copy_from_slice(&short.to_le_bytes());
        bytes.truncate(HEADER_LEN + short as usize);
        assert!(matches!(read_frame(&mut &bytes[..]), Err(DecodeError::Malformed(_))));

        // Trailing: STATUS with a stray byte.
        let mut bytes = encode_frame(&Frame::Status);
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        bytes.push(0xAB);
        assert!(matches!(read_frame(&mut &bytes[..]), Err(DecodeError::Malformed(_))));

        // A garbage batch count that no payload could hold is rejected
        // before any allocation.
        let mut bytes = encode_frame(&Frame::Batch { request_id: 1, bodies: vec![] });
        let payload_len = (bytes.len() - HEADER_LEN) as u32;
        bytes[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        bytes[8..12].copy_from_slice(&payload_len.to_le_bytes());
        assert!(matches!(read_frame(&mut &bytes[..]), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoder() {
        // Deterministic pseudo-random garbage: every prefix of it must
        // produce a typed outcome, never a panic.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut garbage = vec![0u8; 4096];
        for b in &mut garbage {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (state >> 56) as u8;
        }
        for len in [0, 1, 7, 11, 12, 13, 100, 4096] {
            let _ = read_frame(&mut &garbage[..len]);
        }
        // Garbage dressed in a valid header must also decode to a typed
        // error, not a panic.
        let mut framed = Vec::new();
        framed.extend_from_slice(&MAGIC.to_le_bytes());
        framed.extend_from_slice(&VERSION.to_le_bytes());
        framed.push(FrameKind::Response as u8);
        framed.push(0);
        framed.extend_from_slice(&(64u32).to_le_bytes());
        framed.extend_from_slice(&garbage[..64]);
        assert!(matches!(read_frame(&mut &framed[..]), Err(DecodeError::Malformed(_))));
    }
}
