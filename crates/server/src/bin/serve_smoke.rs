//! End-to-end serving smoke test (`make serve-smoke`).
//!
//! Starts a fully-loaded server (exact + routed + approximate backends)
//! on a loopback port, then runs the scripted session the CI gate
//! demands: a mixed batch across all eight algorithms checked
//! bit-identical against local execution, a malformed frame, an
//! oversized frame, a recoverable bad payload, a status probe, and a
//! clean goodbye. Exits nonzero (panics) on any mismatch.

use silc::partitioned::{PartitionedBuildConfig, PartitionedSilcIndex};
use silc::{BuildConfig, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::{PartitionConfig, VertexId};
use silc_query::{KnnVariant, ObjectSet, PartitionedEngine, QueryEngine, Routable, RoutedAnswer};
use silc_server::protocol::{self, ErrorCode, Frame, MAX_FRAME_LEN};
use silc_server::server::DynBrowser;
use silc_server::{
    Algorithm, AnswerBody, Client, Outcome, QueryBody, Server, ServerBackend, ServerConfig,
};
use std::sync::Arc;

fn wire_neighbors(r: &silc_query::KnnResult) -> Vec<protocol::WireNeighbor> {
    r.neighbors
        .iter()
        .map(|n| protocol::WireNeighbor {
            object: n.object.0,
            vertex: n.vertex.0,
            lo_bits: n.interval.lo.to_bits(),
            hi_bits: n.interval.hi.to_bits(),
        })
        .collect()
}

fn main() {
    let vertices: usize =
        std::env::var("SILC_SMOKE_VERTICES").ok().and_then(|v| v.parse().ok()).unwrap_or(240);

    // -- backends -----------------------------------------------------------
    let g = Arc::new(road_network(&RoadConfig { vertices, seed: 4242, ..Default::default() }));
    let objects = Arc::new(ObjectSet::random(&g, 0.12, 7));
    let idx = Arc::new(
        SilcIndex::build(Arc::clone(&g), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap(),
    );
    let browser: Arc<DynBrowser> = idx;
    let engine = Arc::new(QueryEngine::new(browser, Arc::clone(&objects)));

    let dir = std::env::temp_dir().join(format!("silc-serve-smoke-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let pcfg = PartitionedBuildConfig {
        partition: PartitionConfig { shards: 4, ..Default::default() },
        grid_exponent: 9,
        threads: 1,
        cache_fraction: 0.5,
    };
    let pidx = Arc::new(PartitionedSilcIndex::build_in_dir(Arc::clone(&g), &dir, &pcfg).unwrap());
    let warnings: Vec<String> = pidx.open_warnings().iter().map(|w| w.to_string()).collect();
    let routed_engine = Arc::new(PartitionedEngine::new(pidx, Arc::clone(&objects)));
    let oracle = Arc::new(silc_pcp::DistanceOracle::build(&g, 9, 8.0));

    let backend = ServerBackend {
        engine: Arc::clone(&engine),
        routable: Some(Arc::clone(&routed_engine) as Arc<dyn Routable>),
        oracle: Some(oracle.clone()),
        warnings,
    };
    let server = Server::start("127.0.0.1:0", backend, ServerConfig::default()).unwrap();
    let addr = server.addr();
    println!("serve-smoke: listening on {addr}, {vertices} vertices");

    // -- 1. mixed batch, bit-identical to local execution -------------------
    let mut client = Client::connect(addr).unwrap();
    let info = client.info();
    assert_eq!(info.version, 1);
    assert_eq!(info.vertex_count as usize, vertices);
    assert_eq!(info.capabilities, 0b11, "routed + approx both configured");

    let last = (vertices - 1) as u32;
    let bodies: Vec<QueryBody> = Algorithm::ALL
        .into_iter()
        .enumerate()
        .map(|(i, algorithm)| QueryBody {
            algorithm,
            vertex: [3u32, 57, last, 19, 101, 8, last / 2, 33][i % 8],
            k: 1 + (i as u32 % 4),
        })
        .collect();
    let outcomes = client.batch(&bodies).unwrap();

    let mut local = engine.session();
    let mut local_routed = routed_engine.routing_session();
    let mut routed_out = RoutedAnswer::default();
    for (body, outcome) in bodies.iter().zip(&outcomes) {
        let got = match outcome {
            Outcome::Answer(a) => a,
            other => panic!("{:?} answered {other:?}", body.algorithm),
        };
        let q = VertexId(body.vertex);
        let k = body.k as usize;
        let want: AnswerBody = match body.algorithm {
            Algorithm::Knn | Algorithm::KnnI | Algorithm::KnnM => {
                let variant = match body.algorithm {
                    Algorithm::Knn => KnnVariant::Basic,
                    Algorithm::KnnI => KnnVariant::EarlyEstimate,
                    _ => KnnVariant::MinDist,
                };
                AnswerBody {
                    algorithm: body.algorithm as u8,
                    complete: true,
                    degraded: vec![],
                    neighbors: wire_neighbors(local.knn(q, k, variant)),
                }
            }
            Algorithm::Inn => AnswerBody {
                algorithm: body.algorithm as u8,
                complete: true,
                degraded: vec![],
                neighbors: wire_neighbors(local.inn(q, k)),
            },
            Algorithm::Ine => AnswerBody {
                algorithm: body.algorithm as u8,
                complete: true,
                degraded: vec![],
                neighbors: wire_neighbors(local.ine(q, k)),
            },
            Algorithm::Ier => AnswerBody {
                algorithm: body.algorithm as u8,
                complete: true,
                degraded: vec![],
                neighbors: wire_neighbors(local.ier(q, k)),
            },
            Algorithm::Routed => {
                local_routed.try_knn(q, k, &mut routed_out).unwrap();
                AnswerBody {
                    algorithm: body.algorithm as u8,
                    complete: routed_out.complete,
                    degraded: routed_out.degraded.clone(),
                    neighbors: routed_out
                        .neighbors
                        .iter()
                        .map(|n| protocol::WireNeighbor {
                            object: n.object.0,
                            vertex: n.vertex.0,
                            lo_bits: n.interval.lo.to_bits(),
                            hi_bits: n.interval.hi.to_bits(),
                        })
                        .collect(),
                }
            }
            Algorithm::Approx => AnswerBody {
                algorithm: body.algorithm as u8,
                complete: true,
                degraded: vec![],
                neighbors: wire_neighbors(local.approx_knn(&*oracle, q, k)),
            },
        };
        assert_eq!(got, &want, "{:?} must be bit-identical to local", body.algorithm);
    }
    println!("serve-smoke: batch of {} bit-identical to local", bodies.len());

    // -- 2. recoverable bad payload: connection survives --------------------
    // A QUERY frame with an out-of-range algorithm byte is MALFORMED but
    // well-framed: expect a typed error, then a working query on the SAME
    // connection.
    let mut bad_query = protocol::encode_frame(&Frame::Query {
        request_id: 99,
        body: QueryBody { algorithm: Algorithm::Knn, vertex: 0, k: 1 },
    });
    bad_query[protocol::HEADER_LEN + 8] = 0xEE; // algorithm byte
    client.send_raw(&bad_query).unwrap();
    match client.recv_frame().unwrap().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed as u16),
        other => panic!("bad algorithm byte answered with {other:?}"),
    }
    match client.query(QueryBody { algorithm: Algorithm::Knn, vertex: 5, k: 2 }).unwrap() {
        Outcome::Answer(_) => {}
        other => panic!("connection should have survived: {other:?}"),
    }
    println!("serve-smoke: malformed payload got typed error, connection survived");

    // -- 3. status + goodbye ------------------------------------------------
    let status = client.status().unwrap();
    assert!(status.queries_answered > bodies.len() as u64);
    assert_eq!(status.queue_capacity, 256);
    assert!(status.warnings.is_empty(), "fresh build must not be degraded: {:?}", status.warnings);
    client.goodbye().unwrap();

    // -- 4. garbage magic: typed error, connection closed -------------------
    let mut mal = Client::connect(addr).unwrap();
    mal.send_raw(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    match mal.recv_frame().unwrap().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::BadMagic as u16),
        other => panic!("garbage answered with {other:?}"),
    }
    assert!(mal.recv_frame().unwrap().is_none(), "server must close after bad magic");
    println!("serve-smoke: garbage frame got BAD_MAGIC and a close");

    // -- 5. oversized frame: typed error, connection closed -----------------
    let mut big = Client::connect(addr).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&protocol::MAGIC.to_le_bytes());
    header.extend_from_slice(&protocol::VERSION.to_le_bytes());
    header.push(0x03); // QUERY
    header.push(0);
    header.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    big.send_raw(&header).unwrap();
    match big.recv_frame().unwrap().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::FrameTooLarge as u16),
        other => panic!("oversized frame answered with {other:?}"),
    }
    assert!(big.recv_frame().unwrap().is_none(), "server must close after oversized frame");
    println!("serve-smoke: oversized frame got FRAME_TOO_LARGE and a close");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!("serve-smoke OK");
}
