//! The bounded submission queue and its locality-sorted drain.
//!
//! `BATCH` bodies from every connection land in one server-wide
//! [`SubmissionQueue`]; executor threads drain up to `max_batch` jobs at a
//! time and — in [`BatchOrder::Morton`] mode — execute each drained batch
//! in Morton order of the query vertices' positions. Spatially adjacent
//! query points read overlapping shortest-path-quadtree pages, so sorting
//! a batch turns random page faults into sequential-ish, cache-friendly
//! runs; this is the paper's locality argument applied to the *arrival
//! stream* instead of the index layout. [`BatchOrder::Fifo`] preserves
//! arrival order and exists as the A/B baseline `bench_latency` measures
//! against. Ordering never changes an answer — only cache behavior.
//!
//! The queue is deliberately **bounded**: when it fills, submission fails
//! and the connection answers `SERVER_BUSY` instead of queueing unbounded
//! work (the open-loop bench's backpressure signal).

use crate::protocol::QueryBody;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Execution order of a drained batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOrder {
    /// Arrival order — the baseline.
    Fifo,
    /// Morton order of the query vertices' positions — the locality
    /// optimization.
    Morton,
}

/// One queued query body, tagged with everything needed to route its
/// answer back: which reply channel, which request, which sequence slot.
#[derive(Debug)]
pub struct Job<R> {
    /// Reply channel of the submitting connection.
    pub reply: R,
    /// Request id of the enclosing `BATCH` frame.
    pub request_id: u64,
    /// Zero-based position of this body within its batch.
    pub sequence: u32,
    /// The query itself.
    pub body: QueryBody,
    /// Morton code of the query vertex's position (`0` for out-of-range
    /// vertices — they fail validation at execution, order is moot).
    pub morton: u64,
}

struct QueueState<R> {
    jobs: VecDeque<Job<R>>,
    closed: bool,
}

/// A bounded MPMC queue of [`Job`]s: `Mutex` + `Condvar`, nothing fancier,
/// because the contended path is the executor draining in bulk.
pub struct SubmissionQueue<R> {
    state: Mutex<QueueState<R>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<R> SubmissionQueue<R> {
    /// Creates a queue holding at most `capacity` jobs.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        SubmissionQueue {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// Total job slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }

    /// Submits one job. `Err(job)` hands the job back when the queue is
    /// full or closed — the caller answers `SERVER_BUSY` (or drops it on
    /// shutdown). Never blocks: backpressure is the point.
    pub fn try_submit(&self, job: Job<R>) -> Result<(), Job<R>> {
        let mut s = self.state.lock().unwrap();
        if s.closed || s.jobs.len() >= self.capacity {
            return Err(job);
        }
        s.jobs.push_back(job);
        drop(s);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks until at least one job is available (or the queue closes),
    /// then moves up to `max` jobs into `out`. Returns `false` when the
    /// queue is closed *and* drained — the executor's exit signal.
    pub fn drain(&self, max: usize, out: &mut Vec<Job<R>>) -> bool {
        let mut s = self.state.lock().unwrap();
        while s.jobs.is_empty() {
            if s.closed {
                return false;
            }
            s = self.nonempty.wait(s).unwrap();
        }
        let n = s.jobs.len().min(max);
        out.extend(s.jobs.drain(..n));
        // More work left: wake a sibling executor, if any.
        if !s.jobs.is_empty() {
            self.nonempty.notify_one();
        }
        true
    }

    /// Closes the queue: submissions fail, blocked drains wake, executors
    /// drain the remainder and exit.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.nonempty.notify_all();
    }
}

/// Orders a drained batch for execution. Morton sort is stable, so jobs on
/// the same cell keep arrival order and FIFO is exactly the identity.
pub fn order_batch<R>(jobs: &mut [Job<R>], order: BatchOrder) {
    if order == BatchOrder::Morton {
        jobs.sort_by_key(|j| j.morton);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Algorithm;
    use std::sync::Arc;

    fn job(seq: u32, morton: u64) -> Job<()> {
        Job {
            reply: (),
            request_id: 1,
            sequence: seq,
            body: QueryBody { algorithm: Algorithm::Knn, vertex: seq, k: 1 },
            morton,
        }
    }

    #[test]
    fn backpressure_engages_at_capacity() {
        let q: SubmissionQueue<()> = SubmissionQueue::new(2);
        assert!(q.try_submit(job(0, 0)).is_ok());
        assert!(q.try_submit(job(1, 0)).is_ok());
        let bounced = q.try_submit(job(2, 0)).unwrap_err();
        assert_eq!(bounced.sequence, 2, "the rejected job comes back intact");
        assert_eq!(q.depth(), 2);

        let mut out = Vec::new();
        assert!(q.drain(1, &mut out));
        assert_eq!(out.len(), 1);
        assert!(q.try_submit(job(3, 0)).is_ok(), "draining frees a slot");
    }

    #[test]
    fn drain_respects_max_and_close_drains_remainder() {
        let q: SubmissionQueue<()> = SubmissionQueue::new(8);
        for i in 0..5 {
            q.try_submit(job(i, 0)).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.drain(3, &mut out));
        assert_eq!(out.len(), 3);
        q.close();
        assert!(q.try_submit(job(9, 0)).is_err(), "closed queue rejects");
        assert!(q.drain(10, &mut out), "close still hands out queued jobs");
        assert_eq!(out.len(), 5);
        assert!(!q.drain(10, &mut out), "closed and empty ends the executor");
    }

    #[test]
    fn close_wakes_a_blocked_drain() {
        let q: Arc<SubmissionQueue<()>> = Arc::new(SubmissionQueue::new(2));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            let mut out = Vec::new();
            q2.drain(4, &mut out)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(!t.join().unwrap(), "blocked drain observes the close");
    }

    #[test]
    fn morton_order_sorts_and_fifo_preserves_arrival() {
        let mut jobs = vec![job(0, 30), job(1, 10), job(2, 20), job(3, 10)];
        order_batch(&mut jobs, BatchOrder::Fifo);
        assert_eq!(jobs.iter().map(|j| j.sequence).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        order_batch(&mut jobs, BatchOrder::Morton);
        // Stable: the two morton==10 jobs keep arrival order 1 then 3.
        assert_eq!(jobs.iter().map(|j| j.sequence).collect::<Vec<_>>(), vec![1, 3, 2, 0]);
    }
}
