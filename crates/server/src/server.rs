//! The TCP server: one session per connection thread, one shared bounded
//! submission queue, executor threads draining Morton-sorted batches.
//!
//! ## Threading model
//!
//! * **Accept thread** — polls the listener, spawns one thread per
//!   connection, registers each connection's writer so shutdown can
//!   unblock its reader by closing the socket.
//! * **Connection threads** — own the socket's read half and a
//!   `SessionSet` (a `QuerySession`, plus a routing session when the
//!   backend has one). `QUERY` frames execute inline on this session;
//!   `BATCH` bodies are submitted to the shared queue. All writes to the
//!   socket go through a mutex-guarded `ConnWriter`, one whole frame per
//!   lock hold, so executor replies and inline replies never interleave
//!   partial frames.
//! * **Executor threads** — each owns its *own* `SessionSet`; they block
//!   on the queue, drain up to [`ServerConfig::max_batch`] jobs, order the
//!   batch ([`BatchOrder`]), execute, and reply through each job's writer.
//!
//! Every query answered by any thread is bit-identical to a local
//! [`QuerySession`] run: the sessions *are* local sessions, and the wire
//! codec moves `f64`s as bit patterns.

use crate::batch::{order_batch, BatchOrder, Job, SubmissionQueue};
use crate::protocol::{
    self, Algorithm, AnswerBody, ErrorCode, Frame, QueryBody, StatusReply, WireNeighbor,
    CAP_APPROX, CAP_ROUTED, VERSION,
};
use silc::{DistanceBrowser, QueryError};
use silc_morton::MortonCode;
use silc_network::VertexId;
use silc_query::{
    ApproxDistanceOracle, KnnResult, KnnVariant, QueryEngine, QuerySession, Routable, RoutedAnswer,
    RoutingSession,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The index type every connection serves: any [`DistanceBrowser`] behind
/// a vtable — the memory and disk indexes alike.
pub type DynBrowser = dyn DistanceBrowser + Send + Sync;

/// What the server serves. The exact engine is mandatory; the routed and
/// approximate backends are optional and advertised via `SERVER_HELLO`
/// capability bits.
pub struct ServerBackend {
    /// Exact algorithms (kNN/kNN-I/kNN-M/INN/INE/IER) run here.
    pub engine: Arc<QueryEngine<DynBrowser>>,
    /// `Routed` queries, when present ([`CAP_ROUTED`]).
    pub routable: Option<Arc<dyn Routable>>,
    /// `Approx` queries, when present ([`CAP_APPROX`]).
    pub oracle: Option<Arc<dyn ApproxDistanceOracle>>,
    /// Open-time degradations to surface in `STATUS_REPLY` — e.g. the
    /// display forms of [`silc::OpenWarning`] from
    /// `PartitionedSilcIndex::open_warnings`.
    pub warnings: Vec<String>,
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Submission-queue capacity; the backpressure threshold.
    pub queue_capacity: usize,
    /// Most jobs an executor drains (and sorts) at once.
    pub max_batch: usize,
    /// Execution order of drained batches.
    pub order: BatchOrder,
    /// Executor thread count.
    pub executor_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 256,
            max_batch: 64,
            order: BatchOrder::Morton,
            executor_threads: 1,
        }
    }
}

/// Lifetime counters, visible in `STATUS_REPLY`.
#[derive(Default)]
struct ServerStats {
    queries_answered: AtomicU64,
    busy_rejections: AtomicU64,
    batches_drained: AtomicU64,
    bodies_executed: AtomicU64,
}

/// The socket's write half behind a mutex: one whole frame per lock hold.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Writes one frame; errors are swallowed — a dead client's replies
    /// have nowhere to go, and its reader thread notices independently.
    fn send(&self, frame: &Frame) {
        let mut s = self.stream.lock().unwrap();
        let _ = protocol::write_frame(&mut *s, frame);
    }

    /// Tears the socket down (both halves), unblocking the reader thread.
    fn kill(&self) {
        let s = self.stream.lock().unwrap();
        let _ = s.shutdown(std::net::Shutdown::Both);
    }
}

struct Shared {
    backend: ServerBackend,
    cfg: ServerConfig,
    queue: SubmissionQueue<Arc<ConnWriter>>,
    stats: ServerStats,
    shutdown: AtomicBool,
    /// Writers of live connections, so shutdown can unblock their readers.
    writers: Mutex<Vec<Arc<ConnWriter>>>,
}

impl Shared {
    fn vertex_count(&self) -> u32 {
        self.backend.engine.browser().network().vertex_count() as u32
    }

    fn capabilities(&self) -> u8 {
        let mut caps = 0;
        if self.backend.routable.is_some() {
            caps |= CAP_ROUTED;
        }
        if self.backend.oracle.is_some() {
            caps |= CAP_APPROX;
        }
        caps
    }

    /// Morton code of a query vertex's position, on the index's own grid.
    /// Out-of-range vertices get `0`: they fail validation at execution,
    /// so their batch position is irrelevant.
    fn morton_of(&self, vertex: u32) -> u64 {
        let browser = self.backend.engine.browser();
        if vertex >= self.vertex_count() {
            return 0;
        }
        let p = browser.network().position(VertexId(vertex));
        MortonCode::encode(browser.mapper().to_grid(&p)).0
    }

    fn status(&self) -> StatusReply {
        StatusReply {
            queue_depth: self.queue.depth() as u32,
            queue_capacity: self.queue.capacity() as u32,
            queries_answered: self.stats.queries_answered.load(Ordering::Relaxed),
            busy_rejections: self.stats.busy_rejections.load(Ordering::Relaxed),
            batches_drained: self.stats.batches_drained.load(Ordering::Relaxed),
            bodies_executed: self.stats.bodies_executed.load(Ordering::Relaxed),
            warnings: self.backend.warnings.clone(),
        }
    }
}

/// Per-thread query state: a local session per backend kind. Connection
/// threads and executor threads each own one.
struct SessionSet {
    exact: QuerySession<DynBrowser>,
    routed: Option<Box<dyn RoutingSession>>,
    routed_answer: RoutedAnswer,
}

impl SessionSet {
    fn new(backend: &ServerBackend) -> Self {
        SessionSet {
            exact: backend.engine.session(),
            routed: backend.routable.as_ref().map(|r| r.routing_session()),
            routed_answer: RoutedAnswer::default(),
        }
    }
}

fn answer_from_knn(algorithm: Algorithm, r: &KnnResult) -> AnswerBody {
    AnswerBody {
        algorithm: algorithm as u8,
        complete: true,
        degraded: Vec::new(),
        neighbors: r
            .neighbors
            .iter()
            .map(|n| WireNeighbor {
                object: n.object.0,
                vertex: n.vertex.0,
                lo_bits: n.interval.lo.to_bits(),
                hi_bits: n.interval.hi.to_bits(),
            })
            .collect(),
    }
}

fn answer_from_routed(algorithm: Algorithm, r: &RoutedAnswer) -> AnswerBody {
    AnswerBody {
        algorithm: algorithm as u8,
        complete: r.complete,
        degraded: r.degraded.clone(),
        neighbors: r
            .neighbors
            .iter()
            .map(|n| WireNeighbor {
                object: n.object.0,
                vertex: n.vertex.0,
                lo_bits: n.interval.lo.to_bits(),
                hi_bits: n.interval.hi.to_bits(),
            })
            .collect(),
    }
}

fn query_error_reply(e: QueryError) -> (ErrorCode, String) {
    match e {
        QueryError::Io(_) => (ErrorCode::QueryIo, e.to_string()),
        QueryError::Corrupt { .. } => (ErrorCode::QueryCorrupt, e.to_string()),
    }
}

/// Validates and executes one query body on `set`, against `shared`'s
/// backend. This is the single dispatch path both inline `QUERY` handling
/// and the batching executor go through.
fn execute(
    shared: &Shared,
    set: &mut SessionSet,
    body: &QueryBody,
) -> Result<AnswerBody, (ErrorCode, String)> {
    if body.k == 0 {
        return Err((ErrorCode::BadK, "k must be at least 1".into()));
    }
    let n = shared.vertex_count();
    if body.vertex >= n {
        return Err((ErrorCode::BadVertex, format!("vertex {} out of range 0..{n}", body.vertex)));
    }
    let q = VertexId(body.vertex);
    let k = body.k as usize;
    let algo = body.algorithm;
    match algo {
        Algorithm::Knn | Algorithm::KnnI | Algorithm::KnnM => {
            let variant = match algo {
                Algorithm::Knn => KnnVariant::Basic,
                Algorithm::KnnI => KnnVariant::EarlyEstimate,
                _ => KnnVariant::MinDist,
            };
            let r = set.exact.try_knn(q, k, variant).map_err(query_error_reply)?;
            Ok(answer_from_knn(algo, r))
        }
        Algorithm::Inn => {
            let r = set.exact.try_inn(q, k).map_err(query_error_reply)?;
            Ok(answer_from_knn(algo, r))
        }
        Algorithm::Ine => {
            let r = set.exact.ine(q, k);
            Ok(answer_from_knn(algo, r))
        }
        Algorithm::Ier => {
            let r = set.exact.ier(q, k);
            Ok(answer_from_knn(algo, r))
        }
        Algorithm::Routed => match set.routed.as_mut() {
            Some(routed) => {
                routed.try_knn(q, k, &mut set.routed_answer).map_err(query_error_reply)?;
                Ok(answer_from_routed(algo, &set.routed_answer))
            }
            None => Err((ErrorCode::Unavailable, "no partitioned backend configured".into())),
        },
        Algorithm::Approx => match shared.backend.oracle.as_deref() {
            Some(oracle) => {
                let r = set.exact.try_approx_knn(oracle, q, k).map_err(query_error_reply)?;
                Ok(answer_from_knn(algo, r))
            }
            None => Err((ErrorCode::Unavailable, "no approximate oracle configured".into())),
        },
    }
}

/// Executes one job and replies through its writer. Shared by nothing but
/// the executor loop, but split out so the success/error accounting reads
/// straight-line.
fn run_job(shared: &Shared, set: &mut SessionSet, job: &Job<Arc<ConnWriter>>) {
    match execute(shared, set, &job.body) {
        Ok(answer) => {
            shared.stats.queries_answered.fetch_add(1, Ordering::Relaxed);
            job.reply.send(&Frame::Response {
                request_id: job.request_id,
                sequence: job.sequence,
                answer,
            });
        }
        Err((code, detail)) => {
            job.reply.send(&Frame::Error {
                request_id: job.request_id,
                sequence: job.sequence,
                code: code as u16,
                detail,
            });
        }
    }
}

fn executor_loop(shared: Arc<Shared>) {
    let mut set = SessionSet::new(&shared.backend);
    let mut batch: Vec<Job<Arc<ConnWriter>>> = Vec::with_capacity(shared.cfg.max_batch);
    while shared.queue.drain(shared.cfg.max_batch, &mut batch) {
        shared.stats.batches_drained.fetch_add(1, Ordering::Relaxed);
        shared.stats.bodies_executed.fetch_add(batch.len() as u64, Ordering::Relaxed);
        order_batch(&mut batch, shared.cfg.order);
        for job in &batch {
            run_job(&shared, &mut set, job);
        }
        batch.clear();
    }
}

/// Outcome of one handled frame: keep the connection or close it.
enum Flow {
    Continue,
    Close,
}

fn handle_frame(
    shared: &Shared,
    set: &mut SessionSet,
    writer: &Arc<ConnWriter>,
    frame: Frame,
) -> Flow {
    match frame {
        Frame::Query { request_id, body } => {
            match execute(shared, set, &body) {
                Ok(answer) => {
                    shared.stats.queries_answered.fetch_add(1, Ordering::Relaxed);
                    writer.send(&Frame::Response { request_id, sequence: 0, answer });
                }
                Err((code, detail)) => {
                    writer.send(&Frame::Error {
                        request_id,
                        sequence: 0,
                        code: code as u16,
                        detail,
                    });
                }
            }
            Flow::Continue
        }
        Frame::Batch { request_id, bodies } => {
            for (i, body) in bodies.into_iter().enumerate() {
                let job = Job {
                    reply: Arc::clone(writer),
                    request_id,
                    sequence: i as u32,
                    body,
                    morton: shared.morton_of(body.vertex),
                };
                if shared.queue.try_submit(job).is_err() {
                    shared.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    writer.send(&Frame::ServerBusy { request_id, sequence: i as u32 });
                }
            }
            Flow::Continue
        }
        Frame::Status => {
            writer.send(&Frame::StatusReply(shared.status()));
            Flow::Continue
        }
        Frame::Goodbye => Flow::Close,
        // Client resending HELLO, or speaking server-direction frames:
        // protocol-order violation — MALFORMED, closed (see spec).
        Frame::Hello { .. }
        | Frame::ServerHello { .. }
        | Frame::Response { .. }
        | Frame::Error { .. }
        | Frame::ServerBusy { .. }
        | Frame::StatusReply(_) => {
            writer.send(&Frame::Error {
                request_id: 0,
                sequence: 0,
                code: ErrorCode::Malformed as u16,
                detail: "protocol-order violation".into(),
            });
            Flow::Close
        }
    }
}

fn connection_loop(shared: Arc<Shared>, mut stream: TcpStream, writer: Arc<ConnWriter>) {
    // Handshake: the first frame must be HELLO with a speakable version.
    match protocol::read_frame(&mut stream) {
        Ok(Some(Frame::Hello { version })) if version == VERSION => {
            writer.send(&Frame::ServerHello {
                version: VERSION,
                capabilities: shared.capabilities(),
                vertex_count: shared.vertex_count(),
                object_count: shared.backend.engine.objects().len() as u32,
            });
        }
        Ok(Some(Frame::Hello { .. })) => {
            writer.send(&Frame::Error {
                request_id: 0,
                sequence: 0,
                code: ErrorCode::UnsupportedVersion as u16,
                detail: format!("server speaks version {VERSION}"),
            });
            return;
        }
        Ok(Some(_)) => {
            writer.send(&Frame::Error {
                request_id: 0,
                sequence: 0,
                code: ErrorCode::Malformed as u16,
                detail: "expected HELLO first".into(),
            });
            return;
        }
        Ok(None) => return,
        Err(e) => {
            if let Some((code, _)) = e.wire_reply() {
                writer.send(&Frame::Error {
                    request_id: 0,
                    sequence: 0,
                    code: code as u16,
                    detail: e.to_string(),
                });
            }
            return;
        }
    }

    let mut set = SessionSet::new(&shared.backend);
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match protocol::read_frame(&mut stream) {
            Ok(Some(frame)) => match handle_frame(&shared, &mut set, &writer, frame) {
                Flow::Continue => {}
                Flow::Close => return,
            },
            // Clean close, truncation, reset: nothing is owed. The spec's
            // "MUST NOT panic or hang" for mid-request disconnects is this
            // arm — the thread just winds down.
            Ok(None) => return,
            Err(e) => match e.wire_reply() {
                Some((code, keep)) => {
                    writer.send(&Frame::Error {
                        request_id: 0,
                        sequence: 0,
                        code: code as u16,
                        detail: e.to_string(),
                    });
                    if !keep {
                        return;
                    }
                }
                None => return,
            },
        }
    }
}

/// A running server. Dropping it shuts everything down: the listener, the
/// executors, and every live connection.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// in background threads.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        backend: ServerBackend,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: SubmissionQueue::new(cfg.queue_capacity),
            backend,
            cfg,
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            writers: Mutex::new(Vec::new()),
        });

        let executors = (0..shared.cfg.executor_threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || executor_loop(shared))
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            accept_loop(accept_shared, listener);
        });

        Ok(Server { shared, addr, accept: Some(accept), executors })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time status snapshot — the same data `STATUS` returns.
    pub fn status(&self) -> StatusReply {
        self.shared.status()
    }

    /// Stops accepting, closes every connection, drains the executors.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queue.close();
        for w in self.shared.writers.lock().unwrap().drain(..) {
            w.kill();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    let mut conn_threads = Vec::new();
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let writer = match stream.try_clone() {
                    Ok(w) => Arc::new(ConnWriter { stream: Mutex::new(w) }),
                    Err(_) => continue,
                };
                shared.writers.lock().unwrap().push(Arc::clone(&writer));
                let shared = Arc::clone(&shared);
                conn_threads.push(std::thread::spawn(move || {
                    connection_loop(Arc::clone(&shared), stream, Arc::clone(&writer));
                    // The reader is done with this connection: close the
                    // write-half clone too (the client is owed its EOF) and
                    // drop it from the shutdown registry.
                    writer.kill();
                    let mut writers = shared.writers.lock().unwrap();
                    if let Some(i) = writers.iter().position(|w| Arc::ptr_eq(w, &writer)) {
                        writers.swap_remove(i);
                    }
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for h in conn_threads {
        let _ = h.join();
    }
}
