//! `silc-server` — the TCP serving front-end for SILC indexes.
//!
//! Nine PRs built an index stack that answers network-distance queries
//! from disk with zero hot-path allocations; this crate puts a wire on it.
//! It is a deliberately small, dependency-free server — `std::net` TCP, a
//! hand-rolled length-prefixed binary protocol (module [`protocol`]; the
//! normative spec is embedded at [`spec`]) — built around three ideas:
//!
//! 1. **Sessions are the unit of serving.** Every connection thread and
//!    every batch-executor thread owns a plain [`silc_query::QuerySession`]
//!    (plus a [`silc_query::RoutingSession`] when a partitioned backend is
//!    configured). Remote answers are *bit-identical* to local ones
//!    because they are produced by the same code, and `f64`s travel as bit
//!    patterns.
//! 2. **Batches are sorted for locality.** `BATCH` bodies from all
//!    connections funnel into one bounded submission queue (module
//!    [`batch`]); executors drain up to a configured batch size and
//!    execute each batch in Morton order of the query points, so
//!    spatially adjacent queries touch overlapping index pages and the
//!    buffer pool amortizes faults across them. `bench_latency` in
//!    `silc-bench` measures exactly this effect against FIFO order.
//! 3. **Overload is a typed answer, not a growing queue.** When the
//!    submission queue is full the server answers `SERVER_BUSY` per
//!    rejected body — open-loop clients see backpressure instead of
//!    unbounded queueing delay.
//!
//! The serving surface covers all six exact algorithms (kNN, kNN-I,
//! kNN-M, INN, INE, IER), routed partitioned kNN (via the
//! [`silc_query::Routable`] seam), and approximate-oracle kNN, each
//! selected by a byte in the query body. Typed error frames mirror
//! [`silc::QueryError`], and a `STATUS` frame exposes queue depth,
//! lifetime counters, and any [`silc::OpenWarning`] degradations the
//! backend recorded at open time.
//!
//! Start a server with [`server::Server::start`]; talk to it with
//! [`client::Client`]. `examples/remote_browsing.rs` (in the workspace
//! `silc-bench` crate) walks through both ends, and `serve_smoke` is the
//! scripted end-to-end session CI runs.

pub mod batch;
pub mod client;
pub mod protocol;
pub mod server;

/// The normative wire-protocol specification (`docs/PROTOCOL.md`),
/// embedded verbatim so the rendered docs and the repository file cannot
/// drift apart.
#[doc = include_str!("../../../docs/PROTOCOL.md")]
pub mod spec {}

pub use batch::BatchOrder;
pub use client::{Client, ClientError, Outcome, ServerInfo};
pub use protocol::{Algorithm, AnswerBody, ErrorCode, Frame, QueryBody, StatusReply};
pub use server::{Server, ServerBackend, ServerConfig};
