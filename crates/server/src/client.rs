//! The client library: a blocking, dependency-free speaker of the SILC
//! protocol over one TCP connection.
//!
//! [`Client::connect`] performs the HELLO handshake; [`Client::query`] and
//! [`Client::batch`] are the synchronous request/response surface most
//! callers want. Open-loop callers (the latency bench) split the
//! connection with [`Client::try_clone`] and drive the two halves from
//! separate threads via [`Client::send_batch_nowait`] and
//! [`Client::recv`], matching responses by `(request id, sequence)`.
//!
//! The raw-frame escape hatches ([`Client::send_raw`],
//! [`Client::recv_frame`]) exist for protocol hardening tests — sending a
//! deliberately broken frame and asserting the typed `ERROR` that comes
//! back.

use crate::protocol::{self, AnswerBody, DecodeError, Frame, QueryBody, StatusReply, VERSION};
use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// What the server said in `SERVER_HELLO`.
#[derive(Debug, Clone, Copy)]
pub struct ServerInfo {
    pub version: u16,
    pub capabilities: u8,
    pub vertex_count: u32,
    pub object_count: u32,
}

/// Client-side failure: transport, codec, or a handshake-fatal server
/// error. Per-query server errors are *not* here — they are [`Outcome`]s,
/// because a batch can mix successes and failures.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    Decode(DecodeError),
    /// The server answered the handshake with an `ERROR` frame.
    Rejected {
        code: u16,
        detail: String,
    },
    /// The server sent a frame that makes no sense here.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Decode(e) => write!(f, "decode: {e}"),
            ClientError::Rejected { code, detail } => {
                write!(f, "server rejected connection (code {code}): {detail}")
            }
            ClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// The server's verdict on one query body.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Executed; the answer is bit-identical to a local session's.
    Answer(AnswerBody),
    /// Bounced by backpressure — resubmit after backing off.
    Busy,
    /// Rejected or failed with a typed error (`ErrorCode` value + detail).
    ServerError { code: u16, detail: String },
}

/// One protocol connection. Blocking; not `Sync` — clone for concurrency
/// ([`Client::try_clone`]).
pub struct Client {
    stream: TcpStream,
    info: ServerInfo,
    next_request: u64,
}

impl Client {
    /// Connects and performs the HELLO / SERVER_HELLO handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        protocol::write_frame(&mut stream, &Frame::Hello { version: VERSION })?;
        match protocol::read_frame(&mut stream)? {
            Some(Frame::ServerHello { version, capabilities, vertex_count, object_count }) => {
                Ok(Client {
                    stream,
                    info: ServerInfo { version, capabilities, vertex_count, object_count },
                    next_request: 1,
                })
            }
            Some(Frame::Error { code, detail, .. }) => Err(ClientError::Rejected { code, detail }),
            Some(other) => Err(ClientError::Protocol(format!("handshake answered with {other:?}"))),
            None => Err(ClientError::Protocol("server closed during handshake".into())),
        }
    }

    /// The handshake data.
    pub fn info(&self) -> ServerInfo {
        self.info
    }

    /// A second handle on the same connection (shared socket). The
    /// intended split is one sender half and one receiver half; request
    /// ids stay unambiguous if only one half submits.
    pub fn try_clone(&self) -> io::Result<Client> {
        Ok(Client { stream: self.stream.try_clone()?, info: self.info, next_request: 1 })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        id
    }

    /// One query, synchronously: sends `QUERY`, waits for its reply.
    pub fn query(&mut self, body: QueryBody) -> Result<Outcome, ClientError> {
        let id = self.fresh_id();
        protocol::write_frame(&mut self.stream, &Frame::Query { request_id: id, body })?;
        let (_, _, outcome) = self.recv_matching(id)?;
        Ok(outcome)
    }

    /// One batch, synchronously: sends `BATCH`, collects every body's
    /// outcome, returns them in sequence order.
    pub fn batch(&mut self, bodies: &[QueryBody]) -> Result<Vec<Outcome>, ClientError> {
        let id = self.fresh_id();
        protocol::write_frame(
            &mut self.stream,
            &Frame::Batch { request_id: id, bodies: bodies.to_vec() },
        )?;
        let mut outcomes: Vec<Option<Outcome>> = vec![None; bodies.len()];
        let mut missing = bodies.len();
        while missing > 0 {
            let (rid, seq, outcome) = self.recv_expect()?;
            if rid != id {
                return Err(ClientError::Protocol(format!(
                    "response for unknown request {rid} (awaiting {id})"
                )));
            }
            let slot = outcomes
                .get_mut(seq as usize)
                .ok_or_else(|| ClientError::Protocol(format!("sequence {seq} out of range")))?;
            if slot.replace(outcome).is_some() {
                return Err(ClientError::Protocol(format!("duplicate sequence {seq}")));
            }
            missing -= 1;
        }
        Ok(outcomes.into_iter().map(|o| o.unwrap()).collect())
    }

    /// Asks for a server health snapshot.
    pub fn status(&mut self) -> Result<StatusReply, ClientError> {
        protocol::write_frame(&mut self.stream, &Frame::Status)?;
        loop {
            match protocol::read_frame(&mut self.stream)? {
                Some(Frame::StatusReply(s)) => return Ok(s),
                // Late batch replies may interleave; skip them.
                Some(Frame::Response { .. })
                | Some(Frame::Error { .. })
                | Some(Frame::ServerBusy { .. }) => continue,
                Some(other) => {
                    return Err(ClientError::Protocol(format!("status answered with {other:?}")))
                }
                None => return Err(ClientError::Protocol("server closed before reply".into())),
            }
        }
    }

    /// Says goodbye and consumes the client. The server closes cleanly.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        protocol::write_frame(&mut self.stream, &Frame::Goodbye)?;
        let _ = self.stream.flush();
        Ok(())
    }

    // -- open-loop primitives (the latency bench's surface) -----------------

    /// Sends a `BATCH` without waiting for anything. The caller owns
    /// request-id allocation; match replies via [`Client::recv`] on the
    /// receiving half.
    pub fn send_batch_nowait(
        &mut self,
        request_id: u64,
        bodies: &[QueryBody],
    ) -> Result<(), ClientError> {
        protocol::write_frame(
            &mut self.stream,
            &Frame::Batch { request_id, bodies: bodies.to_vec() },
        )?;
        Ok(())
    }

    /// Receives the next per-query outcome: `(request id, sequence,
    /// outcome)`. `Ok(None)` when the server closed the stream cleanly.
    pub fn recv(&mut self) -> Result<Option<(u64, u32, Outcome)>, ClientError> {
        loop {
            match protocol::read_frame(&mut self.stream)? {
                Some(Frame::Response { request_id, sequence, answer }) => {
                    return Ok(Some((request_id, sequence, Outcome::Answer(answer))))
                }
                Some(Frame::ServerBusy { request_id, sequence }) => {
                    return Ok(Some((request_id, sequence, Outcome::Busy)))
                }
                Some(Frame::Error { request_id, sequence, code, detail }) => {
                    return Ok(Some((request_id, sequence, Outcome::ServerError { code, detail })))
                }
                Some(Frame::StatusReply(_)) => continue,
                Some(other) => {
                    return Err(ClientError::Protocol(format!("unexpected frame {other:?}")))
                }
                None => return Ok(None),
            }
        }
    }

    fn recv_expect(&mut self) -> Result<(u64, u32, Outcome), ClientError> {
        self.recv()?.ok_or_else(|| ClientError::Protocol("server closed mid-request".into()))
    }

    fn recv_matching(&mut self, id: u64) -> Result<(u64, u32, Outcome), ClientError> {
        loop {
            let got = self.recv_expect()?;
            // Connection-level errors travel with request id 0; surface
            // them to whoever is waiting.
            if got.0 == id || got.0 == 0 {
                return Ok(got);
            }
        }
    }

    // -- hardening-test escape hatches --------------------------------------

    /// Writes raw bytes to the socket, bypassing the codec. For tests that
    /// need to send deliberately broken frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one raw frame (`Ok(None)` on clean close). For tests
    /// asserting exactly which `ERROR` frame a broken input provokes.
    pub fn recv_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        protocol::read_frame(&mut self.stream)
    }
}
