//! End-to-end TCP tests: the acceptance gates of the serving tier.
//!
//! * ≥4 simultaneous clients receive answers bit-identical to local
//!   `QuerySession` execution, across every algorithm the backend serves.
//! * Malformed / truncated / oversized / garbage frames produce typed
//!   error frames — never a panic, never a hang.
//! * Mid-request disconnects leave the server healthy.
//! * Flooding a tiny submission queue engages `SERVER_BUSY` backpressure
//!   and every body is accounted for (answered + busy == sent).

use silc::partitioned::{PartitionedBuildConfig, PartitionedSilcIndex};
use silc::{BuildConfig, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::{PartitionConfig, SpatialNetwork, VertexId};
use silc_query::{KnnVariant, ObjectSet, PartitionedEngine, QueryEngine, Routable};
use silc_server::batch::BatchOrder;
use silc_server::protocol::{self, Frame, WireNeighbor, HEADER_LEN, MAGIC, MAX_FRAME_LEN, VERSION};
use silc_server::server::DynBrowser;
use silc_server::{
    Algorithm, Client, ErrorCode, Outcome, QueryBody, Server, ServerBackend, ServerConfig,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn fixture(
    vertices: usize,
    seed: u64,
) -> (Arc<SpatialNetwork>, Arc<QueryEngine<DynBrowser>>, Arc<ObjectSet>) {
    let g = Arc::new(road_network(&RoadConfig { vertices, seed, ..Default::default() }));
    let objects = Arc::new(ObjectSet::random(&g, 0.12, seed.wrapping_add(1)));
    let idx = Arc::new(
        SilcIndex::build(Arc::clone(&g), &BuildConfig { grid_exponent: 9, threads: 0 }).unwrap(),
    );
    let browser: Arc<DynBrowser> = idx;
    (g, Arc::new(QueryEngine::new(browser, Arc::clone(&objects))), objects)
}

fn exact_only_backend(engine: &Arc<QueryEngine<DynBrowser>>) -> ServerBackend {
    ServerBackend { engine: Arc::clone(engine), routable: None, oracle: None, warnings: Vec::new() }
}

fn wire(r: &silc_query::KnnResult) -> Vec<WireNeighbor> {
    r.neighbors
        .iter()
        .map(|n| WireNeighbor {
            object: n.object.0,
            vertex: n.vertex.0,
            lo_bits: n.interval.lo.to_bits(),
            hi_bits: n.interval.hi.to_bits(),
        })
        .collect()
}

#[test]
fn four_concurrent_clients_get_bit_identical_answers() {
    let (g, engine, objects) = fixture(200, 99);

    // Full backend: exact + routed + approx, so every algorithm is
    // exercised concurrently.
    let dir = std::env::temp_dir().join("silc-server-net-concurrent");
    std::fs::remove_dir_all(&dir).ok();
    let pcfg = PartitionedBuildConfig {
        partition: PartitionConfig { shards: 3, ..Default::default() },
        grid_exponent: 9,
        threads: 1,
        cache_fraction: 0.5,
    };
    let pidx = Arc::new(PartitionedSilcIndex::build_in_dir(Arc::clone(&g), &dir, &pcfg).unwrap());
    let routed = Arc::new(PartitionedEngine::new(pidx, Arc::clone(&objects)));
    let oracle: Arc<dyn silc_query::ApproxDistanceOracle> =
        Arc::new(silc_pcp::DistanceOracle::build(&g, 9, 8.0));

    let backend = ServerBackend {
        engine: Arc::clone(&engine),
        routable: Some(Arc::clone(&routed) as Arc<dyn Routable>),
        oracle: Some(Arc::clone(&oracle)),
        warnings: Vec::new(),
    };
    let server = Server::start("127.0.0.1:0", backend, ServerConfig::default()).unwrap();
    let addr = server.addr();

    let n = g.vertex_count() as u32;
    let threads: Vec<_> = (0..4u32)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let routed = Arc::clone(&routed);
            let oracle = Arc::clone(&oracle);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut local = engine.session();
                let mut local_routed = routed.routing_session();
                let mut routed_out = silc_query::RoutedAnswer::default();
                for round in 0..6u32 {
                    let q = (t * 37 + round * 13) % n;
                    let k = 1 + ((t + round) % 4) as usize;
                    for algorithm in Algorithm::ALL {
                        let body = QueryBody { algorithm, vertex: q, k: k as u32 };
                        let got = match client.query(body).unwrap() {
                            Outcome::Answer(a) => a,
                            other => panic!("client {t}: {algorithm:?} answered {other:?}"),
                        };
                        let qv = VertexId(q);
                        let (want_neighbors, want_complete, want_degraded) = match algorithm {
                            Algorithm::Knn => {
                                (wire(local.knn(qv, k, KnnVariant::Basic)), true, vec![])
                            }
                            Algorithm::KnnI => {
                                (wire(local.knn(qv, k, KnnVariant::EarlyEstimate)), true, vec![])
                            }
                            Algorithm::KnnM => {
                                (wire(local.knn(qv, k, KnnVariant::MinDist)), true, vec![])
                            }
                            Algorithm::Inn => (wire(local.inn(qv, k)), true, vec![]),
                            Algorithm::Ine => (wire(local.ine(qv, k)), true, vec![]),
                            Algorithm::Ier => (wire(local.ier(qv, k)), true, vec![]),
                            Algorithm::Routed => {
                                local_routed.try_knn(qv, k, &mut routed_out).unwrap();
                                (
                                    routed_out
                                        .neighbors
                                        .iter()
                                        .map(|pn| WireNeighbor {
                                            object: pn.object.0,
                                            vertex: pn.vertex.0,
                                            lo_bits: pn.interval.lo.to_bits(),
                                            hi_bits: pn.interval.hi.to_bits(),
                                        })
                                        .collect(),
                                    routed_out.complete,
                                    routed_out.degraded.clone(),
                                )
                            }
                            Algorithm::Approx => {
                                (wire(local.approx_knn(&*oracle, qv, k)), true, vec![])
                            }
                        };
                        assert_eq!(got.algorithm, algorithm as u8);
                        assert_eq!(got.complete, want_complete, "client {t} {algorithm:?}");
                        assert_eq!(got.degraded, want_degraded, "client {t} {algorithm:?}");
                        assert_eq!(
                            got.neighbors, want_neighbors,
                            "client {t} {algorithm:?} q={q} k={k}: remote answer must be \
                             bit-identical to local"
                        );
                    }
                }
                client.goodbye().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flood_engages_backpressure_and_accounts_for_every_body() {
    let (_, engine, _) = fixture(150, 7);
    let cfg = ServerConfig {
        queue_capacity: 2,
        max_batch: 1,
        order: BatchOrder::Morton,
        executor_threads: 1,
    };
    let server = Server::start("127.0.0.1:0", exact_only_backend(&engine), cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let bodies: Vec<QueryBody> =
        (0..300).map(|i| QueryBody { algorithm: Algorithm::Knn, vertex: i % 150, k: 3 }).collect();
    let outcomes = client.batch(&bodies).unwrap();
    let answered = outcomes.iter().filter(|o| matches!(o, Outcome::Answer(_))).count();
    let busy = outcomes.iter().filter(|o| matches!(o, Outcome::Busy)).count();
    assert_eq!(answered + busy, bodies.len(), "every body gets exactly one reply");
    assert!(busy > 0, "a 2-deep queue flooded with 300 bodies must bounce some");
    assert!(answered > 0, "the executor must also make progress");

    let status = client.status().unwrap();
    assert_eq!(status.busy_rejections, busy as u64);
    assert_eq!(status.queue_capacity, 2);
    client.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn hardening_bad_frames_get_typed_errors_and_disconnects_leave_server_healthy() {
    let (_, engine, _) = fixture(120, 31);
    let server =
        Server::start("127.0.0.1:0", exact_only_backend(&engine), ServerConfig::default()).unwrap();
    let addr = server.addr();

    // Garbage magic → BAD_MAGIC, closed.
    let mut c = Client::connect(addr).unwrap();
    c.send_raw(&[0u8; 32]).unwrap();
    match c.recv_frame().unwrap().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::BadMagic as u16),
        other => panic!("garbage answered {other:?}"),
    }
    assert!(c.recv_frame().unwrap().is_none());

    // Oversized header → FRAME_TOO_LARGE, closed.
    let mut c = Client::connect(addr).unwrap();
    let mut hdr = Vec::new();
    hdr.extend_from_slice(&MAGIC.to_le_bytes());
    hdr.extend_from_slice(&VERSION.to_le_bytes());
    hdr.push(0x03);
    hdr.push(0);
    hdr.extend_from_slice(&(MAX_FRAME_LEN + 7).to_le_bytes());
    c.send_raw(&hdr).unwrap();
    match c.recv_frame().unwrap().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::FrameTooLarge as u16),
        other => panic!("oversized answered {other:?}"),
    }
    assert!(c.recv_frame().unwrap().is_none());

    // Unknown kind → UNKNOWN_KIND, closed.
    let mut c = Client::connect(addr).unwrap();
    let mut hdr = Vec::new();
    hdr.extend_from_slice(&MAGIC.to_le_bytes());
    hdr.extend_from_slice(&VERSION.to_le_bytes());
    hdr.push(0x6F);
    hdr.push(0);
    hdr.extend_from_slice(&0u32.to_le_bytes());
    c.send_raw(&hdr).unwrap();
    match c.recv_frame().unwrap().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownKind as u16),
        other => panic!("unknown kind answered {other:?}"),
    }
    assert!(c.recv_frame().unwrap().is_none());

    // Truncated frame then hard disconnect: no reply owed; the server
    // must survive. (This is the mid-request-disconnect gate.)
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        protocol::write_frame(&mut raw, &Frame::Hello { version: VERSION }).unwrap();
        let mut hello_reply = raw.try_clone().unwrap();
        protocol::read_frame(&mut hello_reply).unwrap().unwrap();
        let full = protocol::encode_frame(&Frame::Query {
            request_id: 1,
            body: QueryBody { algorithm: Algorithm::Knn, vertex: 0, k: 1 },
        });
        raw.write_all(&full[..HEADER_LEN + 3]).unwrap();
        // Drop mid-payload.
    }

    // Bad vertex / bad k / unavailable algorithm → typed per-query errors
    // on a connection that stays up.
    let mut c = Client::connect(addr).unwrap();
    match c.query(QueryBody { algorithm: Algorithm::Knn, vertex: 10_000, k: 1 }).unwrap() {
        Outcome::ServerError { code, .. } => assert_eq!(code, ErrorCode::BadVertex as u16),
        other => panic!("bad vertex answered {other:?}"),
    }
    match c.query(QueryBody { algorithm: Algorithm::Knn, vertex: 0, k: 0 }).unwrap() {
        Outcome::ServerError { code, .. } => assert_eq!(code, ErrorCode::BadK as u16),
        other => panic!("k=0 answered {other:?}"),
    }
    for algorithm in [Algorithm::Routed, Algorithm::Approx] {
        match c.query(QueryBody { algorithm, vertex: 0, k: 1 }).unwrap() {
            Outcome::ServerError { code, .. } => {
                assert_eq!(code, ErrorCode::Unavailable as u16, "{algorithm:?}")
            }
            other => panic!("{algorithm:?} answered {other:?}"),
        }
    }
    // And the connection still answers real queries after all that.
    match c.query(QueryBody { algorithm: Algorithm::Knn, vertex: 1, k: 2 }).unwrap() {
        Outcome::Answer(a) => assert!(!a.neighbors.is_empty()),
        other => panic!("healthy query answered {other:?}"),
    }

    // Protocol-order violation: HELLO twice → MALFORMED, closed.
    c.send_raw(&protocol::encode_frame(&Frame::Hello { version: VERSION })).unwrap();
    match c.recv_frame().unwrap().unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed as u16),
        other => panic!("double HELLO answered {other:?}"),
    }
    assert!(c.recv_frame().unwrap().is_none());

    server.shutdown();
}

#[test]
fn fifo_and_morton_orders_answer_identically() {
    let (_, engine, _) = fixture(160, 55);
    let bodies: Vec<QueryBody> = (0..40)
        .map(|i| QueryBody { algorithm: Algorithm::Knn, vertex: (i * 7) % 160, k: 2 })
        .collect();

    let mut answers = Vec::new();
    for order in [BatchOrder::Fifo, BatchOrder::Morton] {
        let cfg = ServerConfig { order, queue_capacity: 1024, ..Default::default() };
        let server = Server::start("127.0.0.1:0", exact_only_backend(&engine), cfg).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let outcomes = client.batch(&bodies).unwrap();
        answers.push(
            outcomes
                .into_iter()
                .map(|o| match o {
                    Outcome::Answer(a) => a,
                    other => panic!("{order:?} answered {other:?}"),
                })
                .collect::<Vec<_>>(),
        );
        client.goodbye().unwrap();
        server.shutdown();
    }
    assert_eq!(answers[0], answers[1], "execution order must never change answers");
}
