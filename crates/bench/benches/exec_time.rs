//! Figure p.33 — execution time of INE, IER, INN, kNN, kNN-I, kNN-M.
//!
//! Benchmarks all six algorithms at the paper's default operating point
//! (k = 10, S = 0.07·N) and at a high-k point (k = 100) where the variants
//! overtake plain kNN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silc_bench::{StandardWorkload, WorkloadConfig};
use silc_network::VertexId;
use silc_query::{ier, ine, inn, knn, KnnVariant};

fn bench_exec_time(c: &mut Criterion) {
    let w = StandardWorkload::build(WorkloadConfig { vertices: 1500, ..Default::default() });
    let objects = w.objects(0.07, 0);
    let queries: Vec<VertexId> = w.queries(4, 0);

    for k in [10usize, 100] {
        let mut group = c.benchmark_group(format!("figure_p33_exec_time_k{k}"));
        group.sample_size(20);
        group.bench_function(BenchmarkId::new("INE", k), |b| {
            b.iter(|| {
                for &q in &queries {
                    std::hint::black_box(ine(&w.network, &objects, q, k));
                }
            })
        });
        group.bench_function(BenchmarkId::new("IER", k), |b| {
            b.iter(|| {
                for &q in &queries {
                    std::hint::black_box(ier(&w.network, &objects, q, k));
                }
            })
        });
        group.bench_function(BenchmarkId::new("INN", k), |b| {
            b.iter(|| {
                for &q in &queries {
                    std::hint::black_box(inn(&w.index, &objects, q, k));
                }
            })
        });
        for (name, variant) in [
            ("KNN", KnnVariant::Basic),
            ("KNN-I", KnnVariant::EarlyEstimate),
            ("KNN-M", KnnVariant::MinDist),
        ] {
            group.bench_function(BenchmarkId::new(name, k), |b| {
                b.iter(|| {
                    for &q in &queries {
                        std::hint::black_box(knn(&w.index, &objects, q, k, variant));
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_exec_time);
criterion_main!(benches);
