//! Figures p.34–p.37 — queue sizes, refinement counts, KMINDIST pruning,
//! and estimate quality.
//!
//! These figures plot *counters*, not times; the bench times the counter-
//! dominant code paths (INN vs the pruned variants) and prints the counter
//! series alongside, so `cargo bench` regenerates both.

use criterion::{criterion_group, criterion_main, Criterion};
use silc_bench::stats::mean;
use silc_bench::{StandardWorkload, WorkloadConfig};
use silc_query::{inn, knn, KnnVariant};

fn bench_counters(c: &mut Criterion) {
    let w = StandardWorkload::build(WorkloadConfig { vertices: 1500, ..Default::default() });
    let objects = w.objects(0.07, 0);
    let queries = w.queries(6, 0);
    let k = 10;

    // Counter series for the four figures.
    let mut inn_queue = Vec::new();
    let mut knn_queue = Vec::new();
    let mut inn_refines = Vec::new();
    let mut knn_refines = Vec::new();
    let mut m_refines = Vec::new();
    let mut pruned = Vec::new();
    let mut d0k_pct = Vec::new();
    let mut kmin_pct = Vec::new();
    for &q in &queries {
        let ri = inn(&w.index, &objects, q, k);
        inn_queue.push(ri.stats.max_queue as f64);
        inn_refines.push(ri.stats.refinements as f64);
        let rk = knn(&w.index, &objects, q, k, KnnVariant::Basic);
        knn_queue.push(rk.stats.max_queue as f64);
        knn_refines.push(rk.stats.refinements as f64);
        let rm = knn(&w.index, &objects, q, k, KnnVariant::MinDist);
        m_refines.push(rm.stats.refinements as f64);
        pruned.push(100.0 * rm.stats.kmindist_pruned as f64 / k as f64);
        if rm.stats.dk_final > 0.0 {
            if let Some(d) = rm.stats.d0k {
                d0k_pct.push(100.0 * d / rm.stats.dk_final);
            }
            if let Some(m) = rm.stats.kmindist_final {
                kmin_pct.push(100.0 * m / rm.stats.dk_final);
            }
        }
    }
    println!(
        "\n# figure p.34: max |Q| — KNN {:.0}% of INN",
        100.0 * mean(&knn_queue) / mean(&inn_queue)
    );
    println!(
        "# figure p.35: refinements — KNN {:.0}% / KNN-M {:.0}% of INN",
        100.0 * mean(&knn_refines) / mean(&inn_refines),
        100.0 * mean(&m_refines) / mean(&inn_refines)
    );
    println!("# figure p.36: {:.0}% of neighbors pruned against KMINDIST", mean(&pruned));
    println!(
        "# figure p.37: D0k = {:.0}% of Dk, KMINDIST = {:.0}% of Dk",
        mean(&d0k_pct),
        mean(&kmin_pct)
    );

    let mut group = c.benchmark_group("figures_p34_p37_counter_paths");
    group.sample_size(20);
    group.bench_function("INN_k10", |b| {
        b.iter(|| {
            for &q in &queries {
                std::hint::black_box(inn(&w.index, &objects, q, k));
            }
        })
    });
    group.bench_function("KNN_k10", |b| {
        b.iter(|| {
            for &q in &queries {
                std::hint::black_box(knn(&w.index, &objects, q, k, KnnVariant::Basic));
            }
        })
    });
    group.bench_function("KNN-M_k10", |b| {
        b.iter(|| {
            for &q in &queries {
                std::hint::black_box(knn(&w.index, &objects, q, k, KnnVariant::MinDist));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_counters);
criterion_main!(benches);
