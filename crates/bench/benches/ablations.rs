//! Ablations A1 and A2 — the storage and bound design choices.

use criterion::{criterion_group, criterion_main, Criterion};
use silc::mbr_baseline::ColorMbrIndex;
use silc::spmap::ShortestPathMap;
use silc::DistanceBrowser;
use silc_bench::{StandardWorkload, WorkloadConfig};
use silc_network::VertexId;

fn bench_ablations(c: &mut Criterion) {
    let w = StandardWorkload::build(WorkloadConfig { vertices: 1000, ..Default::default() });
    let source = VertexId(123);
    let map = ShortestPathMap::compute(&w.network, source).unwrap();
    let mbr = ColorMbrIndex::build(&map, w.network.positions());
    let probes: Vec<_> = w.network.positions().iter().step_by(7).copied().collect();
    let codes: Vec<_> = (0..w.network.vertex_count())
        .step_by(7)
        .map(|v| w.index.vertex_code(VertexId(v as u32)))
        .collect();

    // A1: next-hop lookup, MBR candidates vs quadtree block.
    let mut group = c.benchmark_group("ablation_a1_lookup");
    group.sample_size(30);
    group.bench_function("mbr_candidates", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in &probes {
                total += mbr.lookup(p).len();
            }
            std::hint::black_box(total)
        })
    });
    group.bench_function("quadtree_lookup", |b| {
        b.iter(|| {
            for code in &codes {
                std::hint::black_box(w.index.entry(source, *code));
            }
        })
    });
    group.finish();
    println!(
        "\n# ablation A1: MBR ambiguity over all vertices = {:.1}% (quadtree: 0%)",
        100.0 * mbr.ambiguity_rate(w.network.positions())
    );

    // A2: region lower bound, per-block λ vs global ratio. Probe a region
    // in the quadrant opposite the source so the Euclidean gap is nonzero.
    let spos = w.network.position(source);
    let b = w.network.bounds();
    let rect = if spos.x < b.center().x {
        silc_geom::Rect::new(b.center().x + b.width() * 0.2, b.min_y, b.max_x, b.max_y)
    } else {
        silc_geom::Rect::new(b.min_x, b.min_y, b.center().x - b.width() * 0.2, b.max_y)
    };
    let mut group = c.benchmark_group("ablation_a2_region_bound");
    group.sample_size(30);
    group.bench_function("per_block_lambda", |b| {
        b.iter(|| std::hint::black_box(w.index.region_lower_bound(source, &rect)))
    });
    group.bench_function("global_ratio", |b| {
        b.iter(|| {
            let e = rect.min_distance(&w.network.position(source));
            std::hint::black_box(w.index.global_min_ratio() * e)
        })
    });
    group.finish();
    let sharp = w.index.region_lower_bound(source, &rect);
    let loose = w.index.global_min_ratio() * rect.min_distance(&w.network.position(source));
    println!("# ablation A2: bound sharpness {sharp:.1} vs {loose:.1} (higher is tighter)");
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
