//! Extension X1 — PCP distance-oracle build and query latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::VertexId;
use silc_pcp::DistanceOracle;

fn bench_pcp(c: &mut Criterion) {
    let g = road_network(&RoadConfig { vertices: 400, seed: 2008, ..Default::default() });

    let mut group = c.benchmark_group("x1_pcp_oracle_build");
    group.sample_size(10);
    for s in [2.0f64, 4.0] {
        group.bench_with_input(BenchmarkId::new("build", s as u32), &s, |b, &s| {
            b.iter(|| std::hint::black_box(DistanceOracle::build(&g, 10, s)))
        });
    }
    group.finish();

    let oracle = DistanceOracle::build(&g, 10, 4.0);
    println!(
        "\n# X1: oracle s=4 stores {} pairs, ε ≈ {:.2}",
        oracle.pair_count(),
        oracle.epsilon()
    );
    let pairs: Vec<(VertexId, VertexId)> =
        (0..32).map(|i| (VertexId(i * 11 % 400), VertexId((i * 29 + 50) % 400))).collect();
    let mut group = c.benchmark_group("x1_pcp_oracle_query");
    group.sample_size(30);
    group.bench_function("distance", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                std::hint::black_box(oracle.distance(u, v));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pcp);
criterion_main!(benches);
