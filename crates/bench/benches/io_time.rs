//! Figure p.38 — query time against the disk-resident index (LRU cache =
//! 5 % of pages), where I/O dominates.

use criterion::{criterion_group, criterion_main, Criterion};
use silc::{disk, DiskSilcIndex};
use silc_bench::{StandardWorkload, WorkloadConfig};
use silc_query::{inn, knn, KnnVariant};

fn bench_io_time(c: &mut Criterion) {
    let w = StandardWorkload::build(WorkloadConfig { vertices: 1500, ..Default::default() });
    let dir = std::env::temp_dir().join("silc-bench-io-criterion");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.idx");
    disk::write_index(&w.index, &path).unwrap();
    let disk_index = DiskSilcIndex::open(&path, w.network.clone(), 0.05).unwrap();
    let objects = w.objects(0.07, 0);
    let queries = w.queries(4, 0);
    let k = 10;

    let mut group = c.benchmark_group("figure_p38_io_time");
    group.sample_size(10);
    group.bench_function("INN_disk", |b| {
        b.iter(|| {
            disk_index.clear_cache();
            for &q in &queries {
                std::hint::black_box(inn(&disk_index, &objects, q, k));
            }
        })
    });
    for (name, variant) in [
        ("KNN_disk", KnnVariant::Basic),
        ("KNN-I_disk", KnnVariant::EarlyEstimate),
        ("KNN-M_disk", KnnVariant::MinDist),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                disk_index.clear_cache();
                for &q in &queries {
                    std::hint::black_box(knn(&disk_index, &objects, q, k, variant));
                }
            })
        });
    }
    // The in-memory counterpart, for the I/O-share comparison.
    group.bench_function("KNN_memory", |b| {
        b.iter(|| {
            for &q in &queries {
                std::hint::black_box(knn(&w.index, &objects, q, k, KnnVariant::Basic));
            }
        })
    });
    group.finish();

    disk_index.reset_io_stats();
    disk_index.clear_cache();
    for &q in &queries {
        let _ = knn(&disk_index, &objects, q, k, KnnVariant::Basic);
    }
    let io = disk_index.io_stats();
    println!(
        "\n# figure p.38 I/O profile (KNN, cold cache): {} reads, {:.1} KiB, hit rate {:.0}%",
        io.misses,
        io.bytes_read as f64 / 1024.0,
        100.0 * io.hit_rate()
    );
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_io_time);
criterion_main!(benches);
