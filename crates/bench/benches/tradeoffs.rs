//! Table p.11 — per-approach path and distance query latency (the storage
//! column is printed by `figures -- table1`).

use criterion::{criterion_group, criterion_main, Criterion};
use silc::prelude::*;
use silc_network::generate::{road_network, RoadConfig};
use silc_network::{dijkstra, VertexId};
use silc_pcp::DistanceOracle;
use std::sync::Arc;

fn bench_tradeoffs(c: &mut Criterion) {
    let g = Arc::new(road_network(&RoadConfig { vertices: 500, seed: 2008, ..Default::default() }));
    let idx = SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 10, threads: 0 }).unwrap();
    let oracle = DistanceOracle::build(&g, 10, 4.0);
    let pairs: Vec<(VertexId, VertexId)> =
        (0..16).map(|i| (VertexId(i * 7 % 500), VertexId((i * 31 + 100) % 500))).collect();

    let mut group = c.benchmark_group("table_p11_query_latency");
    group.sample_size(20);
    group.bench_function("dijkstra_path", |b| {
        b.iter(|| {
            for &(s, d) in &pairs {
                std::hint::black_box(dijkstra::point_to_point(&g, s, d));
            }
        })
    });
    group.bench_function("silc_path", |b| {
        b.iter(|| {
            for &(s, d) in &pairs {
                std::hint::black_box(silc::path::shortest_path(&idx, s, d).unwrap());
            }
        })
    });
    group.bench_function("silc_distance_refined", |b| {
        b.iter(|| {
            for &(s, d) in &pairs {
                let mut r = RefinableDistance::new(&idx, s, d);
                std::hint::black_box(r.refine_until_exact(&idx));
            }
        })
    });
    group.bench_function("silc_distance_interval_only", |b| {
        b.iter(|| {
            for &(s, d) in &pairs {
                std::hint::black_box(idx.interval(s, d));
            }
        })
    });
    group.bench_function("oracle_distance_approx", |b| {
        b.iter(|| {
            for &(s, d) in &pairs {
                std::hint::black_box(oracle.distance(s, d));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tradeoffs);
criterion_main!(benches);
