//! Figure p.16 — SILC precomputation and storage scaling.
//!
//! Times the per-network-size precompute (Dijkstra + quadtree build for all
//! sources) and prints the measured Morton-block counts whose log-log slope
//! the paper reports as ≈ 1.5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silc::index::count_total_blocks;
use silc_network::generate::{road_network, RoadConfig};

fn bench_storage_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_p16_storage_scaling");
    group.sample_size(10);
    let mut table = Vec::new();
    for &n in &[500usize, 1000, 2000] {
        let g = road_network(&RoadConfig { vertices: n, seed: 2008, ..Default::default() });
        let blocks = count_total_blocks(&g, 11, 0).expect("count blocks");
        table.push((n, blocks));
        group.bench_with_input(BenchmarkId::new("precompute", n), &g, |b, g| {
            b.iter(|| count_total_blocks(g, 11, 0).expect("count blocks"))
        });
    }
    group.finish();
    println!("\n# figure p.16 series (n, morton blocks):");
    for (n, m) in &table {
        println!("#   {n:>6} {m:>10}   (m/n = {:.1})", *m as f64 / *n as f64);
    }
    let slope = {
        let x: Vec<f64> = table.iter().map(|(n, _)| (*n as f64).ln()).collect();
        let y: Vec<f64> = table.iter().map(|(_, m)| (*m as f64).ln()).collect();
        silc_bench::stats::slope(&x, &y)
    };
    println!("# log-log slope = {slope:.3} (paper: ~1.5)");
}

criterion_group!(benches, bench_storage_scaling);
criterion_main!(benches);
