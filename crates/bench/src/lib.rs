//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment in [`experiments`] corresponds to one artifact of the
//! paper's evaluation (see `DESIGN.md` for the full index) and returns
//! structured rows that the `figures` binary prints. The same functions are
//! wrapped by the Criterion benches, so `cargo bench` and
//! `cargo run --bin figures` measure identical code paths.

pub mod experiments;
pub mod schema;
pub mod stats;
pub mod workloads;

pub use workloads::{StandardWorkload, WorkloadConfig};

/// Network size for the runnable examples: the walkthrough's default,
/// overridable via `SILC_EXAMPLE_VERTICES` so the smoke test can run the
/// examples on tiny networks. Overrides are floored at 16 vertices — the
/// examples derive scaled vertex ids (`n - 10`, `n * 9 / 10`, …) that
/// degenerate or underflow below that.
pub fn example_vertices(default: usize) -> usize {
    std::env::var("SILC_EXAMPLE_VERTICES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(16))
        .unwrap_or(default)
}
