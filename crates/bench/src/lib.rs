//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment in [`experiments`] corresponds to one artifact of the
//! paper's evaluation (see `DESIGN.md` for the full index) and returns
//! structured rows that the `figures` binary prints. The same functions are
//! wrapped by the Criterion benches, so `cargo bench` and
//! `cargo run --bin figures` measure identical code paths.

pub mod experiments;
pub mod stats;
pub mod workloads;

pub use workloads::{StandardWorkload, WorkloadConfig};
