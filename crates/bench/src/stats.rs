//! Small numeric helpers for experiment reporting.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Nearest-rank percentile of an already sorted sample; 0 for an empty
/// slice. The one definition all three bench recorders (`bench_baseline`,
/// `bench_throughput`, `bench_tradeoff`) report with, so the committed
/// `BENCH_*.json` baselines stay mutually comparable.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Sample standard deviation; 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Least-squares slope of `y` against `x` (used for the log-log storage
/// plot, where the paper reports slope ≈ 1.5).
pub fn slope(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2, "need at least two points for a slope");
    let mx = mean(x);
    let my = mean(y);
    let num: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let den: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
    num / den
}

/// Geometric mean; panics on non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn slope_of_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.5, 4.0, 5.5, 7.0];
        assert!((slope(&x, &y) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slope_recovers_power_law_in_log_space() {
        let x: Vec<f64> = [1000.0, 2000.0, 4000.0, 8000.0].iter().map(|n: &f64| n.ln()).collect();
        let y: Vec<f64> =
            [1000.0f64, 2000.0, 4000.0, 8000.0].iter().map(|n| (2.0 * n.powf(1.5)).ln()).collect();
        assert!((slope(&x, &y) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
