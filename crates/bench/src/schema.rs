//! The committed bench records' schemas, and a minimal JSON reader to
//! check them.
//!
//! The recorder binaries (`bench_baseline`, `bench_throughput`,
//! `bench_tradeoff`, `bench_scale`, `bench_latency`) hand-assemble their JSON output (the serde shims are
//! no-op derives), which means nothing ties the **committed**
//! `BENCH_*.json` files to the recorders' current output shape: a PR can
//! change a recorder's fields and silently leave the committed baselines
//! describing a measurement that no longer exists. The `bench_check` binary
//! closes that gap — it validates the committed files (and, when present,
//! the smoke outputs the CI run just produced under `target/`) against the
//! specs in this module, failing loudly on drift.
//!
//! **Keep the specs in lock-step with the recorders:** a field added to or
//! removed from a recorder's JSON must be mirrored here *and* the committed
//! record re-recorded, or CI's `bench-check` step fails.
//!
//! The JSON subset understood here is exactly what the recorders emit:
//! objects, arrays, finite numbers, strings without escapes, `true`/
//! `false`/`null`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key–value pairs in document order (duplicate keys are rejected at
    /// parse time).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document (the subset the recorders emit).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields: Vec<(String, Json)> = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                if fields.iter().any(|(k, _)| *k == key) {
                    return Err(format!("duplicate key {key:?}"));
                }
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' after key {key:?}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let start = *pos;
            while *pos < b.len() && b[*pos] != b'"' {
                if b[*pos] == b'\\' {
                    return Err("string escapes are not part of the recorder subset".into());
                }
                *pos += 1;
            }
            if *pos >= b.len() {
                return Err("unterminated string".into());
            }
            let s = std::str::from_utf8(&b[start..*pos])
                .map_err(|_| "invalid UTF-8 in string".to_string())?
                .to_string();
            *pos += 1;
            Ok(Json::Str(s))
        }
        Some(&c) if c == b'-' || c.is_ascii_digit() => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).unwrap();
            let n: f64 =
                text.parse().map_err(|_| format!("malformed number {text:?} at byte {start}"))?;
            if !n.is_finite() {
                return Err(format!("non-finite number {text:?}"));
            }
            Ok(Json::Num(n))
        }
        _ => {
            for (lit, value) in
                [("true", Json::Bool(true)), ("false", Json::Bool(false)), ("null", Json::Null)]
            {
                if b[*pos..].starts_with(lit.as_bytes()) {
                    *pos += lit.len();
                    return Ok(value);
                }
            }
            Err(format!("unexpected character {:?} at byte {}", b[*pos] as char, pos))
        }
    }
}

/// Expected shape of one JSON value.
#[derive(Debug, Clone, Copy)]
pub enum Shape {
    /// A finite number.
    Num,
    /// A finite number or `null` (optional measurements, e.g. hit rates of
    /// a backend without a cache).
    NumOrNull,
    /// A string.
    Str,
    /// A non-empty array whose elements all match the inner shape.
    Arr(&'static Shape),
    /// An object with **exactly** this key set (order-insensitive), each
    /// value matching its shape. Extra, missing, or renamed keys are drift.
    Obj(&'static [(&'static str, Shape)]),
}

/// Validates `value` against `shape`; the error names the offending path.
pub fn validate(value: &Json, shape: &Shape) -> Result<(), String> {
    validate_at(value, shape, "$")
}

fn validate_at(value: &Json, shape: &Shape, path: &str) -> Result<(), String> {
    match (shape, value) {
        (Shape::Num, Json::Num(_)) => Ok(()),
        (Shape::NumOrNull, Json::Num(_) | Json::Null) => Ok(()),
        (Shape::Str, Json::Str(_)) => Ok(()),
        (Shape::Arr(inner), Json::Arr(items)) => {
            if items.is_empty() {
                return Err(format!("{path}: array is empty"));
            }
            for (i, item) in items.iter().enumerate() {
                validate_at(item, inner, &format!("{path}[{i}]"))?;
            }
            Ok(())
        }
        (Shape::Obj(spec), Json::Obj(fields)) => {
            for (key, inner) in *spec {
                let Some(v) = fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) else {
                    return Err(format!("{path}: missing key {key:?}"));
                };
                validate_at(v, inner, &format!("{path}.{key}"))?;
            }
            for (k, _) in fields {
                if !spec.iter().any(|(key, _)| key == k) {
                    return Err(format!("{path}: unexpected key {k:?} (schema drift?)"));
                }
            }
            Ok(())
        }
        _ => Err(format!("{path}: expected {shape:?}, got {value:?}")),
    }
}

/// Schema of `BENCH_baseline.json` (`bench_baseline` recorder).
pub const BASELINE_SCHEMA: Shape = Shape::Obj(&[
    ("vertices", Shape::Num),
    ("seed", Shape::Num),
    ("grid_exponent", Shape::Num),
    ("edge_factor", Shape::Num),
    ("host_threads", Shape::Num),
    ("build_seconds_serial", Shape::Num),
    ("build_seconds_parallel", Shape::Num),
    ("total_blocks", Shape::Num),
    ("knn_k", Shape::Num),
    ("knn_density", Shape::Num),
    ("knn_queries", Shape::Num),
    ("knn_mean_us", Shape::Num),
    ("knn_p95_us", Shape::Num),
]);

/// Schema of `BENCH_throughput.json` (`bench_throughput` recorder).
pub const THROUGHPUT_SCHEMA: Shape = Shape::Obj(&[
    ("vertices", Shape::Num),
    ("seed", Shape::Num),
    ("grid_exponent", Shape::Num),
    ("cache_fraction", Shape::Num),
    ("knn_k", Shape::Num),
    ("knn_density", Shape::Num),
    ("duration_ms", Shape::Num),
    ("host_threads", Shape::Num),
    (
        "runs",
        Shape::Arr(&Shape::Obj(&[
            ("workers", Shape::Num),
            ("queries", Shape::Num),
            ("qps", Shape::Num),
            ("p50_us", Shape::Num),
            ("p99_us", Shape::Num),
            ("pool_hit_rate", Shape::Num),
            ("entry_cache_hit_rate", Shape::Num),
        ])),
    ),
]);

/// Schema of `BENCH_tradeoff.json` (`bench_tradeoff` recorder).
pub const TRADEOFF_SCHEMA: Shape = Shape::Obj(&[
    ("vertices", Shape::Num),
    ("seed", Shape::Num),
    ("grid_exponent", Shape::Num),
    ("separation", Shape::Num),
    ("cache_fraction", Shape::Num),
    ("queries", Shape::Num),
    ("host_threads", Shape::Num),
    ("pcp_pairs", Shape::Num),
    ("pcp_stretch", Shape::Num),
    ("pcp_build_serial_s", Shape::Num),
    ("pcp_build_parallel_s", Shape::Num),
    ("pcp_build_workers", Shape::Num),
    ("pcp_batch_sssp", Shape::Num),
    ("pcp_batch_settled", Shape::Num),
    ("pcp_refine_sssp", Shape::Num),
    ("pcp_refined_pairs", Shape::Num),
    ("guaranteed_epsilon", Shape::Num),
    ("guaranteed_epsilon_apriori", Shape::Num),
    ("pcp_disk_nocksum_qps", Shape::Num),
    ("checksum_overhead_pct", Shape::Num),
    ("silc_v2_bytes", Shape::Num),
    ("silc_v2_qps", Shape::Num),
    ("silc_v2_decode_s", Shape::Num),
    ("silc_v3_decode_s", Shape::Num),
    ("pcp_v3_bytes", Shape::Num),
    ("pcp_v3_qps", Shape::Num),
    ("pcp_v3_decode_s", Shape::Num),
    ("pcp_v4_decode_s", Shape::Num),
    (
        "backends",
        Shape::Arr(&Shape::Obj(&[
            ("name", Shape::Str),
            ("build_s", Shape::Num),
            ("index_bytes", Shape::Num),
            ("qps", Shape::Num),
            ("p50_us", Shape::Num),
            ("p99_us", Shape::Num),
            ("pool_hit_rate", Shape::NumOrNull),
            ("cache_hit_rate", Shape::NumOrNull),
            ("mean_rel_error", Shape::Num),
            ("max_rel_error", Shape::Num),
        ])),
    ),
]);

/// Schema of `BENCH_scale.json` (`bench_scale` recorder).
pub const SCALE_SCHEMA: Shape = Shape::Obj(&[
    ("seed", Shape::Num),
    ("shard_target", Shape::Num),
    ("grid_exponent", Shape::Num),
    ("cache_fraction", Shape::Num),
    ("knn_k", Shape::Num),
    ("knn_density", Shape::Num),
    ("duration_ms", Shape::Num),
    ("host_threads", Shape::Num),
    ("base_vertices", Shape::Num),
    ("base_build_s", Shape::Num),
    (
        "sizes",
        Shape::Arr(&Shape::Obj(&[
            ("vertices", Shape::Num),
            ("shards", Shape::Num),
            ("cut_edges", Shape::Num),
            ("frontier_vertices", Shape::Num),
            ("fmi_roundtrip_s", Shape::Num),
            ("build_s", Shape::Num),
            ("projected_single_s", Shape::Num),
            ("speedup_vs_projected", Shape::Num),
            ("bytes_total", Shape::Num),
            ("entry_bytes", Shape::Num),
            ("entry_bytes_fixed", Shape::Num),
            ("frontier_bytes", Shape::Num),
            ("shard_build_s", Shape::Num),
            ("frontier_build_s", Shape::Num),
            ("prefetch_hits", Shape::Num),
            ("engine_s", Shape::Num),
            ("queries", Shape::Num),
            ("qps", Shape::Num),
            ("p50_us", Shape::Num),
            ("p99_us", Shape::Num),
            ("complete_fraction", Shape::Num),
            ("shard_bytes", Shape::Arr(&Shape::Num)),
        ])),
    ),
]);

/// Schema of `BENCH_latency.json` (`bench_latency` recorder).
pub const LATENCY_SCHEMA: Shape = Shape::Obj(&[
    ("vertices", Shape::Num),
    ("seed", Shape::Num),
    ("grid_exponent", Shape::Num),
    ("cache_fraction", Shape::Num),
    ("knn_k", Shape::Num),
    ("knn_density", Shape::Num),
    ("batch_size", Shape::Num),
    ("duration_ms", Shape::Num),
    ("host_threads", Shape::Num),
    ("capacity_qps", Shape::Num),
    (
        "runs",
        Shape::Arr(&Shape::Obj(&[
            ("order", Shape::Str),
            ("offered_fraction", Shape::Num),
            ("offered_qps", Shape::Num),
            ("sent", Shape::Num),
            ("answered", Shape::Num),
            ("busy", Shape::Num),
            ("achieved_qps", Shape::Num),
            ("p50_us", Shape::Num),
            ("p99_us", Shape::Num),
            ("p999_us", Shape::Num),
            ("pool_hit_rate", Shape::Num),
            ("entry_cache_hit_rate", Shape::Num),
        ])),
    ),
]);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let v = parse(r#"{"a": 1.5, "b": [1, -2e3, null], "c": "hi", "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_num(), Some(1.5));
        assert_eq!(
            v.get("b"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(-2000.0), Json::Null]))
        );
        assert_eq!(v.get("c"), Some(&Json::Str("hi".into())));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "{\"a\":1}{", "{\"a\":1,\"a\":2}", "nul"] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn validation_names_the_offending_path() {
        const S: Shape = Shape::Obj(&[
            ("x", Shape::Num),
            ("rows", Shape::Arr(&Shape::Obj(&[("y", Shape::Num)]))),
        ]);
        let good = parse(r#"{"x": 1, "rows": [{"y": 2}]}"#).unwrap();
        assert!(validate(&good, &S).is_ok());
        let missing = parse(r#"{"rows": [{"y": 2}]}"#).unwrap();
        assert!(validate(&missing, &S).unwrap_err().contains("missing key \"x\""));
        let extra = parse(r#"{"x": 1, "z": 0, "rows": [{"y": 2}]}"#).unwrap();
        assert!(validate(&extra, &S).unwrap_err().contains("unexpected key \"z\""));
        let nested = parse(r#"{"x": 1, "rows": [{"y": "no"}]}"#).unwrap();
        assert!(validate(&nested, &S).unwrap_err().contains("$.rows[0].y"));
        let empty = parse(r#"{"x": 1, "rows": []}"#).unwrap();
        assert!(validate(&empty, &S).unwrap_err().contains("empty"));
    }

    #[test]
    fn committed_records_match_their_schemas() {
        // The in-repo gate the bench_check binary runs in CI: if this fails,
        // a recorder's schema and the committed record have drifted apart.
        for (file, schema) in [
            ("BENCH_baseline.json", &BASELINE_SCHEMA),
            ("BENCH_throughput.json", &THROUGHPUT_SCHEMA),
            ("BENCH_tradeoff.json", &TRADEOFF_SCHEMA),
            ("BENCH_scale.json", &SCALE_SCHEMA),
            ("BENCH_latency.json", &LATENCY_SCHEMA),
        ] {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../").to_string() + file;
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let value = parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
            validate(&value, schema).unwrap_or_else(|e| panic!("{file}: {e}"));
        }
    }
}
