//! The shared query sweeps behind figures p.33–p.37.
//!
//! One sweep runs all six algorithms (INE, IER, INN, kNN, kNN-I, kNN-M)
//! over the paper's two parameter axes — object density `S` at `k = 10`,
//! and `k` at `S = 0.07·N` — collecting every statistic the five figures
//! report. Running the sweep once and deriving all views keeps the numbers
//! across figures mutually consistent, exactly like the paper's single
//! experiment run.

use crate::experiments::Report;
use crate::stats::mean;
use crate::workloads::StandardWorkload;
use silc_query::{ier, ine, inn, knn, KnnVariant};
use std::collections::BTreeMap;
use std::time::Instant;

/// The six algorithms of the evaluation, in the paper's order.
pub const ALGORITHMS: [&str; 6] = ["INE", "IER", "INN", "KNN-I", "KNN", "KNN-M"];

/// Aggregated per-algorithm measurements at one sweep point.
#[derive(Debug, Clone, Default)]
pub struct AlgoAggregate {
    pub time_ms: Vec<f64>,
    pub refinements: Vec<f64>,
    pub max_queue: Vec<f64>,
    pub kmindist_pruned_pct: Vec<f64>,
    /// `D⁰k / Dk` in percent (kNN-I, kNN-M).
    pub d0k_pct: Vec<f64>,
    /// `KMINDIST / Dk` in percent (kNN-M).
    pub kmindist_pct: Vec<f64>,
    pub pq_ms: Vec<f64>,
}

/// One point of a sweep (one density or one k).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The x value (density or k).
    pub x: f64,
    pub algos: BTreeMap<&'static str, AlgoAggregate>,
}

/// A completed sweep.
#[derive(Debug, Clone)]
pub struct SweepData {
    /// "S" for the density sweep, "k" for the k sweep.
    pub axis: &'static str,
    pub points: Vec<SweepPoint>,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Densities for the S sweep (paper: 0.001 … 0.2 at k = 10).
    pub densities: Vec<f64>,
    /// Neighbor counts for the k sweep (paper: 5 … 300 at S = 0.07N).
    pub ks: Vec<usize>,
    /// k used during the density sweep.
    pub fixed_k: usize,
    /// Density used during the k sweep.
    pub fixed_density: f64,
    /// Random object sets per point (paper: ≥ 50).
    pub trials: u64,
    /// Query vertices per trial.
    pub queries: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            densities: vec![0.001, 0.01, 0.05, 0.1, 0.2],
            ks: vec![5, 10, 50, 100, 300],
            fixed_k: 10,
            fixed_density: 0.07,
            trials: 6,
            queries: 8,
        }
    }
}

/// Runs one (density, k) point, measuring all six algorithms.
fn run_point(
    w: &StandardWorkload,
    density: f64,
    k: usize,
    cfg: &SweepConfig,
) -> BTreeMap<&'static str, AlgoAggregate> {
    let mut agg: BTreeMap<&'static str, AlgoAggregate> =
        ALGORITHMS.iter().map(|&a| (a, AlgoAggregate::default())).collect();
    for trial in 0..cfg.trials {
        let objects = w.objects(density, trial);
        let k = k.min(objects.len());
        if k == 0 {
            continue;
        }
        for &q in &w.queries(cfg.queries, trial) {
            // Baselines.
            let t = Instant::now();
            let r = ine(&w.network, &objects, q, k);
            let a = agg.get_mut("INE").unwrap();
            a.time_ms.push(t.elapsed().as_secs_f64() * 1e3);
            a.max_queue.push(r.stats.max_queue as f64);

            let t = Instant::now();
            let r = ier(&w.network, &objects, q, k);
            let a = agg.get_mut("IER").unwrap();
            a.time_ms.push(t.elapsed().as_secs_f64() * 1e3);
            a.max_queue.push(r.stats.max_queue as f64);

            // SILC: incremental.
            let t = Instant::now();
            let r = inn(&w.index, &objects, q, k);
            let a = agg.get_mut("INN").unwrap();
            a.time_ms.push(t.elapsed().as_secs_f64() * 1e3);
            a.refinements.push(r.stats.refinements as f64);
            a.max_queue.push(r.stats.max_queue as f64);

            // SILC: non-incremental and variants.
            for (name, variant) in [
                ("KNN", KnnVariant::Basic),
                ("KNN-I", KnnVariant::EarlyEstimate),
                ("KNN-M", KnnVariant::MinDist),
            ] {
                let t = Instant::now();
                let r = knn(&w.index, &objects, q, k, variant);
                let elapsed = t.elapsed().as_secs_f64() * 1e3;
                let a = agg.get_mut(name).unwrap();
                a.time_ms.push(elapsed);
                a.refinements.push(r.stats.refinements as f64);
                a.max_queue.push(r.stats.max_queue as f64);
                a.pq_ms.push(r.stats.pq_nanos as f64 / 1e6);
                // Estimate quality is measured against the *true* kth
                // distance, recomputed outside the timed section.
                let true_dk = r
                    .neighbors
                    .iter()
                    .map(|n| {
                        silc::path::network_distance(&w.index, q, n.vertex)
                            .expect("index covers network")
                    })
                    .fold(0.0, f64::max);
                if true_dk > 0.0 {
                    if let Some(d0k) = r.stats.d0k {
                        a.d0k_pct.push(100.0 * d0k / true_dk);
                    }
                    if let Some(km) = r.stats.kmindist_final {
                        a.kmindist_pct.push(100.0 * km / true_dk);
                    }
                }
                if variant == KnnVariant::MinDist {
                    a.kmindist_pruned_pct.push(100.0 * r.stats.kmindist_pruned as f64 / k as f64);
                }
            }
        }
    }
    agg
}

/// The density sweep (k fixed at `cfg.fixed_k`).
pub fn sweep_density(w: &StandardWorkload, cfg: &SweepConfig) -> SweepData {
    SweepData {
        axis: "S",
        points: cfg
            .densities
            .iter()
            .map(|&d| SweepPoint { x: d, algos: run_point(w, d, cfg.fixed_k, cfg) })
            .collect(),
    }
}

/// The k sweep (density fixed at `cfg.fixed_density`).
pub fn sweep_k(w: &StandardWorkload, cfg: &SweepConfig) -> SweepData {
    SweepData {
        axis: "k",
        points: cfg
            .ks
            .iter()
            .map(|&k| SweepPoint { x: k as f64, algos: run_point(w, cfg.fixed_density, k, cfg) })
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Figure views
// ---------------------------------------------------------------------

fn axis_header(data: &SweepData) -> String {
    format!("{:>10}", data.axis)
}

/// Figure p.33: execution time of all six algorithms.
pub fn view_exec_time(data: &SweepData, which: &str) -> Report {
    let mut r =
        Report::new(format!("Figure p.33{which}: execution time (ms), {} sweep", data.axis));
    r.line(format!(
        "{}{}",
        axis_header(data),
        ALGORITHMS.iter().map(|a| format!("{a:>10}")).collect::<String>()
    ));
    for p in &data.points {
        let cells: String =
            ALGORITHMS.iter().map(|a| format!("{:>10.3}", mean(&p.algos[a].time_ms))).collect();
        r.line(format!("{:>10}{}", p.x, cells));
    }
    r.line("paper shape: kNN & variants ≥ 1 order of magnitude faster than INE/IER at".to_string());
    r.line("small k / moderate S; IER slowest; INE catches up as S or k grows".to_string());
    r
}

/// Figure p.34: max priority-queue size of kNN variants as % of INN.
pub fn view_queue_size(data: &SweepData) -> Report {
    let mut r =
        Report::new(format!("Figure p.34: max queue size as % of INN, {} sweep", data.axis));
    let algos = ["KNN-I", "KNN", "KNN-M"];
    r.line(format!(
        "{}{}",
        axis_header(data),
        algos.iter().map(|a| format!("{a:>10}")).collect::<String>()
    ));
    for p in &data.points {
        let base = mean(&p.algos["INN"].max_queue).max(1e-12);
        let cells: String = algos
            .iter()
            .map(|a| format!("{:>10.1}", 100.0 * mean(&p.algos[*a].max_queue) / base))
            .collect();
        r.line(format!("{:>10}{}", p.x, cells));
    }
    r.line("paper shape: ≈ 35% of INN on average; savings shrink as k grows".to_string());
    r
}

/// Figure p.35: refinement operations as % of INN.
pub fn view_refinements(data: &SweepData) -> Report {
    let mut r =
        Report::new(format!("Figure p.35: refinement operations as % of INN, {} sweep", data.axis));
    let algos = ["KNN", "KNN-I", "KNN-M"];
    r.line(format!(
        "{}{}",
        axis_header(data),
        algos.iter().map(|a| format!("{a:>10}")).collect::<String>()
    ));
    for p in &data.points {
        let base = mean(&p.algos["INN"].refinements).max(1e-12);
        let cells: String = algos
            .iter()
            .map(|a| format!("{:>10.1}", 100.0 * mean(&p.algos[*a].refinements) / base))
            .collect();
        r.line(format!("{:>10}{}", p.x, cells));
    }
    r.line("paper shape: kNN-M saves ≥ 30% of kNN's refinements (ordering cost)".to_string());
    r
}

/// Figure p.36: % of the k neighbors confirmed directly against KMINDIST.
pub fn view_kmindist_pruning(data: &SweepData) -> Report {
    let mut r = Report::new(format!(
        "Figure p.36: neighbors pruned against KMINDIST (kNN-M), {} sweep",
        data.axis
    ));
    r.line(format!("{}{:>12}", axis_header(data), "% pruned"));
    for p in &data.points {
        r.line(format!("{:>10}{:>12.1}", p.x, mean(&p.algos["KNN-M"].kmindist_pruned_pct)));
    }
    r.line("paper shape: up to 80–90% of neighbors added without further refinement".to_string());
    r
}

/// Figure p.37: quality of the D⁰k and KMINDIST estimates relative to Dk.
pub fn view_estimate_quality(data: &SweepData) -> Report {
    let mut r =
        Report::new(format!("Figure p.37: estimate quality (% of true Dk), {} sweep", data.axis));
    r.line(format!("{}{:>12}{:>12}", axis_header(data), "D0k %", "KMINDIST %"));
    for p in &data.points {
        r.line(format!(
            "{:>10}{:>12.1}{:>12.1}",
            p.x,
            mean(&p.algos["KNN-I"].d0k_pct),
            mean(&p.algos["KNN-M"].kmindist_pct),
        ));
    }
    r.line("paper shape: D0k ≈ 120% of Dk; KMINDIST ≈ 90% of Dk".to_string());
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadConfig;

    fn tiny_sweep() -> (StandardWorkload, SweepData) {
        let w = StandardWorkload::build(WorkloadConfig { vertices: 250, ..Default::default() });
        let cfg = SweepConfig {
            densities: vec![0.05, 0.2],
            ks: vec![3],
            fixed_k: 3,
            fixed_density: 0.1,
            trials: 2,
            queries: 3,
        };
        let data = sweep_density(&w, &cfg);
        (w, data)
    }

    #[test]
    fn sweep_collects_all_algorithms() {
        let (_, data) = tiny_sweep();
        assert_eq!(data.points.len(), 2);
        for p in &data.points {
            for a in ALGORITHMS {
                let agg = &p.algos[a];
                assert_eq!(agg.time_ms.len(), 6, "algorithm {a} missing runs");
            }
            // SILC variants collect refinement stats; baselines don't.
            assert!(!p.algos["KNN"].refinements.is_empty());
            assert!(p.algos["INE"].refinements.is_empty());
            assert!(!p.algos["KNN-M"].kmindist_pruned_pct.is_empty());
        }
    }

    #[test]
    fn views_render_every_point() {
        let (w, data) = tiny_sweep();
        let cfg = SweepConfig {
            ks: vec![2, 4],
            fixed_density: 0.1,
            trials: 1,
            queries: 2,
            ..Default::default()
        };
        let kdata = sweep_k(&w, &cfg);
        for report in [
            view_exec_time(&data, "a"),
            view_exec_time(&kdata, "b"),
            view_queue_size(&data),
            view_refinements(&data),
            view_kmindist_pruning(&data),
            view_estimate_quality(&data),
        ] {
            // Header + one line per point + ≥1 note.
            assert!(report.lines.len() >= 3, "report {} too short", report.title);
        }
    }
}
