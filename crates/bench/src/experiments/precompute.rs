//! Precomputation-side experiments: the trade-off table (p.11), the
//! Dijkstra visit-count anecdote (pp.3/7), and the storage-scaling plot
//! (p.16).

use crate::experiments::Report;
use crate::stats::{mean, slope};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silc::{index, BuildConfig, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::{dijkstra, SpatialNetwork, SsspWorkspace, VertexId};
use silc_pcp::DistanceOracle;
use std::sync::Arc;
use std::time::Instant;

/// Explicit all-pairs path storage: `O(n³)` space, `O(1)` query.
struct ExplicitPaths {
    /// `paths[s][d]` = full vertex sequence of the shortest path.
    paths: Vec<Vec<Vec<u32>>>,
    dist: Vec<Vec<f64>>,
}

impl ExplicitPaths {
    fn build(g: &SpatialNetwork) -> Self {
        let n = g.vertex_count();
        let mut paths = Vec::with_capacity(n);
        let mut dist = Vec::with_capacity(n);
        // One SSSP workspace serves all n sources; only the stored rows
        // (the measured artifact itself) are allocated per source.
        let mut ws = SsspWorkspace::with_capacity(n);
        for s in g.vertices() {
            let run = dijkstra::full_sssp_into(g, s, &mut ws);
            let row: Vec<Vec<u32>> = g
                .vertices()
                .map(|d| {
                    run.path_to(d).map(|p| p.iter().map(|v| v.0).collect()).unwrap_or_default()
                })
                .collect();
            paths.push(row);
            dist.push(run.dist_slice().to_vec());
        }
        ExplicitPaths { paths, dist }
    }

    fn bytes(&self) -> usize {
        self.paths.iter().flat_map(|row| row.iter()).map(|p| p.len() * 4).sum::<usize>()
            + self.dist.len() * self.dist.len() * 8
    }
}

/// Next-hop matrix: `O(n²)` space, `O(k)` path query, `O(1)` distance.
struct NextHopMatrix {
    n: usize,
    next: Vec<u32>,
    dist: Vec<f64>,
}

impl NextHopMatrix {
    fn build(g: &SpatialNetwork) -> Self {
        let n = g.vertex_count();
        let mut next = vec![u32::MAX; n * n];
        let mut dist = vec![f64::INFINITY; n * n];
        let mut ws = SsspWorkspace::with_capacity(n);
        for s in g.vertices() {
            let run = dijkstra::full_sssp_into(g, s, &mut ws);
            dist[s.index() * n..(s.index() + 1) * n].copy_from_slice(run.dist_slice());
            for d in g.vertices() {
                if d != s && run.first_hop(d) != dijkstra::NO_HOP {
                    let (hop, _) = g.out_edge(s, run.first_hop(d) as usize);
                    next[s.index() * n + d.index()] = hop.0;
                }
            }
        }
        NextHopMatrix { n, next, dist }
    }

    fn bytes(&self) -> usize {
        self.next.len() * 4 + self.dist.len() * 8
    }

    fn path(&self, s: VertexId, d: VertexId) -> Vec<u32> {
        let mut out = vec![s.0];
        let mut cur = s.0;
        while cur != d.0 {
            cur = self.next[cur as usize * self.n + d.index()];
            out.push(cur);
        }
        out
    }
}

/// Table p.11: space / path-query / distance-query trade-offs, measured.
pub fn table1(vertices: usize, seed: u64) -> Report {
    let g = Arc::new(road_network(&RoadConfig { vertices, seed, ..Default::default() }));
    let n = g.vertex_count();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let pairs: Vec<(VertexId, VertexId)> = (0..100)
        .map(|_| (VertexId(rng.gen_range(0..n as u32)), VertexId(rng.gen_range(0..n as u32))))
        .collect();

    let mut r = Report::new(format!(
        "Table p.11: precomputation trade-offs, measured on n = {n} (m = {})",
        g.edge_count()
    ));
    r.line(format!(
        "{:<22}{:>14}{:>16}{:>18}",
        "approach", "space (bytes)", "path query (µs)", "distance q (µs)"
    ));

    // Explicit path storage.
    let explicit = ExplicitPaths::build(&g);
    let t = Instant::now();
    let mut sink = 0usize;
    for &(s, d) in &pairs {
        sink += explicit.paths[s.index()][d.index()].len();
    }
    let path_us = t.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;
    let t = Instant::now();
    let mut dsink = 0.0;
    for &(s, d) in &pairs {
        dsink += explicit.dist[s.index()][d.index()];
    }
    let dist_us = t.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;
    r.line(format!(
        "{:<22}{:>14}{:>16.3}{:>18.3}",
        "explicit paths O(n^3)",
        explicit.bytes(),
        path_us,
        dist_us
    ));

    // Next-hop matrix.
    let matrix = NextHopMatrix::build(&g);
    let t = Instant::now();
    for &(s, d) in &pairs {
        sink += matrix.path(s, d).len();
    }
    let path_us = t.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;
    let t = Instant::now();
    for &(s, d) in &pairs {
        dsink += matrix.dist[s.index() * n + d.index()];
    }
    let dist_us = t.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;
    r.line(format!(
        "{:<22}{:>14}{:>16.3}{:>18.3}",
        "next-hop O(n^2)",
        matrix.bytes(),
        path_us,
        dist_us
    ));

    // Dijkstra from scratch.
    let t = Instant::now();
    for &(s, d) in &pairs {
        sink += dijkstra::point_to_point(&g, s, d).map(|p| p.path.len()).unwrap_or(0);
    }
    let path_us = t.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;
    r.line(format!("{:<22}{:>14}{:>16.3}{:>18.3}", "Dijkstra O(m+n)", 0, path_us, path_us));

    // SILC.
    let idx =
        SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 10, threads: 0 }).expect("build");
    // The actual current-format (compressed) disk image, not an arithmetic
    // projection — the delta+varint entry coding makes record-width math lie.
    let silc_bytes = silc::disk::encode_index(&idx).len();
    let t = Instant::now();
    for &(s, d) in &pairs {
        sink += silc::path::shortest_path(&idx, s, d).unwrap().path.len();
    }
    let path_us = t.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;
    let t = Instant::now();
    for &(s, d) in &pairs {
        let mut rd = silc::refine::RefinableDistance::new(&idx, s, d);
        dsink += rd.refine_until_exact(&idx);
    }
    let dist_us = t.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;
    r.line(format!("{:<22}{:>14}{:>16.3}{:>18.3}", "SILC O(n^1.5)", silc_bytes, path_us, dist_us));

    // WSPD distance oracles at two separations (ε-approximate distances).
    for s_factor in [4.0, 8.0] {
        let oracle = DistanceOracle::build(&g, 10, s_factor);
        let bytes = silc_pcp::encode_oracle(&oracle).len();
        let t = Instant::now();
        for &(s, d) in &pairs {
            dsink += oracle.distance(s, d);
        }
        let dist_us = t.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;
        r.line(format!(
            "{:<22}{:>14}{:>16}{:>18.3}",
            format!("oracle s={s_factor} (ε≈{:.2})", oracle.epsilon()),
            bytes,
            "-",
            dist_us
        ));
    }
    r.line(format!(
        "(sink: {sink} {dsink:.0} — prevents dead-code elimination of the measured loops)"
    ));
    r.line("paper shape: explicit ≫ next-hop ≫ SILC storage; SILC path/distance".to_string());
    r.line("queries stay microseconds while Dijkstra pays per-query graph search".to_string());
    r
}

/// The pp.3/7 anecdote: Dijkstra settles most of the network; SILC touches
/// only the path.
pub fn dijkstra_visits(vertices: usize, seed: u64) -> Report {
    let g = Arc::new(road_network(&RoadConfig { vertices, seed, ..Default::default() }));
    let idx =
        SilcIndex::build(g.clone(), &BuildConfig { grid_exponent: 11, threads: 0 }).expect("build");
    let mut r = Report::new(format!(
        "Figure pp.3/7: vertices visited, Dijkstra vs SILC (n = {})",
        g.vertex_count()
    ));
    r.line(format!("{:>8}{:>8}{:>12}{:>14}{:>12}", "s", "d", "path edges", "dijkstra", "silc"));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ratios = Vec::new();
    for _ in 0..8 {
        let s = VertexId(rng.gen_range(0..g.vertex_count() as u32));
        // Pick the Euclidean-farthest vertex as destination for long paths.
        let d =
            g.vertices().max_by(|a, b| g.euclidean(s, *a).total_cmp(&g.euclidean(s, *b))).unwrap();
        let dij = dijkstra::point_to_point(&g, s, d).unwrap();
        let silc_path = silc::path::shortest_path(&idx, s, d).unwrap();
        assert!((silc_path.distance - dij.distance).abs() < 1e-6);
        r.line(format!(
            "{:>8}{:>8}{:>12}{:>14}{:>12}",
            s.0,
            d.0,
            silc_path.edge_count(),
            dij.visited,
            silc_path.path.len()
        ));
        ratios.push(dij.visited as f64 / g.vertex_count() as f64);
    }
    r.line(format!(
        "Dijkstra settles {:.0}% of the network on average; SILC touches only the path",
        100.0 * mean(&ratios)
    ));
    r.line("paper anecdote: 3191 of 4233 vertices settled for a 76-edge path".to_string());
    r
}

/// Figure p.16: total Morton blocks vs network size; log-log slope ≈ 1.5.
pub fn storage_scaling(sizes: &[usize], grid_exponent: u32, seed: u64) -> Report {
    let mut r = Report::new("Figure p.16: SILC storage scaling (Morton blocks vs vertices)");
    r.line(format!("{:>10}{:>14}{:>14}{:>12}", "n", "blocks m", "blocks/n", "secs"));
    let mut log_n = Vec::new();
    let mut log_m = Vec::new();
    for &n in sizes {
        let g = road_network(&RoadConfig { vertices: n, seed, ..Default::default() });
        let t = Instant::now();
        let blocks = index::count_total_blocks(&g, grid_exponent, 0).expect("count");
        let secs = t.elapsed().as_secs_f64();
        r.line(format!("{:>10}{:>14}{:>14.1}{:>12.2}", n, blocks, blocks as f64 / n as f64, secs));
        log_n.push((n as f64).ln());
        log_m.push((blocks as f64).ln());
    }
    let fitted = slope(&log_n, &log_m);
    r.line(format!("log-log slope = {fitted:.3}   (paper: ≈ 1.5, i.e. m = O(n√n))"));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_runs_on_tiny_network() {
        let r = table1(120, 7);
        assert!(r.lines.len() >= 7);
        // Every approach reports a row.
        let text = r.lines.join("\n");
        for name in ["explicit", "next-hop", "Dijkstra", "SILC", "oracle"] {
            assert!(text.contains(name), "missing row for {name}");
        }
    }

    #[test]
    fn next_hop_matrix_paths_match_dijkstra() {
        let g = road_network(&RoadConfig { vertices: 60, seed: 5, ..Default::default() });
        let m = NextHopMatrix::build(&g);
        for &(s, d) in &[(0u32, 59u32), (10, 20)] {
            let p = m.path(VertexId(s), VertexId(d));
            let truth = dijkstra::point_to_point(&g, VertexId(s), VertexId(d)).unwrap();
            let total: f64 =
                p.windows(2).map(|w| g.edge_weight(VertexId(w[0]), VertexId(w[1])).unwrap()).sum();
            assert!((total - truth.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn dijkstra_visits_report() {
        let r = dijkstra_visits(300, 3);
        assert!(r.lines.len() >= 10);
    }

    #[test]
    fn storage_scaling_slope_is_sane() {
        let r = storage_scaling(&[200, 400, 800], 10, 11);
        let slope_line = r.lines.iter().find(|l| l.contains("slope")).unwrap();
        // Extract the fitted slope and sanity-check the range; small
        // networks sit slightly above the asymptotic 1.5.
        let value: f64 = slope_line
            .split('=')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(value > 0.9 && value < 2.0, "slope {value} out of plausible range");
    }
}
