//! One module per paper artifact. See DESIGN.md for the experiment index.

pub mod ablation;
pub mod io_time;
pub mod pcp;
pub mod precompute;
pub mod sweep;

/// A printable experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Which paper artifact this reproduces (e.g. "Figure p.33a").
    pub title: String,
    /// Pre-formatted lines (tables, notes).
    pub lines: Vec<String>,
}

impl Report {
    pub fn new(title: impl Into<String>) -> Self {
        Report { title: title.into(), lines: Vec::new() }
    }

    pub fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Renders the report to stdout.
    pub fn print(&self) {
        println!("\n================================================================");
        println!("{}", self.title);
        println!("================================================================");
        for l in &self.lines {
            println!("{l}");
        }
    }
}
