//! Figure p.38: total execution time vs I/O time of the SILC algorithms
//! against the disk-resident index (LRU cache = 5 % of pages).

use crate::experiments::Report;
use crate::stats::mean;
use crate::workloads::StandardWorkload;
use silc::{disk, DiskSilcIndex};
use silc_network::paged::{write_paged, PagedNetwork};
use silc_query::{ier_disk, ine_disk, inn, knn, KnnVariant};
use std::collections::BTreeMap;
use std::time::Instant;

const ALGOS: [&str; 6] = ["INE", "IER", "INN", "KNN", "KNN-I", "KNN-M"];

#[derive(Debug, Default, Clone)]
struct Point {
    total_ms: BTreeMap<&'static str, Vec<f64>>,
    io_ms: BTreeMap<&'static str, Vec<f64>>,
    pq_ms: BTreeMap<&'static str, Vec<f64>>,
}

/// Runs the disk-resident sweep; `xs` are either densities (axis "S") or
/// k values (axis "k").
#[allow(clippy::too_many_arguments)] // experiment parameterization mirrors the paper's knobs
pub fn io_sweep(
    w: &StandardWorkload,
    axis: &'static str,
    xs: &[f64],
    fixed_k: usize,
    fixed_density: f64,
    trials: u64,
    queries: usize,
    cache_fraction: f64,
) -> Report {
    // Serialize the index and the network into real page files: SILC reads
    // quadtree pages, the baselines read network-adjacency pages, both
    // through LRU pools of the same relative size.
    let dir = std::env::temp_dir().join("silc-bench-io");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("io-{}-{}.idx", w.config.vertices, w.config.seed));
    disk::write_index(&w.index, &path).expect("serialize index");
    let disk_index =
        DiskSilcIndex::open(&path, w.network.clone(), cache_fraction).expect("open index");
    let net_path = dir.join(format!("io-{}-{}.pnet", w.config.vertices, w.config.seed));
    write_paged(&w.network, &net_path).expect("serialize network");
    let paged_net = PagedNetwork::open(&net_path, cache_fraction).expect("open paged network");
    let min_ratio = w.network.min_weight_ratio();

    let mut points: Vec<(f64, Point)> = Vec::new();
    for &x in xs {
        let (density, k) = match axis {
            "S" => (x, fixed_k),
            _ => (fixed_density, x as usize),
        };
        let mut point = Point::default();
        for trial in 0..trials {
            let objects = w.objects(density, trial);
            let k = k.min(objects.len());
            if k == 0 {
                continue;
            }
            for &q in &w.queries(queries, trial) {
                for name in ALGOS {
                    // Cold caches per (query, algorithm) repetition so every
                    // algorithm faces the same disk state.
                    disk_index.clear_cache();
                    disk_index.reset_io_stats();
                    paged_net.clear_cache();
                    paged_net.reset_io_stats();
                    let t = Instant::now();
                    let stats = match name {
                        "INE" => ine_disk(&paged_net, &objects, q, k).stats,
                        "IER" => ier_disk(&paged_net, &objects, q, k, min_ratio).stats,
                        "INN" => inn(&disk_index, &objects, q, k).stats,
                        "KNN" => knn(&disk_index, &objects, q, k, KnnVariant::Basic).stats,
                        "KNN-I" => {
                            knn(&disk_index, &objects, q, k, KnnVariant::EarlyEstimate).stats
                        }
                        _ => knn(&disk_index, &objects, q, k, KnnVariant::MinDist).stats,
                    };
                    let total = t.elapsed().as_secs_f64() * 1e3;
                    let io = (disk_index.io_stats().read_seconds()
                        + paged_net.io_stats().read_seconds())
                        * 1e3;
                    point.total_ms.entry(name).or_default().push(total);
                    point.io_ms.entry(name).or_default().push(io);
                    point.pq_ms.entry(name).or_default().push(stats.pq_nanos as f64 / 1e6);
                }
            }
        }
        points.push((x, point));
    }

    let mut r = Report::new(format!(
        "Figure p.38: total vs I/O time (ms), disk-resident index, {axis} sweep, cache = {:.0}% of {} pages",
        cache_fraction * 100.0,
        disk_index.page_count()
    ));
    let header: String = ALGOS
        .iter()
        .flat_map(|a| [format!("{a:>10}"), format!("{:>10}", format!("{a}-io"))])
        .collect();
    r.line(format!("{:>10}{}{:>10}", axis, header, "KNN-pq"));
    for (x, p) in &points {
        let mut cells = String::new();
        for a in ALGOS {
            cells.push_str(&format!(
                "{:>10.3}{:>10.3}",
                mean(p.total_ms.get(a).map(Vec::as_slice).unwrap_or(&[])),
                mean(p.io_ms.get(a).map(Vec::as_slice).unwrap_or(&[])),
            ));
        }
        cells.push_str(&format!(
            "{:>10.4}",
            mean(p.pq_ms.get("KNN").map(Vec::as_slice).unwrap_or(&[]))
        ));
        r.line(format!("{x:>10}{cells}"));
    }
    r.line("paper shape: disk-resident INE/IER pay network-page I/O per expansion and".to_string());
    r.line(
        "fall behind SILC; I/O dominates; kNN best at small k; for k > 20 kNN-I/INN".to_string(),
    );
    r.line("win as L & Dk maintenance (KNN-pq) grows".to_string());
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&net_path).ok();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadConfig;

    #[test]
    fn io_sweep_reports_nonzero_io() {
        let w = StandardWorkload::build(WorkloadConfig { vertices: 250, ..Default::default() });
        let r = io_sweep(&w, "S", &[0.1], 3, 0.1, 1, 2, 0.05);
        assert!(r.lines.len() >= 2);
        // The data row must contain strictly positive totals.
        let row = &r.lines[1];
        assert!(row.split_whitespace().skip(1).all(|c| c.parse::<f64>().unwrap() >= 0.0));
    }
}
