//! Extension X1 (paper pp.28–29): the PCP / well-separated-pair distance
//! oracle — size and accuracy as the separation factor grows.

use crate::experiments::Report;
use crate::stats::mean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::{dijkstra, VertexId};
use silc_pcp::DistanceOracle;
use std::time::Instant;

/// Builds oracles for each separation factor and reports size, build time,
/// query latency, and observed relative error against Dijkstra ground
/// truth.
pub fn pcp_tradeoff(vertices: usize, separations: &[f64], seed: u64) -> Report {
    let g = road_network(&RoadConfig { vertices, seed, ..Default::default() });
    let n = g.vertex_count() as u32;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
    let sample: Vec<(VertexId, VertexId)> = (0..80)
        .map(|_| (VertexId(rng.gen_range(0..n)), VertexId(rng.gen_range(0..n))))
        .filter(|(a, b)| a != b)
        .collect();
    let truths: Vec<f64> =
        sample.iter().map(|&(a, b)| dijkstra::distance(&g, a, b).expect("connected")).collect();

    let mut r = Report::new(format!(
        "Extension X1 (pp.28–29): PCP distance oracle trade-off, n = {vertices}"
    ));
    r.line(format!(
        "{:>6}{:>10}{:>12}{:>12}{:>14}{:>14}",
        "s", "pairs", "build s", "query µs", "mean err %", "max err %"
    ));
    for &s in separations {
        let t = Instant::now();
        let oracle = DistanceOracle::build(&g, 10, s);
        let build = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let mut errors = Vec::with_capacity(sample.len());
        for (&(a, b), &truth) in sample.iter().zip(&truths) {
            let approx = oracle.distance(a, b);
            errors.push(100.0 * (approx - truth).abs() / truth.max(1e-12));
        }
        let query_us = t.elapsed().as_secs_f64() * 1e6 / sample.len() as f64;
        let max_err = errors.iter().copied().fold(0.0f64, f64::max);
        r.line(format!(
            "{:>6}{:>10}{:>12.2}{:>12.3}{:>14.2}{:>14.2}",
            s,
            oracle.pair_count(),
            build,
            query_us,
            mean(&errors),
            max_err
        ));
    }
    r.line("pairs grow O(s²n) while error falls ∝ 1/s — the ε-approximate".to_string());
    r.line("distance-oracle rows of table p.11".to_string());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tradeoff_report_has_a_row_per_separation() {
        let r = pcp_tradeoff(120, &[2.0, 4.0], 5);
        assert_eq!(r.lines.len(), 1 + 2 + 2);
    }
}
