//! Ablations of the design choices the paper motivates.
//!
//! * **A1 (MBR storage)** — paper p.13: storing the shortest-path map as
//!   per-color minimum bounding rectangles (Wagner & Willhalm) leaves
//!   lookups ambiguous; the disjoint quadtree never is.
//! * **A2 (per-block λ bounds)** — the quadtree stores `[λ−, λ+]` per
//!   block; replacing the regional λ− bound by the global
//!   weight/Euclidean ratio shows how much pruning power the per-block
//!   bounds buy during kNN search.

use crate::experiments::Report;
use crate::stats::mean;
use crate::workloads::StandardWorkload;
use silc::sp_quadtree::CellRect;
use silc::spmap::ShortestPathMap;
use silc::{mbr_baseline::ColorMbrIndex, BlockEntry, DistanceBrowser};
use silc_geom::GridMapper;
use silc_morton::MortonCode;
use silc_network::{SpatialNetwork, VertexId};
use silc_query::{knn, KnnVariant};
use std::time::Instant;

/// A1: ambiguity of MBR-based next-hop lookup vs the quadtree.
pub fn ablation_mbr(w: &StandardWorkload, sources: usize) -> Report {
    let g = &w.network;
    let mut r = Report::new("Ablation A1 (paper p.13): MBR storage vs shortest-path quadtree");
    let mut ambiguity = Vec::new();
    let mut candidates = Vec::new();
    let step = (g.vertex_count() / sources.max(1)).max(1);
    for s in (0..g.vertex_count()).step_by(step) {
        let source = VertexId(s as u32);
        let map = ShortestPathMap::compute(g, source).expect("connected network");
        let mbr = ColorMbrIndex::build(&map, g.positions());
        ambiguity.push(100.0 * mbr.ambiguity_rate(g.positions()));
        let mean_candidates = g.positions().iter().map(|p| mbr.lookup(p).len() as f64).sum::<f64>()
            / g.vertex_count() as f64;
        candidates.push(mean_candidates);
    }
    r.line(format!("{:>28}{:>16}{:>16}", "storage", "% ambiguous", "candidates"));
    r.line(format!(
        "{:>28}{:>16.1}{:>16.2}",
        "per-color MBRs",
        mean(&ambiguity),
        mean(&candidates)
    ));
    r.line(format!("{:>28}{:>16.1}{:>16.2}", "shortest-path quadtree", 0.0, 1.0));
    r.line("the quadtree's disjoint blocks always identify the next hop uniquely;".to_string());
    r.line("ambiguous MBR lookups are why the paper rejects bounding boxes".to_string());
    r
}

/// A wrapper index whose regional λ− bound is degraded to the global
/// weight/Euclidean ratio. Object intervals stay sharp; only block
/// (region) lower bounds lose the per-block λ.
struct GlobalRatioOnly<'a, B: DistanceBrowser>(&'a B);

impl<B: DistanceBrowser> DistanceBrowser for GlobalRatioOnly<'_, B> {
    fn network(&self) -> &SpatialNetwork {
        self.0.network()
    }
    fn mapper(&self) -> &GridMapper {
        self.0.mapper()
    }
    fn vertex_code(&self, v: VertexId) -> MortonCode {
        self.0.vertex_code(v)
    }
    fn entry(&self, u: VertexId, code: MortonCode) -> Option<BlockEntry> {
        self.0.entry(u, code)
    }
    fn min_lambda(&self, _u: VertexId, _rect: &CellRect) -> Option<f64> {
        None // always fall back to the global ratio
    }
    fn global_min_ratio(&self) -> f64 {
        self.0.global_min_ratio()
    }
}

/// A2: value of the per-block λ− region bounds during kNN.
pub fn ablation_lambda(
    w: &StandardWorkload,
    density: f64,
    k: usize,
    trials: u64,
    queries: usize,
) -> Report {
    let mut r = Report::new("Ablation A2: per-block λ− region bounds vs global-ratio bounds (kNN)");
    let degraded = GlobalRatioOnly(&w.index);
    let mut sharp_t = Vec::new();
    let mut degr_t = Vec::new();
    let mut sharp_q = Vec::new();
    let mut degr_q = Vec::new();
    let mut sharp_ref = Vec::new();
    let mut degr_ref = Vec::new();
    for trial in 0..trials {
        let objects = w.objects(density, trial);
        let k = k.min(objects.len());
        for &q in &w.queries(queries, trial) {
            let t = Instant::now();
            let a = knn(&w.index, &objects, q, k, KnnVariant::Basic);
            sharp_t.push(t.elapsed().as_secs_f64() * 1e3);
            sharp_q.push(a.stats.max_queue as f64);
            sharp_ref.push(a.stats.refinements as f64);

            let t = Instant::now();
            let b = knn(&degraded, &objects, q, k, KnnVariant::Basic);
            degr_t.push(t.elapsed().as_secs_f64() * 1e3);
            degr_q.push(b.stats.max_queue as f64);
            degr_ref.push(b.stats.refinements as f64);

            assert_eq!(a.object_ids(), b.object_ids(), "ablation changed the answer");
        }
    }
    r.line(format!(
        "{:>28}{:>12}{:>12}{:>14}",
        "region bound", "time ms", "max |Q|", "refinements"
    ));
    r.line(format!(
        "{:>28}{:>12.3}{:>12.1}{:>14.1}",
        "per-block λ−",
        mean(&sharp_t),
        mean(&sharp_q),
        mean(&sharp_ref)
    ));
    r.line(format!(
        "{:>28}{:>12.3}{:>12.1}{:>14.1}",
        "global ratio only",
        mean(&degr_t),
        mean(&degr_q),
        mean(&degr_ref)
    ));
    r.line(
        "identical answers; per-block bounds shrink the queue, though the λ-descent".to_string(),
    );
    r.line("cost can outweigh the savings on CPU-resident runs of this size — the win".to_string());
    r.line("is in avoided block expansions, which matter when blocks live on disk".to_string());
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadConfig;

    #[test]
    fn mbr_ablation_shows_ambiguity() {
        let w = StandardWorkload::build(WorkloadConfig { vertices: 200, ..Default::default() });
        let r = ablation_mbr(&w, 10);
        let mbr_row = r.lines.iter().find(|l| l.contains("per-color MBRs")).unwrap();
        let ambiguous: f64 = mbr_row.split_whitespace().nth(2).unwrap().parse().unwrap_or(0.0);
        assert!(ambiguous > 0.0, "MBR storage should be ambiguous somewhere");
    }

    #[test]
    fn lambda_ablation_preserves_answers() {
        let w = StandardWorkload::build(WorkloadConfig { vertices: 200, ..Default::default() });
        // The assert inside the experiment is the test.
        let r = ablation_lambda(&w, 0.1, 3, 2, 3);
        assert!(r.lines.len() >= 4);
    }
}
