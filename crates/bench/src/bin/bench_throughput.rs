//! Closed-loop multi-threaded query throughput over one shared disk index.
//!
//! The serving scenario the session layer exists for: W worker threads,
//! each holding one `QuerySession`, hammer a single `Arc<DiskSilcIndex>`
//! (sharded buffer pool + decoded-entries cache) with back-to-back kNN
//! queries for a fixed wall-clock window. Reported per worker count:
//! aggregate QPS, per-query p50/p99 latency, and the hit rates of both
//! cache layers — the numbers that tell you whether the pool scales.
//!
//! ```text
//! cargo run -p silc-bench --release --bin bench_throughput -- [FLAGS]
//!
//! FLAGS
//!   --vertices N      road-network size                 (default 2000)
//!   --seed S          master RNG seed                   (default 2008)
//!   --workers W       max worker count; runs 1 and W    (default 4)
//!   --duration-ms D   measured window per worker count  (default 2000)
//!   --out PATH        output file                       (default BENCH_throughput.json)
//!   --smoke           CI smoke mode: 300 vertices, 2 workers, 150 ms,
//!                     write to target/ — only checks the pipeline runs
//! ```
//!
//! Workload constants match `bench_baseline`: kNN (Basic), `k = 10`,
//! object density 0.07, cache fraction 0.05 (the paper's 5 %).

use silc::disk::{write_index, DiskSilcIndex};
use silc::{BuildConfig, DistanceBrowser, SilcIndex};
use silc_bench::stats::percentile;
use silc_network::generate::{road_network, RoadConfig};
use silc_network::VertexId;
use silc_query::{KnnVariant, ObjectSet, QueryEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    vertices: usize,
    seed: u64,
    workers: usize,
    duration_ms: u64,
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        vertices: 2000,
        seed: 2008,
        workers: 4,
        duration_ms: 2000,
        out: "BENCH_throughput.json".to_string(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    let (mut saw_vertices, mut saw_workers, mut saw_duration, mut saw_out) =
        (false, false, false, false);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--vertices" => {
                args.vertices = it.next().and_then(|v| v.parse().ok()).expect("--vertices N");
                saw_vertices = true;
            }
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            "--workers" => {
                args.workers =
                    it.next().and_then(|v| v.parse().ok()).filter(|&w| w > 0).expect("--workers W");
                saw_workers = true;
            }
            "--duration-ms" => {
                args.duration_ms = it.next().and_then(|v| v.parse().ok()).expect("--duration-ms D");
                saw_duration = true;
            }
            "--out" => {
                args.out = it.next().expect("--out PATH");
                saw_out = true;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!("see the module docs at the top of bench_throughput.rs for usage");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    if args.smoke {
        if !saw_vertices {
            args.vertices = 300;
        }
        if !saw_workers {
            args.workers = 2;
        }
        if !saw_duration {
            args.duration_ms = 150;
        }
        if !saw_out {
            args.out = "target/bench_throughput_smoke.json".to_string();
        }
    }
    args
}

struct RunResult {
    workers: usize,
    queries: usize,
    elapsed_s: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    pool_hit_rate: f64,
    entry_cache_hit_rate: f64,
}

/// One closed-loop run: `workers` sessions over the shared engine, each
/// issuing back-to-back kNN queries until the deadline.
fn run(
    engine: &QueryEngine<DiskSilcIndex>,
    disk: &Arc<DiskSilcIndex>,
    workers: usize,
    duration: Duration,
    k: usize,
) -> RunResult {
    let n = engine.browser().network().vertex_count() as u32;
    // Warm-up: one short pass so caches reach steady state, then measure.
    {
        let mut session = engine.session();
        for i in 0..64u32 {
            let _ = session.knn(VertexId((i * 31 + 7) % n), k, KnnVariant::Basic);
        }
    }
    disk.reset_io_stats();

    let start = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                let mut session = engine.session();
                let mut latencies_us: Vec<f64> = Vec::with_capacity(1 << 14);
                let mut i = 0u64;
                while start.elapsed() < duration {
                    let q = VertexId(((i * 31 + 7 + w as u64 * 13) % n as u64) as u32);
                    let t = Instant::now();
                    let r = session.knn(q, k, KnnVariant::Basic);
                    let us = t.elapsed().as_secs_f64() * 1e6;
                    assert_eq!(r.neighbors.len(), k, "short result mid-benchmark");
                    latencies_us.push(us);
                    i += 1;
                }
                latencies_us
            })
        })
        .collect();
    let mut all: Vec<f64> = Vec::new();
    for h in handles {
        all.extend(h.join().expect("worker panicked"));
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    all.sort_by(f64::total_cmp);
    let io = disk.io_stats();
    let cache = disk.entry_cache_stats();
    RunResult {
        workers,
        queries: all.len(),
        elapsed_s,
        qps: all.len() as f64 / elapsed_s,
        p50_us: percentile(&all, 50.0),
        p99_us: percentile(&all, 99.0),
        pool_hit_rate: io.hit_rate(),
        entry_cache_hit_rate: cache.hit_rate(),
    }
}

fn main() {
    let args = parse_args();
    let grid_exponent = 11u32;
    let (k, density, cache_fraction) = (10usize, 0.07f64, 0.05f64);
    eprintln!(
        "# bench throughput: n = {}, seed = {}, workers = 1 and {}, {} ms windows",
        args.vertices, args.seed, args.workers, args.duration_ms
    );

    let network = Arc::new(road_network(&RoadConfig {
        vertices: args.vertices,
        edge_factor: 1.25,
        detour: 0.2,
        extent: 1000.0,
        seed: args.seed,
    }));
    let index = SilcIndex::build(network.clone(), &BuildConfig { grid_exponent, threads: 0 })
        .expect("throughput network must satisfy the index preconditions");

    let dir = std::env::temp_dir().join("silc-bench-throughput");
    std::fs::create_dir_all(&dir).expect("create scratch directory");
    let idx_path = dir.join(format!("tp-{}-{}.idx", args.vertices, args.seed));
    write_index(&index, &idx_path).expect("serialize index");
    drop(index);
    let disk = Arc::new(
        DiskSilcIndex::open(&idx_path, network.clone(), cache_fraction).expect("open disk index"),
    );
    eprintln!(
        "# disk index: {} pages, pool capacity {} pages",
        disk.page_count(),
        (disk.page_count() as f64 * cache_fraction).ceil() as u64
    );

    let objects = Arc::new(ObjectSet::random(&network, density, args.seed ^ 0xBA5E));
    let k = k.min(objects.len());
    let engine = QueryEngine::new(disk.clone(), objects);

    let duration = Duration::from_millis(args.duration_ms);
    let mut runs = vec![run(&engine, &disk, 1, duration, k)];
    if args.workers > 1 {
        runs.push(run(&engine, &disk, args.workers, duration, k));
    }
    for r in &runs {
        eprintln!(
            "# workers {}: {} queries in {:.2}s = {:.0} QPS, p50 {:.1}µs, p99 {:.1}µs, \
             pool hit {:.3}, entry cache hit {:.3}",
            r.workers,
            r.queries,
            r.elapsed_s,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.pool_hit_rate,
            r.entry_cache_hit_rate
        );
    }

    // Hand-assembled JSON (the serde shims are no-op derives); flat fields
    // plus one object per run so re-recorded files diff line by line.
    let host_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut json = format!(
        "{{\n  \"vertices\": {},\n  \"seed\": {},\n  \"grid_exponent\": {},\n  \
         \"cache_fraction\": {},\n  \"knn_k\": {},\n  \"knn_density\": {},\n  \
         \"duration_ms\": {},\n  \"host_threads\": {},\n  \"runs\": [\n",
        args.vertices,
        args.seed,
        grid_exponent,
        cache_fraction,
        k,
        density,
        args.duration_ms,
        host_threads,
    );
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"queries\": {}, \"qps\": {:.1}, \"p50_us\": {:.3}, \
             \"p99_us\": {:.3}, \"pool_hit_rate\": {:.6}, \"entry_cache_hit_rate\": {:.6}}}{}\n",
            r.workers,
            r.queries,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.pool_hit_rate,
            r.entry_cache_hit_rate,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&args.out, &json).expect("write throughput file");
    println!("{json}");
    eprintln!("# wrote {}", args.out);
    std::fs::remove_file(&idx_path).ok();
}
