//! The scale benchmark: partitioned build + routed kNN at sizes the
//! monolithic precompute cannot reach.
//!
//! The single-index SILC precompute is `O(n² · log n)` — one SSSP per
//! vertex over the whole network. The partitioned index caps every SSSP
//! at its shard, so total build work drops to
//! `O(n · s · log s)` for shard size `s`: linear in `n` once the shard
//! size is fixed. This recorder measures that wall directly: for each
//! requested size it round-trips the generated network through the
//! FMI-style text format (exercising the interchange reader in the same
//! pipeline real datasets would use), partitions it, builds one disk
//! index per shard, and drives the cross-shard kNN router in a closed
//! loop. The smallest size also builds the *monolithic* index once, and
//! every larger size reports the quadratic projection from that base —
//! the number the partitioned build is beating.
//!
//! ```text
//! cargo run -p silc-bench --release --bin bench_scale -- [FLAGS]
//!
//! FLAGS
//!   --sizes A,B,C     comma-separated vertex counts  (default 2000,20000,100000,1000000)
//!   --seed S          master RNG seed                (default 2008)
//!   --shard-target T  aim for ~T vertices per shard  (default 1000)
//!   --duration-ms D   measured query window per size (default 2000)
//!   --out PATH        output file                    (default BENCH_scale.json)
//!   --smoke           CI smoke mode: sizes 400, 150 ms, write to target/ —
//!                     checks the pipeline runs AND that the frontier tier
//!                     certifies every fault-free query (complete == 1.0)
//! ```
//!
//! Workload constants match `bench_throughput`: `k = 10`, object density
//! 0.07, cache fraction 0.05, grid exponent 11.

use silc::partitioned::{PartitionedBuildConfig, PartitionedSilcIndex};
use silc::{BuildConfig, SilcIndex};
use silc_bench::stats::percentile;
use silc_network::generate::{road_network, RoadConfig};
use silc_network::io::{read_fmi, write_fmi};
use silc_network::partition::PartitionConfig;
use silc_network::VertexId;
use silc_query::{ObjectSet, PartitionedEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    sizes: Vec<usize>,
    seed: u64,
    shard_target: usize,
    duration_ms: u64,
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        sizes: vec![2000, 20000, 100000, 1000000],
        seed: 2008,
        shard_target: 1000,
        duration_ms: 2000,
        out: "BENCH_scale.json".to_string(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    let (mut saw_sizes, mut saw_duration, mut saw_out) = (false, false, false);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sizes" => {
                let list = it.next().expect("--sizes A,B,C");
                args.sizes = list
                    .split(',')
                    .map(|v| v.trim().parse().expect("--sizes takes positive integers"))
                    .collect();
                assert!(!args.sizes.is_empty(), "--sizes must name at least one size");
                saw_sizes = true;
            }
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            "--shard-target" => {
                args.shard_target = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t > 0)
                    .expect("--shard-target T");
            }
            "--duration-ms" => {
                args.duration_ms = it.next().and_then(|v| v.parse().ok()).expect("--duration-ms D");
                saw_duration = true;
            }
            "--out" => {
                args.out = it.next().expect("--out PATH");
                saw_out = true;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!("see the module docs at the top of bench_scale.rs for usage");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    if args.smoke {
        if !saw_sizes {
            args.sizes = vec![400];
        }
        if !saw_duration {
            args.duration_ms = 150;
        }
        if !saw_out {
            args.out = "target/bench_scale_smoke.json".to_string();
        }
    }
    args
}

struct SizeResult {
    vertices: usize,
    shards: usize,
    cut_edges: usize,
    frontier_vertices: usize,
    fmi_roundtrip_s: f64,
    build_s: f64,
    projected_single_s: f64,
    speedup_vs_projected: f64,
    bytes_total: u64,
    /// Sum of the shards' compressed (v3 delta+varint) entry regions, as
    /// stored on disk.
    entry_bytes: u64,
    /// The same entry counts at the fixed 19-byte v2 record width — the
    /// arithmetic projection of what the uncompressed format would occupy
    /// (no second build; entry counts come from the opened shards).
    entry_bytes_fixed: u64,
    /// On-disk size of the frontier-distance tier (exact cross-shard
    /// routing artifact), reported separately from the shard indexes.
    frontier_bytes: u64,
    /// Build wall time split: the per-shard index loop vs. the frontier
    /// tier SSSP batch (`build_s` is their sum plus partitioning).
    shard_build_s: f64,
    frontier_build_s: f64,
    /// Pool readahead payoff across build, engine bring-up (the cold
    /// frontier-graph tier scan — the sequential-read case the tier's
    /// readahead window targets), and warm-up. The measured query window
    /// itself runs from warm caches and adds ~nothing.
    prefetch_hits: u64,
    shard_bytes: Vec<u64>,
    engine_s: f64,
    queries: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    complete_fraction: f64,
}

/// The fixed workload constants shared by every size.
#[derive(Clone, Copy)]
struct Workload {
    grid_exponent: u32,
    cache_fraction: f64,
    k: usize,
    density: f64,
}

/// One full pipeline run at `n` vertices. `base` is the measured
/// monolithic build `(n₀, seconds)` used for the quadratic projection.
fn run_size(
    n: usize,
    args: &Args,
    dir: &std::path::Path,
    base: (usize, f64),
    w: Workload,
) -> SizeResult {
    eprintln!("# --- n = {n} ---");
    let generated = road_network(&RoadConfig {
        vertices: n,
        edge_factor: 1.25,
        detour: 0.2,
        extent: 1000.0,
        seed: args.seed,
    });

    // Round-trip through the FMI-style text format: the same path a real
    // dataset would enter through, and a live check that the reader
    // scales past toy inputs.
    let t = Instant::now();
    let fmi_path = dir.join(format!("scale-{n}.fmi"));
    let mut writer = std::io::BufWriter::new(std::fs::File::create(&fmi_path).expect("create fmi"));
    write_fmi(&generated, &mut writer).expect("write fmi");
    std::io::Write::flush(&mut writer).expect("flush fmi");
    drop(writer);
    let mut reader = std::io::BufReader::new(std::fs::File::open(&fmi_path).expect("open fmi"));
    let network = Arc::new(read_fmi(&mut reader).expect("read fmi"));
    let fmi_roundtrip_s = t.elapsed().as_secs_f64();
    std::fs::remove_file(&fmi_path).ok();
    assert_eq!(network.vertex_count(), generated.vertex_count(), "fmi round-trip lost vertices");
    assert_eq!(network.edge_count(), generated.edge_count(), "fmi round-trip lost edges");
    drop(generated);

    let shards = n.div_ceil(args.shard_target).clamp(2, 1024);
    let cfg = PartitionedBuildConfig {
        partition: PartitionConfig { shards, ..Default::default() },
        grid_exponent: w.grid_exponent,
        threads: 0,
        cache_fraction: w.cache_fraction,
    };
    let t = Instant::now();
    let idx_dir = dir.join(format!("scale-{n}"));
    let index = Arc::new(
        PartitionedSilcIndex::build_in_dir(Arc::clone(&network), &idx_dir, &cfg)
            .expect("partitioned build"),
    );
    let build_s = t.elapsed().as_secs_f64();
    let (base_n, base_s) = base;
    let ratio = n as f64 / base_n as f64;
    let projected_single_s = base_s * ratio * ratio;
    let part = index.partition();
    // Bytes-on-disk of the compressed entry regions against the fixed
    // 19-byte-record projection — the scale-level compression measurement
    // (computed arithmetically from the opened shards' entry counts, no
    // second build).
    let entry_bytes: u64 =
        (0..index.shard_count()).map(|s| index.shard_index(s).entry_region_bytes()).sum();
    let entry_bytes_fixed: u64 = (0..index.shard_count())
        .map(|s| index.shard_index(s).entry_count() * silc::disk::ENTRY_BYTES as u64)
        .sum();
    let timings = index.build_timings().expect("fresh build records timings");
    eprintln!(
        "# built {} shards in {build_s:.2}s (shard loop {:.2}s + frontier tier {:.2}s; \
         {} cut edges, {} bytes + {} tier bytes, entry regions {} B \
         vs {} B fixed-width = {:.1} %); projected single-index build {projected_single_s:.1}s",
        part.shard_count(),
        timings.shards_s,
        timings.frontier_s,
        part.cut_edges().len(),
        index.total_bytes(),
        index.frontier_bytes(),
        entry_bytes,
        entry_bytes_fixed,
        100.0 * entry_bytes as f64 / entry_bytes_fixed.max(1) as f64,
    );

    let objects = Arc::new(ObjectSet::random(&network, w.density, args.seed ^ 0xBA5E));
    let k = w.k.min(objects.len());
    let t = Instant::now();
    let engine = PartitionedEngine::new(Arc::clone(&index), objects);
    let engine_s = t.elapsed().as_secs_f64();

    // Closed-loop routed kNN, single worker (the router's concurrency
    // story is the session layer already measured by bench_throughput;
    // here the question is per-query cost at scale).
    let nv = network.vertex_count() as u64;
    let mut session = engine.session();
    for i in 0..32u64 {
        let _ = session.knn(VertexId(((i * 131 + 17) % nv) as u32), k);
    }
    let prefetch_hits = index.io_stats().prefetch_hits;
    index.reset_io_stats();
    let duration = Duration::from_millis(args.duration_ms);
    let start = Instant::now();
    let mut latencies_us: Vec<f64> = Vec::with_capacity(1 << 14);
    let mut complete = 0usize;
    let mut i = 0u64;
    while start.elapsed() < duration {
        let q = VertexId((i.wrapping_mul(6364136223846793005).wrapping_add(7) % nv) as u32);
        let t = Instant::now();
        let r = session.knn(q, k);
        let us = t.elapsed().as_secs_f64() * 1e6;
        assert_eq!(r.neighbors.len(), k, "short result mid-benchmark");
        complete += r.complete as usize;
        latencies_us.push(us);
        i += 1;
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    latencies_us.sort_by(f64::total_cmp);

    let res = SizeResult {
        vertices: n,
        shards: part.shard_count(),
        cut_edges: part.cut_edges().len(),
        frontier_vertices: engine.frontier_len(),
        fmi_roundtrip_s,
        build_s,
        projected_single_s,
        speedup_vs_projected: projected_single_s / build_s,
        bytes_total: index.total_bytes(),
        entry_bytes,
        entry_bytes_fixed,
        frontier_bytes: index.frontier_bytes(),
        shard_build_s: timings.shards_s,
        frontier_build_s: timings.frontier_s,
        prefetch_hits,
        shard_bytes: index.shard_bytes().to_vec(),
        engine_s,
        queries: latencies_us.len(),
        qps: latencies_us.len() as f64 / elapsed_s,
        p50_us: percentile(&latencies_us, 50.0),
        p99_us: percentile(&latencies_us, 99.0),
        complete_fraction: complete as f64 / latencies_us.len().max(1) as f64,
    };
    eprintln!(
        "# n {}: {:.0} QPS, p50 {:.1}µs, p99 {:.1}µs, complete {:.3}, \
         prefetch hits {}, speedup {:.1}x",
        n,
        res.qps,
        res.p50_us,
        res.p99_us,
        res.complete_fraction,
        res.prefetch_hits,
        res.speedup_vs_projected
    );
    if args.smoke {
        assert!(
            engine.exact_routing(),
            "smoke: fault-free build must come up in exact routing mode"
        );
        assert_eq!(
            res.complete_fraction, 1.0,
            "smoke: exact routing must certify every fault-free query"
        );
    }
    std::fs::remove_dir_all(&idx_dir).ok();
    res
}

fn main() {
    let args = parse_args();
    let grid_exponent = 11u32;
    let (k, density, cache_fraction) = (10usize, 0.07f64, 0.05f64);
    eprintln!(
        "# bench scale: sizes {:?}, seed {}, shard target {}, {} ms windows",
        args.sizes, args.seed, args.shard_target, args.duration_ms
    );
    let dir = std::env::temp_dir().join("silc-bench-scale");
    std::fs::create_dir_all(&dir).expect("create scratch directory");

    // Monolithic base: one real single-index build at the smallest size,
    // from which every larger size's quadratic projection extrapolates.
    let base_n = *args.sizes.iter().min().expect("at least one size");
    let base_network = Arc::new(road_network(&RoadConfig {
        vertices: base_n,
        edge_factor: 1.25,
        detour: 0.2,
        extent: 1000.0,
        seed: args.seed,
    }));
    let t = Instant::now();
    let base_index =
        SilcIndex::build(Arc::clone(&base_network), &BuildConfig { grid_exponent, threads: 0 })
            .expect("monolithic base build");
    let base_build_s = t.elapsed().as_secs_f64();
    drop(base_index);
    drop(base_network);
    eprintln!("# monolithic base: n = {base_n} built in {base_build_s:.2}s");

    let workload = Workload { grid_exponent, cache_fraction, k, density };
    let results: Vec<SizeResult> = args
        .sizes
        .iter()
        .map(|&n| run_size(n, &args, &dir, (base_n, base_build_s), workload))
        .collect();

    // Hand-assembled JSON (the serde shims are no-op derives); flat fields
    // plus one object per size so re-recorded files diff line by line.
    let host_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut json = format!(
        "{{\n  \"seed\": {},\n  \"shard_target\": {},\n  \"grid_exponent\": {},\n  \
         \"cache_fraction\": {},\n  \"knn_k\": {},\n  \"knn_density\": {},\n  \
         \"duration_ms\": {},\n  \"host_threads\": {},\n  \"base_vertices\": {},\n  \
         \"base_build_s\": {:.4},\n  \"sizes\": [\n",
        args.seed,
        args.shard_target,
        grid_exponent,
        cache_fraction,
        k,
        density,
        args.duration_ms,
        host_threads,
        base_n,
        base_build_s,
    );
    for (i, r) in results.iter().enumerate() {
        let shard_bytes =
            r.shard_bytes.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(", ");
        json.push_str(&format!(
            "    {{\"vertices\": {}, \"shards\": {}, \"cut_edges\": {}, \
             \"frontier_vertices\": {}, \"fmi_roundtrip_s\": {:.4}, \"build_s\": {:.4}, \
             \"projected_single_s\": {:.4}, \"speedup_vs_projected\": {:.2}, \
             \"bytes_total\": {}, \"entry_bytes\": {}, \"entry_bytes_fixed\": {}, \
             \"frontier_bytes\": {}, \"shard_build_s\": {:.4}, \"frontier_build_s\": {:.4}, \
             \"prefetch_hits\": {}, \
             \"engine_s\": {:.4}, \"queries\": {}, \"qps\": {:.1}, \
             \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"complete_fraction\": {:.4},\n     \
             \"shard_bytes\": [{}]}}{}\n",
            r.vertices,
            r.shards,
            r.cut_edges,
            r.frontier_vertices,
            r.fmi_roundtrip_s,
            r.build_s,
            r.projected_single_s,
            r.speedup_vs_projected,
            r.bytes_total,
            r.entry_bytes,
            r.entry_bytes_fixed,
            r.frontier_bytes,
            r.shard_build_s,
            r.frontier_build_s,
            r.prefetch_hits,
            r.engine_s,
            r.queries,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.complete_fraction,
            shard_bytes,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&args.out, &json).expect("write scale file");
    println!("{json}");
    eprintln!("# wrote {}", args.out);
}
