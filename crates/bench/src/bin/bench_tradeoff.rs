//! The paper's central trade-off, measured from a common disk substrate:
//! the exact O(n²)-precompute SILC index versus the ε-approximate PCP
//! oracle (trade-off table p.11, PCP framework pp.28–29).
//!
//! Builds both indexes over the *same* road network, serializes both into
//! page files, and serves point-to-point distance queries through three
//! backends — the disk SILC index (exact, progressive refinement), the
//! memory PCP oracle, and the disk PCP oracle — where both disk backends
//! read through the same `silc_storage::BufferPool` machinery with the
//! paper's 5 % page cache. Per backend it records build time, on-disk
//! bytes, QPS/p50/p99 latency, both cache layers' hit rates, and the
//! observed relative error against the exact answers next to the oracle's
//! guaranteed ε bound.
//!
//! The PCP oracle is built **twice** — serial (`threads = 1`) and parallel
//! (`threads = 0`) — with both encodes asserted byte-identical in flight,
//! and the record includes the batched build's probe counts (multi-target
//! searches vs stored pairs) plus both error contracts: the v2 guaranteed
//! ε (max per-pair cap) and the v1-era a-priori `4t/s` bound, next to the
//! observed error.
//!
//! The disk PCP backend is additionally served **twice** — once with the
//! default per-page checksum verification (the recorded backend) and once
//! with validation opted out via `disable_checksum_validation()` — so the
//! record quantifies what corruption detection costs
//! (`pcp_disk_nocksum_qps`, `checksum_overhead_pct`).
//!
//! **Decode-vs-I/O trade-off.** Both indexes are *also* written in their
//! previous fixed-width formats (SILC v2, PCP v3) and served over the same
//! query set, with every answer asserted bit-identical in flight. The
//! record carries each format's bytes-on-disk, warm QPS, and a cold
//! full-decode sweep time (`silc_v2_*` / `silc_v3_decode_s`, `pcp_v3_*` /
//! `pcp_v4_decode_s`), quantifying what the delta+varint compression saves
//! in I/O against what it costs in decode work; a >10 % QPS regression of
//! the compressed format prints a loud warning.
//!
//! ```text
//! cargo run -p silc-bench --release --bin bench_tradeoff -- [FLAGS]
//!
//! FLAGS
//!   --vertices N      road-network size                   (default 2000)
//!   --seed S          master RNG seed                     (default 2008)
//!   --separation S    WSPD separation factor s            (default 8.0)
//!   --queries Q       distance queries per backend        (default 4000)
//!   --out PATH        output file                  (default BENCH_tradeoff.json)
//!   --smoke           CI smoke mode: 250 vertices, 300 queries, s = 6,
//!                     write to target/ — only checks the pipeline runs
//! ```
//!
//! Queries run single-threaded closed-loop (the concurrency story is
//! `bench_throughput`'s job); each backend starts cold (`clear_cache`),
//! warms on the first 10 % of the query set, then the full set is timed
//! with freshly reset cache counters.

use silc::disk::{write_index, write_index_with_version, DiskSilcIndex};
use silc::{BuildConfig, DistanceBrowser, SilcIndex};
use silc_bench::stats::percentile;
use silc_morton::MortonCode;
use silc_network::generate::{road_network, RoadConfig};
use silc_network::VertexId;
use silc_pcp::{write_oracle, DiskDistanceOracle, DistanceOracle};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    vertices: usize,
    seed: u64,
    separation: f64,
    queries: usize,
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        vertices: 2000,
        seed: 2008,
        separation: 8.0,
        queries: 4000,
        out: "BENCH_tradeoff.json".to_string(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    let (mut saw_vertices, mut saw_sep, mut saw_queries, mut saw_out) =
        (false, false, false, false);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--vertices" => {
                args.vertices = it.next().and_then(|v| v.parse().ok()).expect("--vertices N");
                saw_vertices = true;
            }
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            "--separation" => {
                args.separation = it.next().and_then(|v| v.parse().ok()).expect("--separation S");
                saw_sep = true;
            }
            "--queries" => {
                args.queries = it.next().and_then(|v| v.parse().ok()).expect("--queries Q");
                saw_queries = true;
            }
            "--out" => {
                args.out = it.next().expect("--out PATH");
                saw_out = true;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!("see the module docs at the top of bench_tradeoff.rs for usage");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    if args.smoke {
        if !saw_vertices {
            args.vertices = 250;
        }
        if !saw_sep {
            args.separation = 6.0;
        }
        if !saw_queries {
            args.queries = 300;
        }
        if !saw_out {
            args.out = "target/bench_tradeoff_smoke.json".to_string();
        }
    }
    args
}

struct BackendResult {
    name: &'static str,
    build_s: f64,
    index_bytes: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    pool_hit_rate: Option<f64>,
    cache_hit_rate: Option<f64>,
    mean_rel_error: f64,
    max_rel_error: f64,
}

/// Closed-loop single-threaded latency run: from a cold start, a warm-up
/// pass over the first 10 % of the query set brings the caches to steady
/// state, stats are reset, then the **full** set is timed (the warm prefix
/// re-runs warmed; error statistics need every answer). Returns
/// (answers, sorted latencies µs, elapsed s).
fn run_queries(
    pairs: &[(VertexId, VertexId)],
    mut distance: impl FnMut(VertexId, VertexId) -> f64,
    mut reset: impl FnMut(),
) -> (Vec<f64>, Vec<f64>, f64) {
    let warm = (pairs.len() / 10).max(1).min(pairs.len());
    for &(u, v) in &pairs[..warm] {
        let _ = distance(u, v);
    }
    reset();
    let mut answers = Vec::with_capacity(pairs.len());
    let mut lat = Vec::with_capacity(pairs.len());
    let start = Instant::now();
    for &(u, v) in pairs {
        let t = Instant::now();
        let d = distance(u, v);
        lat.push(t.elapsed().as_secs_f64() * 1e6);
        answers.push(d);
    }
    let elapsed = start.elapsed().as_secs_f64();
    lat.sort_by(f64::total_cmp);
    (answers, lat, elapsed)
}

/// Cold full-decode sweep over a disk SILC index: clears both cache tiers,
/// then decodes every vertex's complete entry list once — page I/O plus
/// record decode together, the two sides of the decode-vs-I/O trade-off the
/// compressed v3 format shifts (fewer bytes read, more work per byte).
fn silc_decode_sweep(ix: &DiskSilcIndex, n: u64) -> f64 {
    ix.clear_cache();
    let t = Instant::now();
    for u in 0..n {
        let _ = ix.try_entry(VertexId(u as u32), MortonCode(0)).expect("decode entry list");
    }
    t.elapsed().as_secs_f64()
}

/// Cold un-warmed pass of the whole query set through a disk PCP oracle —
/// every pair group it touches is read from pages and decoded exactly once,
/// the oracle-side decode-vs-I/O measurement.
fn pcp_cold_pass(oracle: &DiskDistanceOracle, pairs: &[(VertexId, VertexId)]) -> f64 {
    oracle.clear_cache();
    let t = Instant::now();
    for &(u, v) in pairs {
        let _ = oracle.distance(u, v);
    }
    t.elapsed().as_secs_f64()
}

/// (mean, max) relative error of `approx` against the exact `truth`.
fn rel_error(truth: &[f64], approx: &[f64]) -> (f64, f64) {
    let mut sum = 0.0;
    let mut worst = 0.0f64;
    let mut count = 0usize;
    for (&t, &a) in truth.iter().zip(approx) {
        if t <= 0.0 {
            continue;
        }
        let err = (a - t).abs() / t;
        sum += err;
        worst = worst.max(err);
        count += 1;
    }
    (sum / count.max(1) as f64, worst)
}

fn main() {
    let args = parse_args();
    let grid_exponent = 10u32;
    let cache_fraction = 0.05f64;
    eprintln!(
        "# bench tradeoff: n = {}, seed = {}, s = {}, {} queries",
        args.vertices, args.seed, args.separation, args.queries
    );

    let network = Arc::new(road_network(&RoadConfig {
        vertices: args.vertices,
        edge_factor: 1.25,
        detour: 0.2,
        extent: 1000.0,
        seed: args.seed,
    }));
    let n = network.vertex_count() as u64;
    let dir = std::env::temp_dir().join("silc-bench-tradeoff");
    std::fs::create_dir_all(&dir).expect("create scratch directory");

    // Build + serialize the exact SILC index.
    let t = Instant::now();
    let index = SilcIndex::build(network.clone(), &BuildConfig { grid_exponent, threads: 0 })
        .expect("tradeoff network must satisfy the index preconditions");
    let silc_path = dir.join(format!("silc-{}-{}.idx", args.vertices, args.seed));
    write_index(&index, &silc_path).expect("serialize SILC index");
    let silc_build_s = t.elapsed().as_secs_f64();
    // The same index re-encoded in the fixed-width v2 format: the "old"
    // side of the decode-vs-I/O comparison (not counted in build_s).
    let silc_v2_path = dir.join(format!("silc-v2-{}-{}.idx", args.vertices, args.seed));
    write_index_with_version(&index, &silc_v2_path, 2).expect("serialize v2 SILC index");
    drop(index);
    let silc_bytes = std::fs::metadata(&silc_path).expect("stat SILC index").len();
    let silc_v2_bytes = std::fs::metadata(&silc_v2_path).expect("stat v2 SILC index").len();
    let disk_silc = Arc::new(
        DiskSilcIndex::open(&silc_path, network.clone(), cache_fraction)
            .expect("open disk SILC index"),
    );
    let disk_silc_v2 = Arc::new(
        DiskSilcIndex::open(&silc_v2_path, network.clone(), cache_fraction)
            .expect("open v2 disk SILC index"),
    );

    // Build the ε-approximate PCP oracle twice — serial, then parallel —
    // asserting the batched build's determinism contract in flight. Both
    // timers cover build **plus** serialization, mirroring the SILC timer
    // above, and the serial artifact is the one served (so `build_s`
    // describes exactly the file being benchmarked).
    let pcp_path = dir.join(format!("pcp-{}-{}.pcp", args.vertices, args.seed));
    let t = Instant::now();
    let oracle = DistanceOracle::build_with(
        &network,
        &silc_pcp::PcpBuildConfig { grid_exponent, separation: args.separation, threads: 1 },
    );
    write_oracle(&oracle, &pcp_path).expect("serialize PCP oracle");
    let pcp_build_serial_s = t.elapsed().as_secs_f64();
    // At least two workers even on a 1-core host, so the byte-equality
    // assertion below always exercises the real chunked-worker path (with
    // `threads: 0` it would degenerate to a second serial build there and
    // prove nothing).
    let parallel_threads =
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).max(2);
    let t = Instant::now();
    let parallel_oracle = DistanceOracle::build_with(
        &network,
        &silc_pcp::PcpBuildConfig {
            grid_exponent,
            separation: args.separation,
            threads: parallel_threads,
        },
    );
    let parallel_encoded = silc_pcp::encode_oracle(&parallel_oracle);
    let pcp_build_parallel_s = t.elapsed().as_secs_f64();
    assert_eq!(
        silc_pcp::encode_oracle(&oracle),
        parallel_encoded,
        "serial and parallel PCP builds must encode byte-identically"
    );
    let parallel_workers = parallel_oracle.build_stats().workers;
    drop(parallel_encoded);
    drop(parallel_oracle);
    let build_stats = oracle.build_stats().clone();
    let pcp_build_s = pcp_build_serial_s;
    let pcp_bytes = std::fs::metadata(&pcp_path).expect("stat PCP oracle").len();
    let disk_pcp =
        DiskDistanceOracle::open(&pcp_path, cache_fraction).expect("open disk PCP oracle");
    // The same oracle re-encoded in the fixed-record v3 format — the PCP
    // side of the old-vs-new comparison.
    let pcp_v3_path = dir.join(format!("pcp-v3-{}-{}.pcp", args.vertices, args.seed));
    silc_storage::FilePageStore::create(&pcp_v3_path, &silc_pcp::format::encode_oracle_v3(&oracle))
        .expect("serialize v3 PCP oracle");
    let pcp_v3_bytes = std::fs::metadata(&pcp_v3_path).expect("stat v3 PCP oracle").len();
    let disk_pcp_v3 =
        DiskDistanceOracle::open(&pcp_v3_path, cache_fraction).expect("open v3 disk PCP oracle");
    eprintln!(
        "# built: SILC {:.2}s / {} KiB on disk; PCP {:.2}s serial / {:.2}s parallel ({} workers), \
         {} pairs via {} batched + {} refine SSSPs, {} KiB on disk, ε = {:.4} (a-priori {:.4})",
        silc_build_s,
        silc_bytes / 1024,
        pcp_build_serial_s,
        pcp_build_parallel_s,
        parallel_workers,
        oracle.pair_count(),
        build_stats.batch_sources,
        build_stats.refine_sources,
        pcp_bytes / 1024,
        oracle.epsilon(),
        oracle.epsilon_apriori()
    );

    // One deterministic query set shared by every backend.
    let pairs: Vec<(VertexId, VertexId)> = (0..args.queries as u64)
        .map(|i| {
            let u = (i.wrapping_mul(2654435761).wrapping_add(args.seed)) % n;
            let mut v = (i.wrapping_mul(40503).wrapping_add(args.seed ^ 0x5111C)) % n;
            if v == u {
                v = (v + 1) % n;
            }
            (VertexId(u as u32), VertexId(v as u32))
        })
        .collect();

    // Exact answers through the disk SILC index (progressive refinement to
    // exactness — no Dijkstra at query time).
    disk_silc.clear_cache();
    let (exact, silc_lat, silc_elapsed) = run_queries(
        &pairs,
        |u, v| silc::path::network_distance(&*disk_silc, u, v).expect("connected network"),
        || disk_silc.reset_io_stats(),
    );
    let silc_io = disk_silc.io_stats();
    let silc_cache = disk_silc.entry_cache_stats();

    // The fixed-width v2 index over the same query set — answers asserted
    // bit-identical in flight against the v3-served exact answers.
    disk_silc_v2.clear_cache();
    let (v2_exact, _, silc_v2_elapsed) = run_queries(
        &pairs,
        |u, v| silc::path::network_distance(&*disk_silc_v2, u, v).expect("connected network"),
        || disk_silc_v2.reset_io_stats(),
    );
    for (i, (&a, &b)) in exact.iter().zip(&v2_exact).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "v2/v3 SILC answers diverged at query {i}");
    }
    drop(v2_exact);
    // The format QPS comparison interleaves two more fully-warm timed
    // passes per format (v3, v2, v3, v2) and pools them with the first
    // pass, so slow drift on a shared host (CPU frequency, co-tenants)
    // biases neither side — a sequential A-then-B layout was observed to
    // swing the comparison by more than the effect being measured.
    let mut silc_elapsed_total = silc_elapsed;
    let mut silc_v2_elapsed_total = silc_v2_elapsed;
    for _ in 0..2 {
        let t = Instant::now();
        for &(u, v) in &pairs {
            let _ = silc::path::network_distance(&*disk_silc, u, v).expect("connected network");
        }
        silc_elapsed_total += t.elapsed().as_secs_f64();
        let t = Instant::now();
        for &(u, v) in &pairs {
            let _ = silc::path::network_distance(&*disk_silc_v2, u, v).expect("connected network");
        }
        silc_v2_elapsed_total += t.elapsed().as_secs_f64();
    }
    let silc_qps = (3 * pairs.len()) as f64 / silc_elapsed_total;
    let silc_v2_qps = (3 * pairs.len()) as f64 / silc_v2_elapsed_total;
    // Decode-vs-I/O: cold full-decode sweeps per format (after the stats
    // captures above — the sweeps clear and dirty the cache counters).
    let silc_v3_decode_s = silc_decode_sweep(&disk_silc, n);
    let silc_v2_decode_s = silc_decode_sweep(&disk_silc_v2, n);
    eprintln!(
        "# SILC formats: v3 {} B / {:.0} QPS / decode {:.3}s vs v2 {} B / {:.0} QPS / \
         decode {:.3}s ({:.1} % of v2 bytes)",
        silc_bytes,
        silc_qps,
        silc_v3_decode_s,
        silc_v2_bytes,
        silc_v2_qps,
        silc_v2_decode_s,
        100.0 * silc_bytes as f64 / silc_v2_bytes as f64,
    );
    if silc_qps < 0.9 * silc_v2_qps {
        eprintln!(
            "# WARNING: compressed SILC serving lost more than 10 % QPS vs the fixed-width \
             format — investigate before committing this record"
        );
    }

    // The memory PCP oracle.
    let (mem_answers, mem_lat, mem_elapsed) =
        run_queries(&pairs, |u, v| oracle.distance(u, v), || {});

    // The disk PCP oracle, from the same buffer-pool substrate. v3 files
    // verify a per-page checksum on every physical pool read; this is the
    // default (and recorded) serving configuration.
    disk_pcp.clear_cache();
    let (disk_answers, disk_lat, disk_elapsed) =
        run_queries(&pairs, |u, v| disk_pcp.distance(u, v), || disk_pcp.reset_io_stats());
    let pcp_io = disk_pcp.io_stats();
    let pcp_cache = disk_pcp.pair_cache_stats();

    // The same file with verification opted out, quantifying what the
    // checksums cost on the disk-PCP serving path.
    let mut unverified =
        DiskDistanceOracle::open(&pcp_path, cache_fraction).expect("re-open disk PCP oracle");
    unverified.disable_checksum_validation();
    let (nocksum_answers, _, nocksum_elapsed) =
        run_queries(&pairs, |u, v| unverified.distance(u, v), || unverified.reset_io_stats());
    drop(unverified);

    for (i, (&m, &d)) in mem_answers.iter().zip(&disk_answers).enumerate() {
        assert_eq!(m.to_bits(), d.to_bits(), "memory/disk PCP answers diverged at query {i}");
    }
    for (i, (&m, &d)) in mem_answers.iter().zip(&nocksum_answers).enumerate() {
        assert_eq!(m.to_bits(), d.to_bits(), "unverified PCP answers diverged at query {i}");
    }

    // The fixed-record v3 oracle over the same query set — answers asserted
    // bit-identical in flight.
    disk_pcp_v3.clear_cache();
    let (v3_answers, _, pcp_v3_elapsed) =
        run_queries(&pairs, |u, v| disk_pcp_v3.distance(u, v), || disk_pcp_v3.reset_io_stats());
    for (i, (&m, &d)) in mem_answers.iter().zip(&v3_answers).enumerate() {
        assert_eq!(m.to_bits(), d.to_bits(), "v3/v4 PCP answers diverged at query {i}");
    }
    drop(v3_answers);
    // Interleaved warm passes (v4, v3, v4, v3), pooled with each format's
    // first pass — same drift-bias defense as the SILC comparison above.
    let mut pcp_disk_elapsed_total = disk_elapsed;
    let mut pcp_v3_elapsed_total = pcp_v3_elapsed;
    for _ in 0..2 {
        let t = Instant::now();
        for &(u, v) in &pairs {
            let _ = disk_pcp.distance(u, v);
        }
        pcp_disk_elapsed_total += t.elapsed().as_secs_f64();
        let t = Instant::now();
        for &(u, v) in &pairs {
            let _ = disk_pcp_v3.distance(u, v);
        }
        pcp_v3_elapsed_total += t.elapsed().as_secs_f64();
    }
    let pcp_v3_qps = (3 * pairs.len()) as f64 / pcp_v3_elapsed_total;
    let pcp_v4_decode_s = pcp_cold_pass(&disk_pcp, &pairs);
    let pcp_v3_decode_s = pcp_cold_pass(&disk_pcp_v3, &pairs);
    eprintln!(
        "# PCP formats: v4 {} B / decode {:.3}s vs v3 {} B / {:.0} QPS / decode {:.3}s \
         ({:.1} % of v3 bytes)",
        pcp_bytes,
        pcp_v4_decode_s,
        pcp_v3_bytes,
        pcp_v3_qps,
        pcp_v3_decode_s,
        100.0 * pcp_bytes as f64 / pcp_v3_bytes as f64,
    );
    let pcp_disk_qps = (3 * pairs.len()) as f64 / pcp_disk_elapsed_total;
    if pcp_disk_qps < 0.9 * pcp_v3_qps {
        eprintln!(
            "# WARNING: compressed PCP serving lost more than 10 % QPS vs the fixed-record \
             format — investigate before committing this record"
        );
    }
    // The overhead comparison uses the verified run's own single pass
    // (adjacent in time to the unverified pass), not the pooled QPS — the
    // pooled figure mixes in later passes the unverified run has no
    // counterpart for.
    let pcp_verified_qps = pairs.len() as f64 / disk_elapsed;
    let pcp_nocksum_qps = pairs.len() as f64 / nocksum_elapsed;
    let checksum_overhead_pct = (pcp_nocksum_qps / pcp_verified_qps - 1.0) * 100.0;
    eprintln!(
        "# checksum overhead on disk PCP: {pcp_verified_qps:.0} QPS verified vs \
         {pcp_nocksum_qps:.0} QPS unverified ({checksum_overhead_pct:+.2} %)"
    );

    let (mem_mean, mem_max) = rel_error(&exact, &mem_answers);
    let (disk_mean, disk_max) = rel_error(&exact, &disk_answers);
    let guaranteed = oracle.epsilon();
    let guaranteed_apriori = oracle.epsilon_apriori();
    if mem_max > guaranteed {
        eprintln!(
            "# WARNING: observed error {mem_max:.4} exceeds the guaranteed v2 bound \
             {guaranteed:.4} — the per-pair caps are unsound for this network; investigate \
             before committing this record"
        );
    }

    let results = [
        BackendResult {
            name: "silc_disk",
            build_s: silc_build_s,
            index_bytes: silc_bytes,
            qps: silc_qps,
            p50_us: percentile(&silc_lat, 50.0),
            p99_us: percentile(&silc_lat, 99.0),
            pool_hit_rate: Some(silc_io.hit_rate()),
            cache_hit_rate: Some(silc_cache.hit_rate()),
            mean_rel_error: 0.0,
            max_rel_error: 0.0,
        },
        BackendResult {
            name: "pcp_mem",
            build_s: pcp_build_s,
            index_bytes: pcp_bytes,
            qps: pairs.len() as f64 / mem_elapsed,
            p50_us: percentile(&mem_lat, 50.0),
            p99_us: percentile(&mem_lat, 99.0),
            pool_hit_rate: None,
            cache_hit_rate: None,
            mean_rel_error: mem_mean,
            max_rel_error: mem_max,
        },
        BackendResult {
            name: "pcp_disk",
            build_s: pcp_build_s,
            index_bytes: pcp_bytes,
            qps: pcp_disk_qps,
            p50_us: percentile(&disk_lat, 50.0),
            p99_us: percentile(&disk_lat, 99.0),
            pool_hit_rate: Some(pcp_io.hit_rate()),
            cache_hit_rate: Some(pcp_cache.hit_rate()),
            mean_rel_error: disk_mean,
            max_rel_error: disk_max,
        },
    ];
    for r in &results {
        eprintln!(
            "# {:>9}: build {:.2}s, {:>9} B, {:>8.0} QPS, p50 {:>7.2}µs, p99 {:>7.2}µs, \
             pool hit {}, cache hit {}, err mean {:.5} max {:.5}",
            r.name,
            r.build_s,
            r.index_bytes,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.pool_hit_rate.map_or("    -".into(), |h| format!("{h:.3}")),
            r.cache_hit_rate.map_or("    -".into(), |h| format!("{h:.3}")),
            r.mean_rel_error,
            r.max_rel_error,
        );
    }

    // Hand-assembled JSON (the serde shims are no-op derives); one object
    // per backend so re-recorded files diff line by line.
    let fmt_opt = |o: Option<f64>| o.map_or("null".to_string(), |v| format!("{v:.6}"));
    let host_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut json = format!(
        "{{\n  \"vertices\": {},\n  \"seed\": {},\n  \"grid_exponent\": {},\n  \
         \"separation\": {},\n  \"cache_fraction\": {},\n  \"queries\": {},\n  \
         \"host_threads\": {},\n  \"pcp_pairs\": {},\n  \"pcp_stretch\": {:.6},\n  \
         \"pcp_build_serial_s\": {:.3},\n  \"pcp_build_parallel_s\": {:.3},\n  \
         \"pcp_build_workers\": {},\n  \"pcp_batch_sssp\": {},\n  \
         \"pcp_batch_settled\": {},\n  \"pcp_refine_sssp\": {},\n  \
         \"pcp_refined_pairs\": {},\n  \"guaranteed_epsilon\": {:.6},\n  \
         \"guaranteed_epsilon_apriori\": {:.6},\n  \
         \"pcp_disk_nocksum_qps\": {:.1},\n  \
         \"checksum_overhead_pct\": {:.3},\n  \
         \"silc_v2_bytes\": {},\n  \"silc_v2_qps\": {:.1},\n  \
         \"silc_v2_decode_s\": {:.4},\n  \"silc_v3_decode_s\": {:.4},\n  \
         \"pcp_v3_bytes\": {},\n  \"pcp_v3_qps\": {:.1},\n  \
         \"pcp_v3_decode_s\": {:.4},\n  \"pcp_v4_decode_s\": {:.4},\n  \"backends\": [\n",
        args.vertices,
        args.seed,
        grid_exponent,
        args.separation,
        cache_fraction,
        pairs.len(),
        host_threads,
        oracle.pair_count(),
        oracle.stretch(),
        pcp_build_serial_s,
        pcp_build_parallel_s,
        parallel_workers,
        build_stats.batch_sources,
        build_stats.batch_settled,
        build_stats.refine_sources,
        build_stats.refined_pairs,
        guaranteed,
        guaranteed_apriori,
        pcp_nocksum_qps,
        checksum_overhead_pct,
        silc_v2_bytes,
        silc_v2_qps,
        silc_v2_decode_s,
        silc_v3_decode_s,
        pcp_v3_bytes,
        pcp_v3_qps,
        pcp_v3_decode_s,
        pcp_v4_decode_s,
    );
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"build_s\": {:.3}, \"index_bytes\": {}, \"qps\": {:.1}, \
             \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"pool_hit_rate\": {}, \
             \"cache_hit_rate\": {}, \"mean_rel_error\": {:.6}, \"max_rel_error\": {:.6}}}{}\n",
            r.name,
            r.build_s,
            r.index_bytes,
            r.qps,
            r.p50_us,
            r.p99_us,
            fmt_opt(r.pool_hit_rate),
            fmt_opt(r.cache_hit_rate),
            r.mean_rel_error,
            r.max_rel_error,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&args.out, &json).expect("write tradeoff file");
    println!("{json}");
    eprintln!("# wrote {}", args.out);
    std::fs::remove_file(&silc_path).ok();
    std::fs::remove_file(&silc_v2_path).ok();
    std::fs::remove_file(&pcp_path).ok();
    std::fs::remove_file(&pcp_v3_path).ok();
}
