//! Records the in-repo bench baseline: precompute cost and query latency
//! at fixed sizes/seeds, written as JSON so later perf PRs have a
//! committed denominator to compare against.
//!
//! ```text
//! cargo run -p silc-bench --release --bin bench_baseline -- [FLAGS]
//!
//! FLAGS
//!   --vertices N   road-network size                  (default 2000)
//!   --seed S       master RNG seed                    (default 2008)
//!   --out PATH     output file                        (default BENCH_baseline.json)
//!   --smoke        CI smoke mode: 300 vertices, write to target/, no
//!                  assertions on absolute time — only that the pipeline runs
//! ```
//!
//! The recorded quantities:
//! * `build_seconds_serial` / `build_seconds_parallel` — `SilcIndex::build`
//!   wall-clock with `threads = 1` and `threads = 0` (all cores),
//! * `total_blocks` — index size in Morton blocks (machine-independent),
//! * `knn_mean_us` / `knn_p95_us` — kNN (Basic) latency at `k = 10`,
//!   object density 0.07, over a fixed query sample.

use silc::{BuildConfig, SilcIndex};
use silc_bench::stats::percentile;
use silc_network::generate::{road_network, RoadConfig};
use silc_network::VertexId;
use silc_query::{knn, KnnVariant, ObjectSet};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    vertices: usize,
    seed: u64,
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args =
        Args { vertices: 2000, seed: 2008, out: "BENCH_baseline.json".to_string(), smoke: false };
    let mut it = std::env::args().skip(1);
    let mut saw_vertices = false;
    let mut saw_out = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--vertices" => {
                args.vertices = it.next().and_then(|v| v.parse().ok()).expect("--vertices N");
                saw_vertices = true;
            }
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            "--out" => {
                args.out = it.next().expect("--out PATH");
                saw_out = true;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!("see the module docs at the top of bench_baseline.rs for usage");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    if args.smoke {
        if !saw_vertices {
            args.vertices = 300;
        }
        if !saw_out {
            args.out = "target/bench_baseline_smoke.json".to_string();
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let grid_exponent = 11u32;
    eprintln!("# bench baseline: n = {}, seed = {}", args.vertices, args.seed);

    let network = Arc::new(road_network(&RoadConfig {
        vertices: args.vertices,
        edge_factor: 1.25,
        detour: 0.2,
        extent: 1000.0,
        seed: args.seed,
    }));

    // Precompute cost, serial then parallel (separate builds so the parallel
    // number is a clean wall-clock, not contaminated by a warm allocator).
    let serial = SilcIndex::build(network.clone(), &BuildConfig { grid_exponent, threads: 1 })
        .expect("baseline network must satisfy the index preconditions");
    let parallel = SilcIndex::build(network.clone(), &BuildConfig { grid_exponent, threads: 0 })
        .expect("baseline network must satisfy the index preconditions");
    assert_eq!(serial.stats().total_blocks, parallel.stats().total_blocks);
    eprintln!(
        "# build: serial {:.3}s, parallel {:.3}s, {} blocks",
        serial.stats().build_seconds,
        parallel.stats().build_seconds,
        parallel.stats().total_blocks
    );

    // Query latency: kNN (Basic) at the paper's k = 10, density 0.07.
    let k = 10usize;
    let density = 0.07f64;
    let objects = ObjectSet::random(&network, density, args.seed ^ 0xBA5E);
    let n = network.vertex_count() as u32;
    let queries: Vec<VertexId> = (0..64u32).map(|i| VertexId((i * 31 + 7) % n)).collect();
    let k = k.min(objects.len());
    // Warm-up pass (page in the index), then the measured pass.
    for &q in &queries {
        let _ = knn(&parallel, &objects, q, k, KnnVariant::Basic);
    }
    let mut lat_us: Vec<f64> = queries
        .iter()
        .map(|&q| {
            let t = Instant::now();
            let r = knn(&parallel, &objects, q, k, KnnVariant::Basic);
            let us = t.elapsed().as_secs_f64() * 1e6;
            assert_eq!(r.neighbors.len(), k);
            us
        })
        .collect();
    lat_us.sort_by(f64::total_cmp);
    let mean_us: f64 = lat_us.iter().sum::<f64>() / lat_us.len().max(1) as f64;
    let p95_us = percentile(&lat_us, 95.0);
    eprintln!("# knn: mean {mean_us:.1}µs, p95 {p95_us:.1}µs over {} queries", lat_us.len());

    // The serde shims are no-op derives, so the JSON is assembled by hand;
    // the format is flat on purpose — diffs of re-recorded baselines should
    // read line-by-line.
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"vertices\": {},\n  \"seed\": {},\n  \"grid_exponent\": {},\n  \
         \"edge_factor\": 1.25,\n  \"host_threads\": {},\n  \
         \"build_seconds_serial\": {:.6},\n  \"build_seconds_parallel\": {:.6},\n  \
         \"total_blocks\": {},\n  \"knn_k\": {},\n  \"knn_density\": {},\n  \
         \"knn_queries\": {},\n  \"knn_mean_us\": {:.3},\n  \"knn_p95_us\": {:.3}\n}}\n",
        args.vertices,
        args.seed,
        grid_exponent,
        threads,
        serial.stats().build_seconds,
        parallel.stats().build_seconds,
        parallel.stats().total_blocks,
        k,
        density,
        lat_us.len(),
        mean_us,
        p95_us,
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&args.out, &json).expect("write baseline file");
    println!("{json}");
    eprintln!("# wrote {}", args.out);
}
