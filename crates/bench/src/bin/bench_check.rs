//! CI gate for the committed bench records: validates `BENCH_baseline.json`,
//! `BENCH_throughput.json`, `BENCH_tradeoff.json`, `BENCH_scale.json` and
//! `BENCH_latency.json` against the recorders'
//! current output schemas (see `silc_bench::schema`) and fails on drift —
//! a recorder whose fields changed without re-recording the committed
//! baseline, or a hand-edited record that no recorder would produce.
//!
//! When the CI smoke runs have already produced fresh outputs under
//! `target/`, those are validated too: that closes the loop end-to-end,
//! proving the **current binaries'** output still matches the schema the
//! committed files were checked against.
//!
//! ```text
//! cargo run -p silc-bench --release --bin bench_check -- [--dir PATH]
//!
//! FLAGS
//!   --dir PATH   repository root holding the BENCH_*.json files (default .)
//! ```
//!
//! Exit code 0 when every present file validates; 1 otherwise. The five
//! committed records are mandatory — a missing one is a failure.

use silc_bench::schema::{
    parse, validate, Shape, BASELINE_SCHEMA, LATENCY_SCHEMA, SCALE_SCHEMA, THROUGHPUT_SCHEMA,
    TRADEOFF_SCHEMA,
};
use std::path::{Path, PathBuf};

/// `(file, schema, required)`: the committed records are mandatory, the
/// smoke outputs are validated only when a prior smoke run produced them.
const CHECKS: &[(&str, &Shape, bool)] = &[
    ("BENCH_baseline.json", &BASELINE_SCHEMA, true),
    ("BENCH_throughput.json", &THROUGHPUT_SCHEMA, true),
    ("BENCH_tradeoff.json", &TRADEOFF_SCHEMA, true),
    ("BENCH_scale.json", &SCALE_SCHEMA, true),
    ("BENCH_latency.json", &LATENCY_SCHEMA, true),
    ("target/bench_baseline_smoke.json", &BASELINE_SCHEMA, false),
    ("target/bench_throughput_smoke.json", &THROUGHPUT_SCHEMA, false),
    ("target/bench_tradeoff_smoke.json", &TRADEOFF_SCHEMA, false),
    ("target/bench_scale_smoke.json", &SCALE_SCHEMA, false),
    ("target/bench_latency_smoke.json", &LATENCY_SCHEMA, false),
];

fn check_file(path: &Path, schema: &Shape) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let value = parse(&text)?;
    validate(&value, schema)
}

fn main() {
    let mut dir = PathBuf::from(".");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => dir = PathBuf::from(it.next().expect("--dir PATH")),
            "--help" | "-h" => {
                println!("see the module docs at the top of bench_check.rs for usage");
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let mut failures = 0usize;
    for &(file, schema, required) in CHECKS {
        let path = dir.join(file);
        if !path.exists() {
            if required {
                eprintln!("FAIL {file}: missing (committed bench records are mandatory)");
                failures += 1;
            } else {
                println!("skip {file}: not present (smoke output, optional)");
            }
            continue;
        }
        match check_file(&path, schema) {
            Ok(()) => println!("  ok {file}"),
            Err(e) => {
                eprintln!("FAIL {file}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "bench schema drift: {failures} file(s) do not match the recorders' current output \
             schema. If a recorder's fields changed intentionally, update \
             crates/bench/src/schema.rs AND re-record the committed baseline."
        );
        std::process::exit(1);
    }
    println!("bench schemas are in sync");
}
