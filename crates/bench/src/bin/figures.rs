//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p silc-bench --release --bin figures -- [EXPERIMENT] [FLAGS]
//!
//! EXPERIMENT (default: all)
//!   table1            Table p.11  — precomputation trade-offs
//!   dijkstra-visits   pp.3/7      — Dijkstra visit-count anecdote
//!   storage-scaling   Figure p.16 — Morton blocks vs n, slope ≈ 1.5
//!   exec-vs-s         Figure p.33a — execution time, density sweep
//!   exec-vs-k         Figure p.33b — execution time, k sweep
//!   queue-size        Figure p.34 — max |Q| as % of INN
//!   refinements       Figure p.35 — refinements as % of INN
//!   kmindist-pruning  Figure p.36 — % neighbors pruned via KMINDIST
//!   estimate-quality  Figure p.37 — D0k / KMINDIST vs Dk
//!   io-time           Figure p.38 — total vs I/O time, disk index
//!   ablation-mbr      A1          — MBR storage vs quadtree
//!   ablation-lambda   A2          — per-block λ bounds vs global ratio
//!   pcp               X1          — PCP distance-oracle trade-off
//!   all               everything above
//!
//! FLAGS
//!   --vertices N   network size for the query sweeps   (default 4000)
//!   --trials T     object sets per data point          (default 6)
//!   --queries Q    query vertices per trial            (default 8)
//!   --seed S       master RNG seed                     (default 2008)
//!   --full         paper-scale settings: 50 trials, larger networks
//! ```

use silc_bench::experiments::{ablation, io_time, pcp, precompute, sweep};
use silc_bench::{StandardWorkload, WorkloadConfig};
use std::time::Instant;

#[derive(Debug, Clone)]
struct Args {
    experiment: String,
    vertices: usize,
    trials: u64,
    queries: usize,
    seed: u64,
    full: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".to_string(),
        vertices: 4000,
        trials: 6,
        queries: 8,
        seed: 2008,
        full: false,
    };
    let mut it = std::env::args().skip(1);
    let mut saw_vertices = false;
    let mut saw_trials = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--vertices" => {
                args.vertices = it.next().and_then(|v| v.parse().ok()).expect("--vertices N");
                saw_vertices = true;
            }
            "--trials" => {
                args.trials = it.next().and_then(|v| v.parse().ok()).expect("--trials T");
                saw_trials = true;
            }
            "--queries" => {
                args.queries = it.next().and_then(|v| v.parse().ok()).expect("--queries Q")
            }
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            "--full" => args.full = true,
            "--help" | "-h" => {
                println!("see the module docs at the top of figures.rs for usage");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => args.experiment = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }
    if args.full {
        // Paper-scale settings (still tractable on one core).
        if !saw_vertices {
            args.vertices = 8000;
        }
        if !saw_trials {
            args.trials = 50;
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    println!(
        "# SILC figure harness — experiment: {} (vertices {}, trials {}, queries {}, seed {})",
        args.experiment, args.vertices, args.trials, args.queries, args.seed
    );

    let wants = |name: &str| args.experiment == "all" || args.experiment == name;
    let sweep_cfg =
        sweep::SweepConfig { trials: args.trials, queries: args.queries, ..Default::default() };

    // Precomputation-side experiments (build their own networks).
    if wants("table1") {
        precompute::table1(if args.full { 1000 } else { 400 }, args.seed).print();
    }
    if wants("dijkstra-visits") {
        precompute::dijkstra_visits(4233, args.seed).print();
    }
    if wants("storage-scaling") {
        let sizes: Vec<usize> = if args.full {
            vec![1000, 2000, 4000, 8000, 16000, 32000]
        } else {
            vec![500, 1000, 2000, 4000, 8000]
        };
        precompute::storage_scaling(&sizes, 12, args.seed).print();
    }
    if wants("pcp") {
        let seps: &[f64] = if args.full { &[2.0, 4.0, 8.0, 16.0] } else { &[2.0, 4.0, 8.0] };
        pcp::pcp_tradeoff(if args.full { 1000 } else { 400 }, seps, args.seed).print();
    }

    // Query-side experiments share one workload (network + SILC index).
    let needs_workload = [
        "exec-vs-s",
        "exec-vs-k",
        "queue-size",
        "refinements",
        "kmindist-pruning",
        "estimate-quality",
        "io-time",
        "ablation-mbr",
        "ablation-lambda",
    ]
    .iter()
    .any(|e| wants(e));
    if needs_workload {
        eprintln!("# building workload: n = {} …", args.vertices);
        let t = Instant::now();
        let w = StandardWorkload::build(WorkloadConfig {
            vertices: args.vertices,
            seed: args.seed,
            ..Default::default()
        });
        eprintln!(
            "# workload ready in {:.1}s ({} Morton blocks, {:.1} blocks/vertex)",
            t.elapsed().as_secs_f64(),
            w.index.stats().total_blocks,
            w.index.stats().total_blocks as f64 / args.vertices as f64
        );

        let needs_s_sweep =
            ["exec-vs-s", "queue-size", "refinements", "kmindist-pruning", "estimate-quality"]
                .iter()
                .any(|e| wants(e));
        let needs_k_sweep = needs_s_sweep || wants("exec-vs-k");
        let s_data = needs_s_sweep.then(|| sweep::sweep_density(&w, &sweep_cfg));
        let k_data = needs_k_sweep.then(|| sweep::sweep_k(&w, &sweep_cfg));

        if let Some(data) = &s_data {
            if wants("exec-vs-s") {
                sweep::view_exec_time(data, "a").print();
            }
        }
        if let Some(data) = &k_data {
            if wants("exec-vs-k") {
                sweep::view_exec_time(data, "b").print();
            }
        }
        for (label, data) in [("S", &s_data), ("k", &k_data)] {
            let Some(data) = data else { continue };
            let _ = label;
            if wants("queue-size") {
                sweep::view_queue_size(data).print();
            }
            if wants("refinements") {
                sweep::view_refinements(data).print();
            }
            if wants("kmindist-pruning") {
                sweep::view_kmindist_pruning(data).print();
            }
            if wants("estimate-quality") {
                sweep::view_estimate_quality(data).print();
            }
        }

        if wants("io-time") {
            io_time::io_sweep(
                &w,
                "S",
                &[0.001, 0.01, 0.05, 0.2],
                10,
                0.07,
                args.trials.min(4),
                args.queries.min(6),
                0.05,
            )
            .print();
            io_time::io_sweep(
                &w,
                "k",
                &[5.0, 10.0, 50.0, 100.0, 300.0],
                10,
                0.07,
                args.trials.min(4),
                args.queries.min(6),
                0.05,
            )
            .print();
        }
        if wants("ablation-mbr") {
            ablation::ablation_mbr(&w, 40).print();
        }
        if wants("ablation-lambda") {
            ablation::ablation_lambda(&w, 0.07, 10, args.trials, args.queries).print();
        }
    }

    println!("\n# done in {:.1}s", started.elapsed().as_secs_f64());
}
