//! Open-loop tail latency through the TCP server.
//!
//! The closed-loop recorders (`bench_throughput`) measure how fast the
//! engine can go when clients politely wait their turn; this one measures
//! what a *clock-driven* client population sees. Query batches arrive as a
//! Poisson process at a configured offered load whether or not the server
//! has caught up, so queueing delay — the thing closed loops hide — shows
//! up in the percentiles. Each offered load is replayed twice, identical
//! schedule and query points, under both drained-batch execution orders
//! (`morton`, `fifo`), so the record pins the locality claim: Morton-sorted
//! batches must beat FIFO on buffer-pool hit rate at the same load.
//!
//! Reported per run: offered vs achieved QPS, p50/p99/p999 latency
//! (measured from each batch's *scheduled* arrival, so sender lag counts),
//! `SERVER_BUSY` sheds, and both cache layers' hit rates from the
//! in-process disk index handle.
//!
//! ```text
//! cargo run -p silc-bench --release --bin bench_latency -- [FLAGS]
//!
//! FLAGS
//!   --vertices N      road-network size                     (default 2000)
//!   --seed S          master RNG seed                       (default 2008)
//!   --batch B         query bodies per arrival              (default 32)
//!   --duration-ms D   measured window per run               (default 2000)
//!   --loads CSV       offered fractions of measured capacity (default 0.3,0.6,0.9)
//!   --out PATH        output file                           (default BENCH_latency.json)
//!   --smoke           CI smoke mode: 300 vertices, 100 ms, batch 16,
//!                     write to target/ — only checks the pipeline runs
//! ```
//!
//! Workload constants match `bench_throughput`: kNN (Basic), `k = 10`,
//! object density 0.07. The page cache is deliberately small (2 % of the
//! pages, not the paper's 5 %) so batch order has pages to fight over.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silc::disk::{write_index, DiskSilcIndex};
use silc::{BuildConfig, SilcIndex};
use silc_bench::stats::percentile;
use silc_network::generate::{road_network, RoadConfig};
use silc_query::{ObjectSet, QueryEngine};
use silc_server::batch::BatchOrder;
use silc_server::server::DynBrowser;
use silc_server::{Algorithm, Client, Outcome, QueryBody, Server, ServerBackend, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    vertices: usize,
    seed: u64,
    batch: usize,
    duration_ms: u64,
    loads: Vec<f64>,
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        vertices: 2000,
        seed: 2008,
        batch: 32,
        duration_ms: 2000,
        loads: vec![0.3, 0.6, 0.9],
        out: "BENCH_latency.json".to_string(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    let (mut saw_vertices, mut saw_batch, mut saw_duration, mut saw_out) =
        (false, false, false, false);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--vertices" => {
                args.vertices = it.next().and_then(|v| v.parse().ok()).expect("--vertices N");
                saw_vertices = true;
            }
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            "--batch" => {
                args.batch =
                    it.next().and_then(|v| v.parse().ok()).filter(|&b| b > 0).expect("--batch B");
                saw_batch = true;
            }
            "--duration-ms" => {
                args.duration_ms = it.next().and_then(|v| v.parse().ok()).expect("--duration-ms D");
                saw_duration = true;
            }
            "--loads" => {
                args.loads = it
                    .next()
                    .expect("--loads CSV")
                    .split(',')
                    .map(|f| f.trim().parse().expect("--loads takes numbers"))
                    .collect();
                assert!(!args.loads.is_empty(), "--loads must name at least one fraction");
            }
            "--out" => {
                args.out = it.next().expect("--out PATH");
                saw_out = true;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!("see the module docs at the top of bench_latency.rs for usage");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    if args.smoke {
        if !saw_vertices {
            args.vertices = 300;
        }
        if !saw_batch {
            args.batch = 16;
        }
        if !saw_duration {
            args.duration_ms = 100;
        }
        if !saw_out {
            args.out = "target/bench_latency_smoke.json".to_string();
        }
    }
    args
}

/// One precomputed open-loop schedule: Poisson arrival offsets plus the
/// query bodies of each arrival. Identical across the order replays.
struct Schedule {
    arrivals: Vec<Duration>,
    bodies: Vec<Vec<QueryBody>>,
}

fn poisson_schedule(
    offered_qps: f64,
    batch: usize,
    duration: Duration,
    n: u32,
    k: u32,
    seed: u64,
) -> Schedule {
    let batch_rate = offered_qps / batch as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals = Vec::new();
    let mut bodies = Vec::new();
    let mut t = 0.0f64;
    while t < duration.as_secs_f64() && arrivals.len() < 1_000_000 {
        arrivals.push(Duration::from_secs_f64(t));
        bodies.push(
            (0..batch)
                .map(|_| QueryBody { algorithm: Algorithm::Knn, vertex: rng.gen_range(0..n), k })
                .collect(),
        );
        let u: f64 = rng.gen_range(0.0..1.0);
        t += -(1.0 - u).ln() / batch_rate;
    }
    Schedule { arrivals, bodies }
}

struct RunResult {
    order: &'static str,
    offered_fraction: f64,
    offered_qps: f64,
    sent: usize,
    answered: usize,
    busy: usize,
    achieved_qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    pool_hit_rate: f64,
    entry_cache_hit_rate: f64,
}

/// Replays one schedule against a fresh server: a sender half paces the
/// batches on the clock, a receiver half timestamps every reply against
/// the batch's *scheduled* arrival.
fn run_open_loop(
    engine: &Arc<QueryEngine<DynBrowser>>,
    disk: &Arc<DiskSilcIndex>,
    order: BatchOrder,
    schedule: &Schedule,
    offered_fraction: f64,
    offered_qps: f64,
) -> RunResult {
    let backend = ServerBackend {
        engine: engine.clone(),
        routable: None,
        oracle: None,
        warnings: Vec::new(),
    };
    let cfg = ServerConfig { order, ..ServerConfig::default() };
    let server = Server::start("127.0.0.1:0", backend, cfg).expect("start bench server");

    // Warm the caches to steady state with the first schedule entries,
    // closed-loop, then zero the counters so the run owns its stats.
    let mut warm = Client::connect(server.addr()).expect("connect warmup client");
    for bodies in schedule.bodies.iter().take(24) {
        let _ = warm.batch(bodies).expect("warmup batch");
    }
    warm.goodbye().ok();
    disk.reset_io_stats();

    let sender_client = Client::connect(server.addr()).expect("connect bench client");
    let mut receiver_client = sender_client.try_clone().expect("clone connection");
    let total_bodies: usize = schedule.bodies.iter().map(Vec::len).sum();
    let start = Instant::now();

    let sender = {
        let (arrivals, bodies) = (schedule.arrivals.clone(), schedule.bodies.clone());
        let mut client = sender_client;
        std::thread::spawn(move || {
            for (i, batch) in bodies.iter().enumerate() {
                if let Some(wait) = (start + arrivals[i]).checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                client.send_batch_nowait(i as u64 + 1, batch).expect("send batch");
            }
        })
    };

    // The receiver half: every body comes back exactly once (answer, busy
    // shed, or typed error), so it drains until the schedule's body count
    // is met — no coordination with the sender needed.
    let receiver = {
        let arrivals = schedule.arrivals.clone();
        std::thread::spawn(move || {
            let mut latencies_us: Vec<f64> = Vec::with_capacity(total_bodies);
            let mut busy = 0usize;
            let mut received = 0usize;
            while received < total_bodies {
                match receiver_client.recv() {
                    Ok(Some((rid, _seq, outcome))) => {
                        received += 1;
                        match outcome {
                            Outcome::Answer(_) => {
                                let scheduled = start + arrivals[(rid - 1) as usize];
                                latencies_us.push(scheduled.elapsed().as_secs_f64() * 1e6);
                            }
                            Outcome::Busy => busy += 1,
                            Outcome::ServerError { code, detail } => {
                                panic!("query failed mid-benchmark: code {code}: {detail}")
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(e) => panic!("receiver failed: {e}"),
                }
            }
            (latencies_us, busy)
        })
    };

    sender.join().expect("sender panicked");
    let (mut latencies_us, busy) = receiver.join().expect("receiver panicked");
    let elapsed_s = start.elapsed().as_secs_f64();
    server.shutdown();

    let sent = total_bodies;
    let answered = latencies_us.len();
    assert!(answered > 0, "open-loop run answered nothing");
    assert_eq!(answered + busy, sent, "a reply went missing");
    latencies_us.sort_by(f64::total_cmp);
    let io = disk.io_stats();
    let cache = disk.entry_cache_stats();
    RunResult {
        order: match order {
            BatchOrder::Morton => "morton",
            BatchOrder::Fifo => "fifo",
        },
        offered_fraction,
        offered_qps,
        sent,
        answered,
        busy,
        achieved_qps: answered as f64 / elapsed_s,
        p50_us: percentile(&latencies_us, 50.0),
        p99_us: percentile(&latencies_us, 99.0),
        p999_us: percentile(&latencies_us, 99.9),
        pool_hit_rate: io.hit_rate(),
        entry_cache_hit_rate: cache.hit_rate(),
    }
}

/// Closed-loop capacity probe: one client, back-to-back batches, the rate
/// the offered-load fractions are anchored to.
fn measure_capacity(
    engine: &Arc<QueryEngine<DynBrowser>>,
    batch: usize,
    duration: Duration,
    n: u32,
    k: u32,
    seed: u64,
) -> f64 {
    let backend = ServerBackend {
        engine: engine.clone(),
        routable: None,
        oracle: None,
        warnings: Vec::new(),
    };
    let server =
        Server::start("127.0.0.1:0", backend, ServerConfig::default()).expect("start probe server");
    let mut client = Client::connect(server.addr()).expect("connect probe client");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE);
    let fresh_batch = |rng: &mut StdRng| -> Vec<QueryBody> {
        (0..batch)
            .map(|_| QueryBody { algorithm: Algorithm::Knn, vertex: rng.gen_range(0..n), k })
            .collect()
    };
    // Warm-up, then measure.
    for _ in 0..4 {
        client.batch(&fresh_batch(&mut rng)).expect("warmup batch");
    }
    let start = Instant::now();
    let mut answered = 0usize;
    while start.elapsed() < duration {
        let outcomes = client.batch(&fresh_batch(&mut rng)).expect("probe batch");
        answered += outcomes.iter().filter(|o| matches!(o, Outcome::Answer(_))).count();
    }
    let qps = answered as f64 / start.elapsed().as_secs_f64();
    client.goodbye().ok();
    server.shutdown();
    qps
}

fn main() {
    let args = parse_args();
    let grid_exponent = 11u32;
    let (k, density, cache_fraction) = (10u32, 0.07f64, 0.02f64);
    eprintln!(
        "# bench latency: n = {}, seed = {}, batch = {}, loads = {:?}, {} ms windows",
        args.vertices, args.seed, args.batch, args.loads, args.duration_ms
    );

    let network = Arc::new(road_network(&RoadConfig {
        vertices: args.vertices,
        edge_factor: 1.25,
        detour: 0.2,
        extent: 1000.0,
        seed: args.seed,
    }));
    let n = network.vertex_count() as u32;
    let index = SilcIndex::build(network.clone(), &BuildConfig { grid_exponent, threads: 0 })
        .expect("latency network must satisfy the index preconditions");
    let dir = std::env::temp_dir().join("silc-bench-latency");
    std::fs::create_dir_all(&dir).expect("create scratch directory");
    let idx_path = dir.join(format!("lat-{}-{}.idx", args.vertices, args.seed));
    write_index(&index, &idx_path).expect("serialize index");
    drop(index);
    let disk = Arc::new(
        DiskSilcIndex::open(&idx_path, network.clone(), cache_fraction).expect("open disk index"),
    );
    let browser: Arc<DynBrowser> = disk.clone();
    let objects = Arc::new(ObjectSet::random(&network, density, args.seed ^ 0xBA5E));
    let k = k.min(objects.len() as u32);
    let engine = Arc::new(QueryEngine::new(browser, objects));
    eprintln!("# disk index: {} pages, pool capacity 2%", disk.page_count());

    let duration = Duration::from_millis(args.duration_ms);
    let capacity_qps = measure_capacity(&engine, args.batch, duration, n, k, args.seed);
    eprintln!("# closed-loop capacity: {capacity_qps:.0} QPS");

    let mut runs: Vec<RunResult> = Vec::new();
    for &fraction in &args.loads {
        let offered_qps = capacity_qps * fraction;
        let schedule = poisson_schedule(
            offered_qps,
            args.batch,
            duration,
            n,
            k,
            args.seed ^ fraction.to_bits(),
        );
        // Same schedule, both execution orders: the Morton-vs-FIFO A/B.
        for order in [BatchOrder::Morton, BatchOrder::Fifo] {
            let r = run_open_loop(&engine, &disk, order, &schedule, fraction, offered_qps);
            eprintln!(
                "# {:>6} @ {:.1}×: offered {:.0} QPS, achieved {:.0} QPS, p50 {:.0}µs, \
                 p99 {:.0}µs, p999 {:.0}µs, busy {}, pool hit {:.3}, entry cache hit {:.3}",
                r.order,
                r.offered_fraction,
                r.offered_qps,
                r.achieved_qps,
                r.p50_us,
                r.p99_us,
                r.p999_us,
                r.busy,
                r.pool_hit_rate,
                r.entry_cache_hit_rate,
            );
            runs.push(r);
        }
    }

    // Hand-assembled JSON (the serde shims are no-op derives); flat fields
    // plus one object per run so re-recorded files diff line by line.
    let host_threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut json = format!(
        "{{\n  \"vertices\": {},\n  \"seed\": {},\n  \"grid_exponent\": {},\n  \
         \"cache_fraction\": {},\n  \"knn_k\": {},\n  \"knn_density\": {},\n  \
         \"batch_size\": {},\n  \"duration_ms\": {},\n  \"host_threads\": {},\n  \
         \"capacity_qps\": {:.1},\n  \"runs\": [\n",
        args.vertices,
        args.seed,
        grid_exponent,
        cache_fraction,
        k,
        density,
        args.batch,
        args.duration_ms,
        host_threads,
        capacity_qps,
    );
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"order\": \"{}\", \"offered_fraction\": {}, \"offered_qps\": {:.1}, \
             \"sent\": {}, \"answered\": {}, \"busy\": {}, \"achieved_qps\": {:.1}, \
             \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}, \
             \"pool_hit_rate\": {:.6}, \"entry_cache_hit_rate\": {:.6}}}{}\n",
            r.order,
            r.offered_fraction,
            r.offered_qps,
            r.sent,
            r.answered,
            r.busy,
            r.achieved_qps,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            r.pool_hit_rate,
            r.entry_cache_hit_rate,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&args.out, &json).expect("write latency file");
    println!("{json}");
    eprintln!("# wrote {}", args.out);
    std::fs::remove_file(&idx_path).ok();
}
