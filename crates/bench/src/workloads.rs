//! Standard experiment workloads.
//!
//! The paper's testbed is a TIGER extract of the US eastern seaboard
//! (91,113 vertices / 114,176 edges, m/n ≈ 1.25). We substitute
//! `silc_network::generate::road_network` with the same edge/vertex ratio
//! (see DESIGN.md, "Substitutions"); the network size defaults to 4,000
//! vertices so the full figure suite runs on a laptop-class single core,
//! and scales up with `--full`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use silc::{BuildConfig, SilcIndex};
use silc_network::generate::{road_network, RoadConfig};
use silc_network::{SpatialNetwork, VertexId};
use silc_query::ObjectSet;
use std::sync::Arc;

/// Parameters of a standard workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Network size (vertices).
    pub vertices: usize,
    /// Undirected edge/vertex ratio (paper: ≈ 1.25).
    pub edge_factor: f64,
    /// Grid resolution exponent for the SILC index.
    pub grid_exponent: u32,
    /// Base RNG seed; networks, object sets and query points all derive
    /// from it deterministically.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig { vertices: 4000, edge_factor: 1.25, grid_exponent: 11, seed: 2008 }
    }
}

/// A network plus its SILC index, shared by the query experiments.
pub struct StandardWorkload {
    pub config: WorkloadConfig,
    pub network: Arc<SpatialNetwork>,
    pub index: SilcIndex,
}

impl StandardWorkload {
    /// Builds the workload (network generation + full SILC precompute).
    pub fn build(config: WorkloadConfig) -> Self {
        let network = Arc::new(road_network(&RoadConfig {
            vertices: config.vertices,
            edge_factor: config.edge_factor,
            detour: 0.2,
            extent: 1000.0,
            seed: config.seed,
        }));
        let index = SilcIndex::build(
            network.clone(),
            &BuildConfig { grid_exponent: config.grid_exponent, threads: 0 },
        )
        .expect("generated networks satisfy the index preconditions");
        StandardWorkload { config, network, index }
    }

    /// A deterministic object set of the given density for trial `trial`.
    pub fn objects(&self, density: f64, trial: u64) -> ObjectSet {
        ObjectSet::random(&self.network, density, self.config.seed ^ (trial.wrapping_mul(0x9E37)))
    }

    /// `count` deterministic query vertices for trial `trial`.
    pub fn queries(&self, count: usize, trial: u64) -> Vec<VertexId> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xABCD ^ trial);
        (0..count).map(|_| VertexId(rng.gen_range(0..self.network.vertex_count() as u32))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let cfg = WorkloadConfig { vertices: 300, ..Default::default() };
        let a = StandardWorkload::build(cfg.clone());
        let b = StandardWorkload::build(cfg);
        assert_eq!(a.network.edge_count(), b.network.edge_count());
        assert_eq!(a.index.stats().total_blocks, b.index.stats().total_blocks);
        assert_eq!(a.queries(5, 1), b.queries(5, 1));
        let oa: Vec<_> = a.objects(0.1, 2).iter().collect();
        let ob: Vec<_> = b.objects(0.1, 2).iter().collect();
        assert_eq!(oa, ob);
    }

    #[test]
    fn trials_differ() {
        let w = StandardWorkload::build(WorkloadConfig { vertices: 300, ..Default::default() });
        let q1 = w.queries(10, 1);
        let q2 = w.queries(10, 2);
        assert_ne!(q1, q2);
        let o1: Vec<_> = w.objects(0.1, 1).iter().map(|(_, v)| v).collect();
        let o2: Vec<_> = w.objects(0.1, 2).iter().map(|(_, v)| v).collect();
        assert_ne!(o1, o2);
    }
}
