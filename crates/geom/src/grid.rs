//! World → grid embedding.
//!
//! SILC stores shortest-path maps as quadtrees over a `2^q × 2^q` grid, so
//! every network vertex must be assigned a *unique* grid cell (two vertices
//! sharing a cell could carry different first-hop colors, which a quadtree
//! decomposition could never separate). [`GridMapper`] scales world
//! coordinates into the grid and resolves cell collisions by probing nearby
//! free cells in a deterministic outward spiral.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A cell position on the `2^q × 2^q` grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridCoord {
    pub x: u32,
    pub y: u32,
}

impl GridCoord {
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        GridCoord { x, y }
    }
}

/// Maps world coordinates into a `2^q × 2^q` grid and back.
///
/// Construction assigns each input point a unique cell; queries map arbitrary
/// world points (e.g. query objects that are not vertices) to their nearest
/// cell without any uniqueness guarantee.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridMapper {
    bounds: Rect,
    /// Grid resolution exponent: the grid is `2^q × 2^q` cells.
    q: u32,
    scale_x: f64,
    scale_y: f64,
}

impl GridMapper {
    /// Creates a mapper for points inside `bounds` on a `2^q × 2^q` grid.
    ///
    /// # Panics
    /// Panics if `q == 0` or `q > 16` (16 ⇒ 4.3 G cells, the practical cap
    /// for `u32` cell coordinates interleaved into a `u64` Morton code).
    pub fn new(bounds: Rect, q: u32) -> Self {
        assert!((1..=16).contains(&q), "grid exponent q must be in 1..=16, got {q}");
        let side = (1u64 << q) as f64;
        // Guard against degenerate (zero-extent) bounds.
        let w = bounds.width().max(f64::MIN_POSITIVE);
        let h = bounds.height().max(f64::MIN_POSITIVE);
        GridMapper { bounds, q, scale_x: (side - 1.0) / w, scale_y: (side - 1.0) / h }
    }

    /// Grid resolution exponent `q`.
    #[inline]
    pub fn q(&self) -> u32 {
        self.q
    }

    /// Number of cells along one side of the grid.
    #[inline]
    pub fn side(&self) -> u32 {
        1u32 << self.q
    }

    /// The world-space bounds the grid covers.
    #[inline]
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// Maps a world point to its grid cell (clamped to the grid).
    #[inline]
    pub fn to_grid(&self, p: &Point) -> GridCoord {
        let max = self.side() - 1;
        let gx = ((p.x - self.bounds.min_x) * self.scale_x).round();
        let gy = ((p.y - self.bounds.min_y) * self.scale_y).round();
        GridCoord::new((gx.clamp(0.0, max as f64)) as u32, (gy.clamp(0.0, max as f64)) as u32)
    }

    /// World-space center of a grid cell.
    #[inline]
    pub fn to_world(&self, c: GridCoord) -> Point {
        Point::new(
            self.bounds.min_x + c.x as f64 / self.scale_x,
            self.bounds.min_y + c.y as f64 / self.scale_y,
        )
    }

    /// World-space rectangle covered by the grid-aligned block whose
    /// lower-left cell is `(x, y)` and whose side is `size` cells.
    pub fn block_rect(&self, x: u32, y: u32, size: u32) -> Rect {
        let half_x = 0.5 / self.scale_x;
        let half_y = 0.5 / self.scale_y;
        let lo = self.to_world(GridCoord::new(x, y));
        let hi = self.to_world(GridCoord::new(x + size - 1, y + size - 1));
        Rect::new(lo.x - half_x, lo.y - half_y, hi.x + half_x, hi.y + half_y)
    }

    /// Assigns every point a *unique* grid cell.
    ///
    /// Points whose natural cell is taken are moved to the nearest free cell
    /// found by a deterministic outward ring search. Returns the cell for
    /// each input point, in input order.
    ///
    /// # Panics
    /// Panics if there are more points than grid cells.
    pub fn assign_unique(&self, points: &[Point]) -> Vec<GridCoord> {
        let cells = 1u64 << (2 * self.q);
        assert!(
            (points.len() as u64) <= cells,
            "{} points cannot fit in {} grid cells; increase q",
            points.len(),
            cells
        );
        let mut taken: HashMap<GridCoord, ()> = HashMap::with_capacity(points.len() * 2);
        let mut out = Vec::with_capacity(points.len());
        let side = self.side() as i64;
        for p in points {
            let c = self.to_grid(p);
            let placed = if taken.contains_key(&c) { self.probe_free(c, side, &taken) } else { c };
            taken.insert(placed, ());
            out.push(placed);
        }
        out
    }

    /// Finds the nearest free cell to `c` by scanning square rings of
    /// increasing radius. Deterministic: rings are scanned in a fixed order.
    fn probe_free(&self, c: GridCoord, side: i64, taken: &HashMap<GridCoord, ()>) -> GridCoord {
        for radius in 1..side {
            let (cx, cy) = (c.x as i64, c.y as i64);
            for dy in -radius..=radius {
                let y = cy + dy;
                if y < 0 || y >= side {
                    continue;
                }
                // Only the ring boundary: skip interior columns.
                let xs: &[i64] = if dy.abs() == radius { &[0] } else { &[-radius, radius] };
                let ring_range: Box<dyn Iterator<Item = i64>> = if dy.abs() == radius {
                    Box::new(-radius..=radius)
                } else {
                    Box::new(xs.iter().copied())
                };
                for dx in ring_range {
                    let x = cx + dx;
                    if x < 0 || x >= side {
                        continue;
                    }
                    let cand = GridCoord::new(x as u32, y as u32);
                    if !taken.contains_key(&cand) {
                        return cand;
                    }
                }
            }
        }
        unreachable!("assign_unique checked there is a free cell")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mapper(q: u32) -> GridMapper {
        GridMapper::new(Rect::new(0.0, 0.0, 100.0, 100.0), q)
    }

    #[test]
    fn corners_map_to_grid_corners() {
        let m = mapper(8);
        assert_eq!(m.to_grid(&Point::new(0.0, 0.0)), GridCoord::new(0, 0));
        assert_eq!(m.to_grid(&Point::new(100.0, 100.0)), GridCoord::new(255, 255));
    }

    #[test]
    fn out_of_bounds_points_clamp() {
        let m = mapper(8);
        assert_eq!(m.to_grid(&Point::new(-50.0, 500.0)), GridCoord::new(0, 255));
    }

    #[test]
    fn roundtrip_error_bounded_by_cell_size() {
        let m = mapper(10);
        let cell = 100.0 / 1023.0;
        for &(x, y) in &[(13.7, 42.1), (0.0, 99.9), (50.0, 50.0)] {
            let p = Point::new(x, y);
            let back = m.to_world(m.to_grid(&p));
            assert!(p.distance(&back) <= cell, "roundtrip moved {p:?} too far");
        }
    }

    #[test]
    fn unique_assignment_no_duplicates() {
        let m = mapper(4); // 16x16 = 256 cells
                           // 60 points all at the same location must still get distinct cells.
        let pts = vec![Point::new(50.0, 50.0); 60];
        let cells = m.assign_unique(&pts);
        let mut seen = std::collections::HashSet::new();
        for c in &cells {
            assert!(seen.insert(*c), "cell {c:?} assigned twice");
        }
    }

    #[test]
    fn unique_assignment_keeps_free_cells_in_place() {
        let m = mapper(6);
        let pts = vec![Point::new(10.0, 10.0), Point::new(90.0, 90.0)];
        let cells = m.assign_unique(&pts);
        assert_eq!(cells[0], m.to_grid(&pts[0]));
        assert_eq!(cells[1], m.to_grid(&pts[1]));
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn too_many_points_panics() {
        let m = mapper(1); // 4 cells
        let pts = vec![Point::new(0.0, 0.0); 5];
        m.assign_unique(&pts);
    }

    #[test]
    fn block_rect_covers_cells() {
        let m = mapper(4);
        let r = m.block_rect(0, 0, 16);
        // The full-grid block covers (slightly more than) the world bounds.
        assert!(r.min_x <= 0.0 && r.max_x >= 100.0);
        assert!(r.min_y <= 0.0 && r.max_y >= 100.0);
    }

    #[test]
    #[should_panic(expected = "grid exponent")]
    fn q_zero_rejected() {
        GridMapper::new(Rect::new(0.0, 0.0, 1.0, 1.0), 0);
    }

    #[test]
    fn degenerate_bounds_do_not_divide_by_zero() {
        let m = GridMapper::new(Rect::new(5.0, 5.0, 5.0, 5.0), 4);
        let c = m.to_grid(&Point::new(5.0, 5.0));
        assert_eq!(c, GridCoord::new(0, 0));
    }

    proptest! {
        #[test]
        fn grid_cell_always_in_range(x in -1e3f64..1e3, y in -1e3f64..1e3, q in 1u32..12) {
            let m = mapper(q);
            let c = m.to_grid(&Point::new(x, y));
            prop_assert!(c.x < m.side());
            prop_assert!(c.y < m.side());
        }

        #[test]
        fn unique_assignment_is_injective(
            xs in proptest::collection::vec((0f64..100.0, 0f64..100.0), 1..120)
        ) {
            let m = mapper(6); // 64x64 = 4096 cells
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let cells = m.assign_unique(&pts);
            let set: std::collections::HashSet<_> = cells.iter().collect();
            prop_assert_eq!(set.len(), pts.len());
        }
    }
}
