//! Points in the plane.

use serde::{Deserialize, Serialize};

/// A position in world coordinates.
///
/// Coordinates are `f64` throughout the library; spatial networks from road
/// data typically use projected meters or degrees, and all SILC reasoning is
/// invariant under uniform scaling.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint of the segment between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Componentwise translation.
    #[inline]
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_zero_for_identical_points() {
        let p = Point::new(3.5, -2.0);
        assert_eq!(p.distance(&p), 0.0);
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.midpoint(&b), Point::new(2.0, 4.0));
    }

    #[test]
    fn offset_translates() {
        let p = Point::new(1.0, 1.0).offset(2.0, -3.0);
        assert_eq!(p, Point::new(3.0, -2.0));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (7.0, 8.0).into();
        assert_eq!(p, Point::new(7.0, 8.0));
    }

    #[test]
    fn non_finite_detected() {
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
        assert!(Point::new(0.0, 0.0).is_finite());
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(ax in -1e6f64..1e6, ay in -1e6f64..1e6,
                                 bx in -1e6f64..1e6, by in -1e6f64..1e6) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert_eq!(a.distance(&b), b.distance(&a));
        }

        #[test]
        fn triangle_inequality(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                               bx in -1e3f64..1e3, by in -1e3f64..1e3,
                               cx in -1e3f64..1e3, cy in -1e3f64..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }

        #[test]
        fn midpoint_is_equidistant(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                                   bx in -1e3f64..1e3, by in -1e3f64..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let m = a.midpoint(&b);
            prop_assert!((a.distance(&m) - b.distance(&m)).abs() <= 1e-6 * (1.0 + a.distance(&b)));
        }
    }
}
