//! Axis-aligned rectangles with the min/max distance queries used by
//! best-first search over spatial indexes.

use crate::Point;
use serde::{Deserialize, Serialize};

/// A closed axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    /// Panics (debug builds) if the minimum exceeds the maximum on either
    /// axis.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted rectangle");
        Rect { min_x, min_y, max_x, max_y }
    }

    /// The smallest rectangle containing every point of `points`.
    ///
    /// Returns `None` for an empty slice.
    pub fn bounding(points: &[Point]) -> Option<Rect> {
        let first = points.first()?;
        let mut r = Rect::new(first.x, first.y, first.x, first.y);
        for p in &points[1..] {
            r.expand(p);
        }
        Some(r)
    }

    /// Grows the rectangle to include `p`.
    #[inline]
    pub fn expand(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.min_x + self.max_x) * 0.5, (self.min_y + self.max_y) * 0.5)
    }

    /// Tests whether `p` lies inside the (closed) rectangle.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Tests whether the two closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Minimum Euclidean distance from `p` to any point of the rectangle
    /// (zero when `p` is inside).
    #[inline]
    pub fn min_distance(&self, p: &Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum Euclidean distance from `p` to any point of the rectangle
    /// (always attained at one of the four corners).
    #[inline]
    pub fn max_distance(&self, p: &Point) -> f64 {
        let dx = (p.x - self.min_x).abs().max((p.x - self.max_x).abs());
        let dy = (p.y - self.min_y).abs().max((p.y - self.max_y).abs());
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn contains_boundary_and_interior() {
        let r = unit();
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(r.contains(&Point::new(1.0, 1.0)));
        assert!(r.contains(&Point::new(0.5, 0.5)));
        assert!(!r.contains(&Point::new(1.0001, 0.5)));
    }

    #[test]
    fn min_distance_zero_inside() {
        assert_eq!(unit().min_distance(&Point::new(0.25, 0.75)), 0.0);
    }

    #[test]
    fn min_distance_outside_axis() {
        assert_eq!(unit().min_distance(&Point::new(2.0, 0.5)), 1.0);
        assert_eq!(unit().min_distance(&Point::new(0.5, -3.0)), 3.0);
    }

    #[test]
    fn min_distance_outside_corner() {
        let d = unit().min_distance(&Point::new(2.0, 2.0));
        assert!((d - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn max_distance_from_center() {
        let d = unit().max_distance(&Point::new(0.5, 0.5));
        assert!((d - (0.5f64 * 2f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_of_points() {
        let pts = [Point::new(1.0, 5.0), Point::new(-2.0, 3.0), Point::new(4.0, -1.0)];
        let r = Rect::bounding(&pts).unwrap();
        assert_eq!(r, Rect::new(-2.0, -1.0, 4.0, 5.0));
        assert!(Rect::bounding(&[]).is_none());
    }

    #[test]
    fn intersection_test() {
        let a = unit();
        let b = Rect::new(0.5, 0.5, 2.0, 2.0);
        let c = Rect::new(1.5, 1.5, 2.0, 2.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching edges count as intersecting (closed rectangles).
        let d = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn center_and_dims() {
        let r = Rect::new(0.0, 2.0, 4.0, 8.0);
        assert_eq!(r.center(), Point::new(2.0, 5.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 6.0);
    }

    proptest! {
        #[test]
        fn min_le_max_distance(px in -10f64..10.0, py in -10f64..10.0) {
            let r = unit();
            let p = Point::new(px, py);
            prop_assert!(r.min_distance(&p) <= r.max_distance(&p) + 1e-12);
        }

        #[test]
        fn distances_bound_actual_corner_distances(px in -10f64..10.0, py in -10f64..10.0) {
            let r = unit();
            let p = Point::new(px, py);
            let corners = [
                Point::new(r.min_x, r.min_y),
                Point::new(r.min_x, r.max_y),
                Point::new(r.max_x, r.min_y),
                Point::new(r.max_x, r.max_y),
            ];
            for c in &corners {
                prop_assert!(r.min_distance(&p) <= p.distance(c) + 1e-12);
                prop_assert!(r.max_distance(&p) >= p.distance(c) - 1e-12);
            }
        }

        #[test]
        fn expand_contains(px in -10f64..10.0, py in -10f64..10.0) {
            let mut r = unit();
            let p = Point::new(px, py);
            r.expand(&p);
            prop_assert!(r.contains(&p));
            // Still contains the original rectangle.
            prop_assert!(r.contains(&Point::new(0.0, 0.0)));
            prop_assert!(r.contains(&Point::new(1.0, 1.0)));
        }
    }
}
