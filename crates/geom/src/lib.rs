//! Two-dimensional geometry primitives for the SILC spatial-network library.
//!
//! The SILC framework ("Scalable Network Distance Browsing in Spatial
//! Databases", SIGMOD 2008) reasons about shortest paths *geometrically*:
//! every vertex of a spatial network is embedded in the plane, shortest-path
//! information is stored as colored planar regions, and network distances are
//! bounded by scaled Euclidean distances. This crate provides the plane
//! geometry those structures are built on:
//!
//! * [`Point`] — a position in world coordinates,
//! * [`Rect`] — an axis-aligned rectangle with min/max distance queries,
//! * [`GridMapper`] — the world → `2^q × 2^q` grid embedding used to assign
//!   Morton codes, with collision-free snapping of vertices to grid cells.

pub mod grid;
pub mod point;
pub mod rect;

pub use grid::{GridCoord, GridMapper};
pub use point::Point;
pub use rect::Rect;
