//! Bit-interleaved Z-order codes.

use serde::{Deserialize, Serialize};
use silc_geom::GridCoord;

/// A Morton (Z-order) code: the bit-interleave of a grid cell's `(x, y)`.
///
/// With grid coordinates up to 16 bits each, codes occupy the low 32 bits of
/// the `u64`; the type supports up to 32-bit coordinates (64-bit codes) so
/// callers never have to worry about overflow.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MortonCode(pub u64);

/// Spreads the low 32 bits of `v` so bit `i` moves to bit `2i`.
#[inline]
fn spread(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread`]: gathers every second bit back into the low half.
#[inline]
fn compact(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

impl MortonCode {
    /// Encodes a grid cell. `x` occupies even bits, `y` odd bits.
    #[inline]
    pub fn encode(c: GridCoord) -> Self {
        MortonCode(spread(c.x) | (spread(c.y) << 1))
    }

    /// Decodes back to the grid cell.
    #[inline]
    pub fn decode(self) -> GridCoord {
        GridCoord::new(compact(self.0), compact(self.0 >> 1))
    }

    /// Raw code value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_known_values() {
        // (x=1, y=0) -> 0b01, (x=0, y=1) -> 0b10, (x=1,y=1) -> 0b11
        assert_eq!(MortonCode::encode(GridCoord::new(0, 0)).0, 0);
        assert_eq!(MortonCode::encode(GridCoord::new(1, 0)).0, 1);
        assert_eq!(MortonCode::encode(GridCoord::new(0, 1)).0, 2);
        assert_eq!(MortonCode::encode(GridCoord::new(1, 1)).0, 3);
        assert_eq!(MortonCode::encode(GridCoord::new(2, 0)).0, 4);
        assert_eq!(MortonCode::encode(GridCoord::new(0, 2)).0, 8);
        assert_eq!(MortonCode::encode(GridCoord::new(3, 5)).0, 0b100111);
    }

    #[test]
    fn z_order_visits_quadrants_in_order() {
        // Within a 2x2 block the order is SW, SE, NW, NE (x fastest).
        let codes: Vec<u64> = [(0, 0), (1, 0), (0, 1), (1, 1)]
            .iter()
            .map(|&(x, y)| MortonCode::encode(GridCoord::new(x, y)).0)
            .collect();
        assert_eq!(codes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn max_coordinate_roundtrip() {
        let c = GridCoord::new(u32::MAX, u32::MAX);
        assert_eq!(MortonCode::encode(c).decode(), c);
        assert_eq!(MortonCode::encode(c).0, u64::MAX);
    }

    proptest! {
        #[test]
        fn roundtrip(x in any::<u32>(), y in any::<u32>()) {
            let c = GridCoord::new(x, y);
            prop_assert_eq!(MortonCode::encode(c).decode(), c);
        }

        #[test]
        fn ordering_respects_shared_prefix(x in 0u32..65536, y in 0u32..65536) {
            // All cells in the same 2x2 parent block are contiguous in code
            // space: the parent's code range is [base, base+4).
            let c = GridCoord::new(x & !1, y & !1);
            let base = MortonCode::encode(c).0;
            for dy in 0..2u32 {
                for dx in 0..2u32 {
                    let code = MortonCode::encode(GridCoord::new(c.x + dx, c.y + dy)).0;
                    prop_assert!(code >= base && code < base + 4);
                }
            }
        }
    }
}
