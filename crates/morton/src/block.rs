//! Quadtree blocks in Morton space.

use crate::MortonCode;
use serde::{Deserialize, Serialize};
use silc_geom::GridCoord;

/// A grid-aligned square quadtree block.
///
/// A block of `level` ℓ covers a `2^ℓ × 2^ℓ` square of cells whose Morton
/// codes form the contiguous, aligned range `[base, base + 4^ℓ)`. Level 0 is
/// a single cell. Because blocks are aligned, any two blocks are either
/// disjoint or nested — the property that makes a sorted block list a valid
/// disjoint decomposition (unlike the overlapping minimum bounding boxes the
/// paper rejects on p.13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MortonBlock {
    base: u64,
    level: u8,
}

impl MortonBlock {
    /// Creates a block from its base code and level.
    ///
    /// # Panics
    /// Panics (debug builds) if `base` is not aligned to `4^level`.
    #[inline]
    pub fn new(base: MortonCode, level: u8) -> Self {
        debug_assert!(level <= 32, "level {level} exceeds 32");
        debug_assert!(
            level == 32 || base.0 % (1u64 << (2 * level as u32)) == 0,
            "unaligned block base {:#x} for level {level}",
            base.0
        );
        MortonBlock { base: base.0, level }
    }

    /// The level-0 block holding a single cell.
    #[inline]
    pub fn cell(code: MortonCode) -> Self {
        MortonBlock { base: code.0, level: 0 }
    }

    /// The block of the whole `2^q × 2^q` grid.
    #[inline]
    pub fn root(q: u32) -> Self {
        MortonBlock { base: 0, level: q as u8 }
    }

    /// First Morton code in the block.
    #[inline]
    pub fn start(&self) -> u64 {
        self.base
    }

    /// One past the last Morton code in the block.
    #[inline]
    pub fn end(&self) -> u64 {
        if self.level >= 32 {
            u64::MAX
        } else {
            self.base + (1u64 << (2 * self.level as u32))
        }
    }

    /// Block level (side length is `2^level` cells).
    #[inline]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Side length of the block in cells.
    #[inline]
    pub fn side(&self) -> u32 {
        1u32 << self.level.min(31)
    }

    /// Number of cells covered.
    #[inline]
    pub fn cell_count(&self) -> u64 {
        self.end() - self.start()
    }

    /// Grid coordinate of the block's lower-left (minimum) cell.
    #[inline]
    pub fn origin(&self) -> GridCoord {
        MortonCode(self.base).decode()
    }

    /// Tests whether a cell's code lies inside the block.
    #[inline]
    pub fn contains_code(&self, code: MortonCode) -> bool {
        code.0 >= self.start() && code.0 < self.end()
    }

    /// Tests whether `other` is entirely inside `self`.
    #[inline]
    pub fn contains_block(&self, other: &MortonBlock) -> bool {
        self.start() <= other.start() && other.end() <= self.end()
    }

    /// Tests whether the two blocks share any cell. For aligned blocks this
    /// is equivalent to one containing the other.
    #[inline]
    pub fn intersects(&self, other: &MortonBlock) -> bool {
        self.start() < other.end() && other.start() < self.end()
    }

    /// The four child blocks in Z order (SW, SE, NW, NE).
    ///
    /// # Panics
    /// Panics if called on a level-0 block.
    pub fn children(&self) -> [MortonBlock; 4] {
        assert!(self.level > 0, "level-0 blocks have no children");
        let child_level = self.level - 1;
        let step = 1u64 << (2 * child_level as u32);
        [
            MortonBlock { base: self.base, level: child_level },
            MortonBlock { base: self.base + step, level: child_level },
            MortonBlock { base: self.base + 2 * step, level: child_level },
            MortonBlock { base: self.base + 3 * step, level: child_level },
        ]
    }

    /// The parent block one level up, or `None` at level 32.
    pub fn parent(&self) -> Option<MortonBlock> {
        if self.level >= 32 {
            return None;
        }
        let parent_level = self.level + 1;
        let mask = !((1u64 << (2 * parent_level as u32)) - 1);
        Some(MortonBlock { base: self.base & mask, level: parent_level })
    }
}

/// Decomposes an arbitrary half-open Morton range `[lo, hi)` into the minimal
/// sequence of aligned blocks, in code order.
///
/// This is the classic "tiling" of an interval by power-of-four aligned
/// pieces; it is used to express rectangular region queries as block scans.
pub fn block_cover(lo: u64, hi: u64, max_level: u8) -> Vec<MortonBlock> {
    let mut out = Vec::new();
    let mut cur = lo;
    while cur < hi {
        // Largest level such that cur is aligned and the block fits in [cur, hi).
        let align = if cur == 0 { max_level } else { (cur.trailing_zeros() / 2) as u8 };
        let mut level = align.min(max_level);
        while level > 0 && cur + (1u64 << (2 * level as u32)) > hi {
            level -= 1;
        }
        if cur + (1u64 << (2 * level as u32)) > hi {
            // Even a single cell does not fit; range exhausted.
            break;
        }
        out.push(MortonBlock { base: cur, level });
        cur += 1u64 << (2 * level as u32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn root_covers_everything() {
        let root = MortonBlock::root(8);
        assert_eq!(root.start(), 0);
        assert_eq!(root.end(), 1 << 16);
        assert_eq!(root.side(), 256);
        for code in [0u64, 1, 100, (1 << 16) - 1] {
            assert!(root.contains_code(MortonCode(code)));
        }
        assert!(!root.contains_code(MortonCode(1 << 16)));
    }

    #[test]
    fn children_partition_parent() {
        let b = MortonBlock::new(MortonCode(16), 2);
        let kids = b.children();
        assert_eq!(kids[0].start(), b.start());
        for w in kids.windows(2) {
            assert_eq!(w[0].end(), w[1].start());
        }
        assert_eq!(kids[3].end(), b.end());
        let total: u64 = kids.iter().map(|k| k.cell_count()).sum();
        assert_eq!(total, b.cell_count());
    }

    #[test]
    fn parent_of_child_is_self() {
        let b = MortonBlock::new(MortonCode(64), 3);
        for child in b.children() {
            assert_eq!(child.parent().unwrap(), b);
        }
    }

    #[test]
    fn blocks_nest_or_are_disjoint() {
        let a = MortonBlock::new(MortonCode(0), 2); // [0,16)
        let b = MortonBlock::new(MortonCode(4), 1); // [4,8)
        let c = MortonBlock::new(MortonCode(16), 2); // [16,32)
        assert!(a.intersects(&b) && a.contains_block(&b));
        assert!(!a.intersects(&c));
        assert!(!b.contains_block(&a));
    }

    #[test]
    fn origin_is_minimum_cell() {
        // Block [16, 32) at level 2 starts at the cell decoding code 16.
        let b = MortonBlock::new(MortonCode(16), 2);
        assert_eq!(b.origin(), MortonCode(16).decode());
        assert_eq!(b.origin(), GridCoord::new(4, 0));
    }

    #[test]
    fn cell_block_is_single_cell() {
        let b = MortonBlock::cell(MortonCode(7));
        assert_eq!(b.cell_count(), 1);
        assert!(b.contains_code(MortonCode(7)));
        assert!(!b.contains_code(MortonCode(8)));
    }

    #[test]
    fn cover_whole_grid_is_one_block() {
        let cover = block_cover(0, 1 << 16, 8);
        assert_eq!(cover, vec![MortonBlock::root(8)]);
    }

    #[test]
    fn cover_unaligned_range() {
        // [1, 9): cells 1,2,3 then block [4,8) then cell 8.
        let cover = block_cover(1, 9, 8);
        let total: u64 = cover.iter().map(|b| b.cell_count()).sum();
        assert_eq!(total, 8);
        assert_eq!(cover[0].start(), 1);
        assert_eq!(cover.last().unwrap().end(), 9);
        for w in cover.windows(2) {
            assert_eq!(w[0].end(), w[1].start());
        }
    }

    #[test]
    fn cover_empty_range() {
        assert!(block_cover(5, 5, 8).is_empty());
        assert!(block_cover(9, 5, 8).is_empty());
    }

    proptest! {
        #[test]
        fn cover_tiles_exactly(lo in 0u64..4096, len in 0u64..4096) {
            let hi = lo + len;
            let cover = block_cover(lo, hi, 16);
            // Contiguous, exact, and aligned.
            let mut cur = lo;
            for b in &cover {
                prop_assert_eq!(b.start(), cur);
                prop_assert_eq!(b.start() % b.cell_count(), 0);
                cur = b.end();
            }
            prop_assert_eq!(cur, hi);
        }

        #[test]
        fn cover_is_minimal_locally(lo in 0u64..4096, len in 1u64..4096) {
            // No four consecutive blocks form a complete aligned parent —
            // such a quadruple could be merged, contradicting minimality.
            let cover = block_cover(lo, lo + len, 16);
            for w in cover.windows(4) {
                let same_level = w.iter().all(|b| b.level() == w[0].level());
                if same_level {
                    let same_parent = w.iter().all(|b| b.parent() == w[0].parent());
                    let starts_parent = w[0].parent().is_some_and(|p| p.start() == w[0].start());
                    prop_assert!(
                        !(same_parent && starts_parent),
                        "blocks {:?} could merge into parent",
                        w
                    );
                }
            }
        }

        #[test]
        fn contains_code_matches_range(base in 0u64..1024, level in 0u8..5, code in 0u64..65536) {
            let aligned = base - base % (1u64 << (2 * level as u32));
            let b = MortonBlock::new(MortonCode(aligned), level);
            let inside = code >= b.start() && code < b.end();
            prop_assert_eq!(b.contains_code(MortonCode(code)), inside);
        }
    }
}
