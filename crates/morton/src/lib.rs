//! Morton (Z-order) codes and quadtree blocks.
//!
//! The shortest-path quadtrees at the heart of SILC are stored as flat,
//! sorted collections of *Morton blocks*: grid-aligned square regions
//! identified by the common bit-prefix of the Morton codes of the cells they
//! cover. Storing blocks instead of a pointer-based tree is what gives the
//! framework its `O(N√N)` total space bound, and sorted order gives
//! `O(log n)` point lookups and range-overlap scans.
//!
//! * [`MortonCode`] — bit-interleaving of a grid cell's `(x, y)`,
//! * [`MortonBlock`] — a quadtree block: a code prefix plus a level,
//! * [`block_cover`] — minimal block decomposition of a code range.

pub mod block;
pub mod code;

pub use block::{block_cover, MortonBlock};
pub use code::MortonCode;
