//! Query results and the statistics the paper's figures are plotted from.

use crate::objects::ObjectId;
use serde::Serialize;
use silc::DistInterval;
use silc_network::VertexId;

/// One reported neighbor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The object.
    pub object: ObjectId,
    /// The vertex the object resides on.
    pub vertex: VertexId,
    /// The distance knowledge at confirmation time. Sorted algorithms
    /// (kNN, kNN-I, INN) confirm an object as soon as its interval cannot
    /// collide with anything else, so the interval may still be wide;
    /// it always contains the true network distance.
    pub interval: DistInterval,
}

/// Counters describing one query execution.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct QueryStats {
    /// Refinement operations performed (paper fig. p.35).
    pub refinements: usize,
    /// Maximum size of the main priority queue `Q` (paper fig. p.34).
    pub max_queue: usize,
    /// Total queue insertions.
    pub queue_pushes: usize,
    /// Objects confirmed directly against `KMINDIST` (kNN-M only; paper
    /// fig. p.36).
    pub kmindist_pruned: usize,
    /// The early estimate `D⁰k` of the kth distance (kNN-I/kNN-M; paper
    /// fig. p.37).
    pub d0k: Option<f64>,
    /// The final `KMINDIST` estimate (kNN-M; paper fig. p.37).
    pub kmindist_final: Option<f64>,
    /// Upper bound on the kth neighbor distance at termination (`Dk`).
    pub dk_final: f64,
    /// Spatial-index probes (INE: object lookups per settled vertex; IER:
    /// Euclidean candidates drawn).
    pub index_queries: usize,
    /// Vertices settled by Dijkstra/A* (INE and IER only).
    pub dijkstra_visited: usize,
    /// Nanoseconds spent maintaining `L` and `Dk` (the kNN-PQ cost split of
    /// paper fig. p.38).
    pub pq_nanos: u64,
}

/// The outcome of a k-nearest-neighbor query.
#[derive(Debug, Clone, Default)]
pub struct KnnResult {
    /// The neighbors, in confirmation order. For kNN, kNN-I, INN, INE and
    /// IER this is non-decreasing distance order; for kNN-M it is not
    /// (the point of that variant is skipping the total ordering).
    pub neighbors: Vec<Neighbor>,
    /// Execution counters.
    pub stats: QueryStats,
}

impl KnnResult {
    /// The neighbor objects as a set-comparison-friendly sorted vector.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.neighbors.iter().map(|n| n.object).collect();
        ids.sort_unstable();
        ids
    }

    /// `true` when neighbors are in non-decreasing order of interval lower
    /// bound (the sortedness guarantee of the non-`-M` algorithms).
    pub fn is_sorted(&self) -> bool {
        self.neighbors.windows(2).all(|w| w[0].interval.lo <= w[1].interval.lo + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(o: u32, lo: f64, hi: f64) -> Neighbor {
        Neighbor { object: ObjectId(o), vertex: VertexId(o), interval: DistInterval::new(lo, hi) }
    }

    #[test]
    fn object_ids_are_sorted() {
        let r = KnnResult {
            neighbors: vec![nb(5, 1.0, 1.0), nb(2, 2.0, 2.0), nb(9, 3.0, 3.0)],
            stats: QueryStats::default(),
        };
        assert_eq!(r.object_ids(), vec![ObjectId(2), ObjectId(5), ObjectId(9)]);
    }

    #[test]
    fn sortedness_check() {
        let sorted = KnnResult {
            neighbors: vec![nb(0, 1.0, 2.0), nb(1, 1.5, 3.0)],
            stats: QueryStats::default(),
        };
        assert!(sorted.is_sorted());
        let unsorted = KnnResult {
            neighbors: vec![nb(0, 2.0, 2.0), nb(1, 1.0, 3.0)],
            stats: QueryStats::default(),
        };
        assert!(!unsorted.is_sorted());
    }
}
