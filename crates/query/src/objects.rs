//! Object sets: the domain `S` neighbors are drawn from.
//!
//! The paper's central decoupling (p.10, p.20): the objects of interest
//! (restaurants, gas stations, …) live in their own spatial index, entirely
//! separate from the network vertices, so `S` can change without touching
//! the precomputed shortest-path quadtrees. Objects here are *vertex
//! objects* — points snapped to network vertices — indexed by a bucket PR
//! quadtree (the paper uses a PMR quadtree; identical behaviour for
//! points).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use silc_geom::Point;
use silc_network::{SpatialNetwork, VertexId};
use silc_quadtree::PrQuadtree;
use std::collections::HashMap;

/// Identifier of an object within an [`ObjectSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set of objects residing on network vertices, indexed by a PR quadtree.
pub struct ObjectSet {
    vertices: Vec<VertexId>,
    tree: PrQuadtree<u32>,
    by_vertex: HashMap<VertexId, Vec<ObjectId>>,
}

impl ObjectSet {
    /// Builds an object set from explicit vertex locations. Multiple objects
    /// may share a vertex.
    pub fn from_vertices(network: &SpatialNetwork, vertices: Vec<VertexId>, bucket: usize) -> Self {
        let mut by_vertex: HashMap<VertexId, Vec<ObjectId>> = HashMap::new();
        let items: Vec<(Point, u32)> = vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                by_vertex.entry(v).or_default().push(ObjectId(i as u32));
                (network.position(v), i as u32)
            })
            .collect();
        ObjectSet { vertices, tree: PrQuadtree::build(items, bucket), by_vertex }
    }

    /// Samples `⌈density · n⌉` objects on distinct random vertices — the
    /// paper's workload ("S is generated at random", densities 0.001–0.2).
    ///
    /// # Panics
    /// Panics if `density` is not in `(0, 1]`.
    pub fn random(network: &SpatialNetwork, density: f64, seed: u64) -> Self {
        assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1], got {density}");
        let n = network.vertex_count();
        let count = ((density * n as f64).ceil() as usize).clamp(1, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.shuffle(&mut rng);
        ids.truncate(count);
        ids.sort_unstable(); // object ids ordered by vertex id, deterministic
        Self::from_vertices(network, ids.into_iter().map(VertexId).collect(), 8)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The vertex an object resides on.
    pub fn vertex(&self, o: ObjectId) -> VertexId {
        self.vertices[o.index()]
    }

    /// The PR quadtree over object positions; payloads are object ids.
    pub fn quadtree(&self) -> &PrQuadtree<u32> {
        &self.tree
    }

    /// Objects residing on vertex `v` (used by the INE baseline).
    pub fn objects_at(&self, v: VertexId) -> &[ObjectId] {
        self.by_vertex.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterator over all `(object, vertex)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, VertexId)> + '_ {
        self.vertices.iter().enumerate().map(|(i, &v)| (ObjectId(i as u32), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silc_network::generate::{grid_network, GridConfig};

    fn net() -> SpatialNetwork {
        grid_network(&GridConfig { rows: 10, cols: 10, seed: 8, ..Default::default() })
    }

    #[test]
    fn random_density_controls_count() {
        let g = net();
        assert_eq!(ObjectSet::random(&g, 0.05, 1).len(), 5);
        assert_eq!(ObjectSet::random(&g, 0.2, 1).len(), 20);
        assert_eq!(ObjectSet::random(&g, 1.0, 1).len(), 100);
        // Density below 1/n still yields one object.
        assert_eq!(ObjectSet::random(&g, 0.0001, 1).len(), 1);
    }

    #[test]
    fn random_vertices_are_distinct() {
        let g = net();
        let s = ObjectSet::random(&g, 0.5, 7);
        let mut seen = std::collections::HashSet::new();
        for (_, v) in s.iter() {
            assert!(seen.insert(v), "vertex {v} sampled twice");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = net();
        let a = ObjectSet::random(&g, 0.1, 3);
        let b = ObjectSet::random(&g, 0.1, 3);
        let va: Vec<_> = a.iter().map(|(_, v)| v).collect();
        let vb: Vec<_> = b.iter().map(|(_, v)| v).collect();
        assert_eq!(va, vb);
        let c = ObjectSet::random(&g, 0.1, 4);
        let vc: Vec<_> = c.iter().map(|(_, v)| v).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn objects_at_reports_co_located_objects() {
        let g = net();
        let s = ObjectSet::from_vertices(&g, vec![VertexId(3), VertexId(5), VertexId(3)], 4);
        assert_eq!(s.objects_at(VertexId(3)), &[ObjectId(0), ObjectId(2)]);
        assert_eq!(s.objects_at(VertexId(5)), &[ObjectId(1)]);
        assert!(s.objects_at(VertexId(9)).is_empty());
    }

    #[test]
    fn quadtree_payloads_are_object_ids() {
        let g = net();
        let s = ObjectSet::random(&g, 0.1, 2);
        let t = s.quadtree();
        assert_eq!(t.len(), s.len());
        for i in 0..s.len() as u32 {
            let o = ObjectId(*t.payload(i));
            assert_eq!(t.position(i), g.position(s.vertex(o)));
        }
    }

    #[test]
    #[should_panic(expected = "density")]
    fn bad_density_rejected() {
        let g = net();
        let _ = ObjectSet::random(&g, 0.0, 1);
    }
}
